#!/usr/bin/env bash
# The single CI gate: formatting, lints, release build, full test suite.
# The workspace has no external dependencies, so everything runs --offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace
cargo build --offline --release --workspace
cargo test --offline --workspace -q

# Fixed-seed adversary smoke sweep: every runtime layer under crash
# injection, shrinking on. Fails the build on any oracle failure; the
# seeds are pinned so a failure here is replayable bit-for-bit.
IIS=target/release/iis-cli
for layer in iis atomic emulation bg; do
  "$IIS" fuzz --layer "$layer" --seed 7 --cases 200 --crashes 2 --shrink
done
"$IIS" fuzz --layer iis --rounds 2 --exhaustive
"$IIS" fuzz --layer iis --task oneshot:2 --rounds 1 --seed 7 --cases 200 --crashes 2 --shrink
# Storage-fault sweep: the witness store's recovery invariants under
# injected short writes, ENOSPC, bit flips, failed flushes and crashes.
"$IIS" fuzz --layer store --seed 7 --cases 500 --shrink

# Live-introspection smoke: solve with --serve on an ephemeral port, scrape
# /metrics and /progress over bash's /dev/tcp while the process runs, then
# require a clean exit. /metrics must be Prometheus text exposition and
# contain solve_nodes_total; /progress must carry exactly the committed
# key schema (crates/obs/tests/golden/progress_keys.txt).
serve_log=$(mktemp)
"$IIS" solve kset:2:2 --max-rounds 2 --jobs 2 --serve 127.0.0.1:0 >/dev/null 2>"$serve_log" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's#^serving on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$serve_log")
  [ -n "$port" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "serve smoke: solver died early"; cat "$serve_log"; exit 1; }
  sleep 0.05
done
[ -n "$port" ] && echo "serve smoke: scraping port $port" || { echo "serve smoke: no port announced"; cat "$serve_log"; exit 1; }
scrape() { # scrape PATH -> body on stdout
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' "$1" >&3
  sed '1,/^\r*$/d' <&3
  exec 3>&- 3<&-
}
metrics=$(scrape /metrics)
echo "$metrics" | grep -Eq '^[a-z_]+(\{[^}]*\})? [0-9]' \
  || { echo "serve smoke: /metrics is not Prometheus text"; echo "$metrics"; exit 1; }
echo "$metrics" | grep -q '^solve_nodes_total ' \
  || { echo "serve smoke: /metrics lacks solve_nodes_total"; echo "$metrics"; exit 1; }
progress=$(scrape /progress)
while read -r key; do
  echo "$progress" | grep -q "\"$key\"" \
    || { echo "serve smoke: /progress lacks key $key"; echo "$progress"; exit 1; }
done < crates/obs/tests/golden/progress_keys.txt
wait "$serve_pid" || { echo "serve smoke: solver exited nonzero"; cat "$serve_log"; exit 1; }
rm -f "$serve_log"
echo "serve smoke: ok"

# Solve-service smoke: start `iis serve` with a persistent store on an
# ephemeral port, POST the same task twice, and require the second reply
# to come from the store ("cached": true) with a byte-identical witness
# and serve_cache_hits_total = 1; probe /healthz and /readyz; accept an
# async job and POST /shutdown while it may still be running — the drain
# must finish it (summary says so) and the exit must be clean.
serve_log=$(mktemp)
serve_out=$(mktemp)
store_dir=$(mktemp -d)
"$IIS" serve --addr 127.0.0.1:0 --store "$store_dir" >"$serve_out" 2>"$serve_log" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's#^serving on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$serve_log")
  [ -n "$port" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "solve service smoke: serve died early"; cat "$serve_log"; exit 1; }
  sleep 0.05
done
[ -n "$port" ] || { echo "solve service smoke: no port announced"; cat "$serve_log"; exit 1; }
echo "solve service smoke: POSTing to port $port"
post() { # post PATH BODY -> body on stdout
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'POST %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$1" "${#2}" "$2" >&3
  sed '1,/^\r*$/d' <&3
  exec 3>&- 3<&-
}
body='{"spec": "eps:1:3", "max_rounds": 2}'
first=$(post /solve "$body")
echo "$first" | grep -q '"cached":false' \
  || { echo "solve service smoke: first reply should be a miss"; echo "$first"; exit 1; }
second=$(post /solve "$body")
echo "$second" | grep -q '"cached":true' \
  || { echo "solve service smoke: second reply should be a store hit"; echo "$second"; exit 1; }
wit1=$(printf '%s' "$first"  | sed 's/.*"witness"://')
wit2=$(printf '%s' "$second" | sed 's/.*"witness"://')
[ -n "$wit1" ] && [ "$wit1" = "$wit2" ] \
  || { echo "solve service smoke: witnesses differ"; echo "$wit1"; echo "$wit2"; exit 1; }
metrics=$(scrape /metrics)
hits=$(echo "$metrics" | sed -n 's/^serve_cache_hits_total //p')
[ "$hits" = "1" ] \
  || { echo "solve service smoke: expected serve_cache_hits_total 1, got '$hits'"; exit 1; }
# the store's corruption counters are registered (at zero) from the start
echo "$metrics" | grep -q '^store_checksum_failures_total ' \
  || { echo "solve service smoke: /metrics lacks store_checksum_failures_total"; echo "$metrics"; exit 1; }
# liveness and readiness answer while serving
scrape /healthz | grep -q '"ok": true' \
  || { echo "solve service smoke: /healthz not ok"; exit 1; }
scrape /readyz | grep -q '"ready":true' \
  || { echo "solve service smoke: /readyz not ready"; exit 1; }
# drain path: accept an async job, then shut down while it may be running
accepted=$(post /solve '{"spec": "trivial:2", "max_rounds": 1, "wait": false}')
echo "$accepted" | grep -q '"job":' \
  || { echo "solve service smoke: async solve not accepted"; echo "$accepted"; exit 1; }
post /shutdown '' >/dev/null
wait "$serve_pid" || { echo "solve service smoke: serve exited nonzero"; cat "$serve_log"; exit 1; }
grep -q '2 jobs accepted, 2 completed' "$serve_out" \
  || { echo "solve service smoke: drain did not finish the accepted job"; cat "$serve_out"; exit 1; }
rm -rf "$serve_log" "$serve_out" "$store_dir"
echo "solve service smoke: ok"

# Gateway fuzz sweep: routing soundness under injected transport faults —
# no question answered wrongly or misaligned, only late or 503.
"$IIS" fuzz --layer gateway --seed 7 --cases 300 --shrink

# Gateway smoke: two shards behind `iis gateway`; a 12-question batch is
# scattered, coalesced, and gathered; then one shard is killed and the
# same batch must come back with every answer byte-identical (purity makes
# any replica's answer THE answer) and gateway_failovers_total >= 1. The
# prober interval is set far out so the dead shard is discovered on the
# request path — the failover being tested, not the health prober.
sA_log=$(mktemp); sB_log=$(mktemp); gw_log=$(mktemp); gw_out=$(mktemp)
"$IIS" serve --addr 127.0.0.1:0 >/dev/null 2>"$sA_log" &
pidA=$!
"$IIS" serve --addr 127.0.0.1:0 >/dev/null 2>"$sB_log" &
pidB=$!
port_of() { # port_of LOGFILE PATTERN
  local p=""
  for _ in $(seq 1 100); do
    p=$(sed -n "s#^$2 on http://127\.0\.0\.1:\([0-9]*\)\$#\1#p" "$1")
    [ -n "$p" ] && { echo "$p"; return 0; }
    sleep 0.05
  done
  return 1
}
portA=$(port_of "$sA_log" serving) || { echo "gateway smoke: shard A never came up"; cat "$sA_log"; exit 1; }
portB=$(port_of "$sB_log" serving) || { echo "gateway smoke: shard B never came up"; cat "$sB_log"; exit 1; }
"$IIS" gateway --backends "127.0.0.1:$portA,127.0.0.1:$portB" --replicas 2 \
  --probe-ms 60000 --addr 127.0.0.1:0 >"$gw_out" 2>"$gw_log" &
pidG=$!
portG=$(port_of "$gw_log" gateway) || { echo "gateway smoke: gateway never came up"; cat "$gw_log"; exit 1; }
echo "gateway smoke: shards $portA,$portB behind gateway $portG"
req() { # req PORT METHOD PATH BODY -> body on stdout
  exec 3<>"/dev/tcp/127.0.0.1/$1"
  printf '%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$2" "$3" "${#4}" "$4" >&3
  sed '1,/^\r*$/d' <&3
  exec 3>&- 3<&-
}
qs=""
for s in trivial:1 trivial:2 eps:1:3 eps:1:5 eps:1:9 oneshot:1; do
  for b in 1 2; do qs="$qs{\"spec\": \"$s\", \"max_rounds\": $b},"; done
done
batch="{\"questions\": [${qs%,}]}"
# warm both shards, then take the all-cached envelope as the baseline
req "$portG" POST /solve "$batch" >/dev/null
baseline=$(req "$portG" POST /solve "$batch")
echo "$baseline" | grep -q '"cached":false' \
  && { echo "gateway smoke: baseline batch not fully cached"; echo "$baseline"; exit 1; }
echo "$baseline" | grep -q '"answers":' \
  || { echo "gateway smoke: baseline is not a batch envelope"; echo "$baseline"; exit 1; }
# kill shard B mid-run; the gateway has not probed, so the next batch
# discovers the death on the request path and fails over
req "$portB" POST /shutdown '' >/dev/null
wait "$pidB" || { echo "gateway smoke: shard B exited nonzero"; cat "$sB_log"; exit 1; }
failover=$(req "$portG" POST /solve "$batch")
echo "$failover" | grep -q '"status":503' \
  && { echo "gateway smoke: failover batch refused a question"; echo "$failover"; exit 1; }
# normalize away cache flags and job ids: re-solved questions are fresh on
# the survivor, but their result bytes must not change
norm() { sed -E 's/"cached":(true|false)/"cached":_/g; s/"job":[0-9]+,//g'; }
[ "$(echo "$failover" | norm)" = "$(echo "$baseline" | norm)" ] \
  || { echo "gateway smoke: failed-over answers differ from baseline"; exit 1; }
# once the survivor has cached everything, the envelope is byte-identical
settled=$(req "$portG" POST /solve "$batch")
[ "$settled" = "$baseline" ] \
  || { echo "gateway smoke: settled envelope not byte-identical to baseline"; exit 1; }
metrics=$(req "$portG" GET /metrics '')
failovers=$(echo "$metrics" | sed -n 's/^gateway_failovers_total //p')
[ -n "$failovers" ] && [ "$failovers" -ge 1 ] \
  || { echo "gateway smoke: expected gateway_failovers_total >= 1, got '$failovers'"; echo "$metrics" | head -40; exit 1; }
echo "$metrics" | grep -q '^serve_requests_total ' \
  || { echo "gateway smoke: /metrics does not aggregate shard serve_* counters"; exit 1; }
req "$portG" GET /cluster '' | grep -q '"shards":' \
  || { echo "gateway smoke: /cluster has no shard report"; exit 1; }
req "$portG" POST /shutdown '' >/dev/null
wait "$pidG" || { echo "gateway smoke: gateway exited nonzero"; cat "$gw_log"; exit 1; }
grep -q 'failover' "$gw_out" \
  || { echo "gateway smoke: summary does not report failovers"; cat "$gw_out"; exit 1; }
req "$portA" POST /shutdown '' >/dev/null
wait "$pidA" || { echo "gateway smoke: shard A exited nonzero"; cat "$sA_log"; exit 1; }
rm -f "$sA_log" "$sB_log" "$gw_log" "$gw_out"
echo "gateway smoke: ok"
