#!/usr/bin/env bash
# The single CI gate: formatting, lints, release build, full test suite.
# The workspace has no external dependencies, so everything runs --offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace
cargo build --offline --release --workspace
cargo test --offline --workspace -q

# Fixed-seed adversary smoke sweep: every runtime layer under crash
# injection, shrinking on. Fails the build on any oracle failure; the
# seeds are pinned so a failure here is replayable bit-for-bit.
IIS=target/release/iis-cli
for layer in iis atomic emulation bg; do
  "$IIS" fuzz --layer "$layer" --seed 7 --cases 200 --crashes 2 --shrink
done
"$IIS" fuzz --layer iis --rounds 2 --exhaustive
"$IIS" fuzz --layer iis --task oneshot:2 --rounds 1 --seed 7 --cases 200 --crashes 2 --shrink
