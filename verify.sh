#!/usr/bin/env bash
# The single CI gate: formatting, lints, release build, full test suite.
# The workspace has no external dependencies, so everything runs --offline.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace
cargo build --offline --release --workspace
cargo test --offline --workspace -q
