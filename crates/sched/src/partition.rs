//! Ordered partitions — the execution elements of the immediate snapshot
//! model (§3.4).
//!
//! An execution of the (one-shot) immediate snapshot model is an ordered
//! partition of the participating processes: each block is a maximal set of
//! simultaneous `WriteRead`s, and a process's view is the union of all
//! blocks up to and including its own.

use iis_obs::Rng;
use std::fmt;

/// An ordered partition of a set of process ids into non-empty blocks — one
/// concurrency-class execution of a one-shot immediate snapshot.
///
/// # Examples
///
/// ```
/// use iis_sched::OrderedPartition;
/// let p = OrderedPartition::new(vec![vec![1], vec![0, 2]]).unwrap();
/// assert_eq!(p.view_of(0), Some(vec![0, 1, 2]));
/// assert_eq!(p.view_of(1), Some(vec![1]));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrderedPartition {
    blocks: Vec<Vec<usize>>,
}

/// Error constructing an [`OrderedPartition`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionError {
    /// A block was empty.
    EmptyBlock,
    /// A process id appeared in more than one block (or twice in a block).
    DuplicatePid(usize),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyBlock => write!(f, "ordered partition contains an empty block"),
            Self::DuplicatePid(p) => write!(f, "process {p} appears twice"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl OrderedPartition {
    /// Builds an ordered partition, sorting each block internally and
    /// rejecting empty blocks or duplicate pids.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] for empty blocks or duplicated pids.
    pub fn new(mut blocks: Vec<Vec<usize>>) -> Result<Self, PartitionError> {
        let mut seen = std::collections::BTreeSet::new();
        for b in &mut blocks {
            if b.is_empty() {
                return Err(PartitionError::EmptyBlock);
            }
            b.sort_unstable();
            for &p in b.iter() {
                if !seen.insert(p) {
                    return Err(PartitionError::DuplicatePid(p));
                }
            }
        }
        Ok(OrderedPartition { blocks })
    }

    /// The fully sequential partition `({p₀}, {p₁}, …)` in the given order.
    pub fn sequential<I: IntoIterator<Item = usize>>(pids: I) -> Self {
        OrderedPartition {
            blocks: pids.into_iter().map(|p| vec![p]).collect(),
        }
    }

    /// The fully concurrent partition: one block containing all pids.
    pub fn simultaneous<I: IntoIterator<Item = usize>>(pids: I) -> Self {
        let mut b: Vec<usize> = pids.into_iter().collect();
        b.sort_unstable();
        if b.is_empty() {
            OrderedPartition { blocks: vec![] }
        } else {
            OrderedPartition { blocks: vec![b] }
        }
    }

    /// The blocks, in execution order (each internally sorted).
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// All participating pids, sorted.
    pub fn participants(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.blocks.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// `true` iff there are no participants.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The immediate-snapshot view of `pid`: all pids in blocks up to and
    /// including `pid`'s own, sorted; `None` if `pid` does not participate.
    pub fn view_of(&self, pid: usize) -> Option<Vec<usize>> {
        let mut acc = Vec::new();
        for b in &self.blocks {
            acc.extend_from_slice(b);
            if b.contains(&pid) {
                acc.sort_unstable();
                return Some(acc);
            }
        }
        None
    }

    /// Restricts the partition to the pids satisfying `keep`, dropping
    /// emptied blocks — the induced execution when the others crash before
    /// this memory.
    pub fn restrict<F: Fn(usize) -> bool>(&self, keep: F) -> OrderedPartition {
        OrderedPartition {
            blocks: self
                .blocks
                .iter()
                .map(|b| b.iter().copied().filter(|&p| keep(p)).collect::<Vec<_>>())
                .filter(|b: &Vec<usize>| !b.is_empty())
                .collect(),
        }
    }

    /// A uniformly random ordered partition of `pids` (uniform over ordered
    /// set partitions via random growth: each pid joins a random existing
    /// block or a random gap — *not* exactly uniform over all ordered
    /// partitions, but covers all of them with positive probability, which
    /// is what schedule fuzzing needs).
    pub fn random(pids: &[usize], rng: &mut Rng) -> Self {
        iis_obs::metrics::add("sched.random_partitions", 1);
        let mut order: Vec<usize> = pids.to_vec();
        rng.shuffle(&mut order);
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        for p in order {
            let choices = 2 * blocks.len() + 1; // join block k, or insert gap k
            let c = rng.random_range(0..choices);
            if c % 2 == 1 {
                blocks[c / 2].push(p);
            } else {
                blocks.insert(c / 2, vec![p]);
            }
        }
        for b in &mut blocks {
            b.sort_unstable();
        }
        OrderedPartition { blocks }
    }
}

impl fmt::Display for OrderedPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            for (k, p) in b.iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, ")")
    }
}

/// Enumerates every ordered partition of `pids` (the `ordered_bell(|pids|)`
/// executions of a one-shot immediate snapshot, §3.4).
pub fn all_ordered_partitions(pids: &[usize]) -> Vec<OrderedPartition> {
    iis_topology::ordered_partitions(pids)
        .into_iter()
        .map(|blocks| OrderedPartition::new(blocks).expect("generator yields valid partitions"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(OrderedPartition::new(vec![vec![0], vec![]]).is_err());
        assert_eq!(
            OrderedPartition::new(vec![vec![0], vec![0]]),
            Err(PartitionError::DuplicatePid(0))
        );
        let p = OrderedPartition::new(vec![vec![2, 1]]).unwrap();
        assert_eq!(p.blocks(), &[vec![1, 2]]);
    }

    #[test]
    fn views_accumulate_blocks() {
        let p = OrderedPartition::new(vec![vec![3], vec![0, 1], vec![2]]).unwrap();
        assert_eq!(p.view_of(3), Some(vec![3]));
        assert_eq!(p.view_of(0), Some(vec![0, 1, 3]));
        assert_eq!(p.view_of(1), Some(vec![0, 1, 3]));
        assert_eq!(p.view_of(2), Some(vec![0, 1, 2, 3]));
        assert_eq!(p.view_of(9), None);
    }

    #[test]
    fn sequential_and_simultaneous() {
        let s = OrderedPartition::sequential([2, 0, 1]);
        assert_eq!(s.blocks().len(), 3);
        assert_eq!(s.view_of(1), Some(vec![0, 1, 2]));
        let c = OrderedPartition::simultaneous([2, 0, 1]);
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.view_of(0), Some(vec![0, 1, 2]));
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(OrderedPartition::simultaneous([]).is_empty());
    }

    #[test]
    fn restrict_drops_crashed() {
        let p = OrderedPartition::new(vec![vec![0], vec![1, 2], vec![3]]).unwrap();
        let q = p.restrict(|pid| pid != 1 && pid != 0);
        assert_eq!(q.blocks(), &[vec![2], vec![3]]);
        assert_eq!(q.participants(), vec![2, 3]);
    }

    #[test]
    fn enumeration_matches_fubini() {
        assert_eq!(all_ordered_partitions(&[0, 1, 2]).len(), 13);
        assert_eq!(all_ordered_partitions(&[5, 7]).len(), 3);
        assert_eq!(all_ordered_partitions(&[]).len(), 1);
    }

    #[test]
    fn enumerated_views_satisfy_is_axioms() {
        // For every execution, the views satisfy self-inclusion, containment
        // and immediacy — the combinatorial heart of Lemma 3.2.
        for p in all_ordered_partitions(&[0, 1, 2, 3]) {
            let views: Vec<Vec<usize>> = (0..4).map(|i| p.view_of(i).unwrap()).collect();
            for i in 0..4 {
                assert!(views[i].contains(&i), "self-inclusion");
                for j in 0..4 {
                    let i_in_j = views[j].contains(&i);
                    if i_in_j {
                        assert!(views[i].iter().all(|x| views[j].contains(x)), "immediacy");
                    }
                    let ij = views[i].iter().all(|x| views[j].contains(x));
                    let ji = views[j].iter().all(|x| views[i].contains(x));
                    assert!(ij || ji, "containment");
                }
            }
        }
    }

    #[test]
    fn random_partitions_are_valid_and_varied() {
        let mut rng = Rng::seed_from_u64(42);
        let pids = [0, 1, 2, 3];
        let mut shapes = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let p = OrderedPartition::random(&pids, &mut rng);
            assert_eq!(p.participants(), pids.to_vec());
            shapes.insert(p);
        }
        // 75 possible ordered partitions; random gen should find many
        assert!(shapes.len() > 30, "found only {} shapes", shapes.len());
    }

    #[test]
    fn display_format() {
        let p = OrderedPartition::new(vec![vec![1], vec![0, 2]]).unwrap();
        assert_eq!(p.to_string(), "(1 | 0,2)");
    }

    #[test]
    fn error_display() {
        assert!(!PartitionError::EmptyBlock.to_string().is_empty());
        assert!(!PartitionError::DuplicatePid(1).to_string().is_empty());
    }
}
