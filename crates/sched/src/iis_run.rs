//! Deterministic execution of protocols in the iterated immediate snapshot
//! model (§3.5).
//!
//! An IIS execution is a sequence of [`OrderedPartition`]s, one per one-shot
//! memory `M₀, M₁, …`. The runner drives one state machine per process:
//! each round, every live undecided process `WriteRead`s its pending value
//! into the round's memory and receives its view (its block and all earlier
//! blocks). Lockstep rounds lose no generality — within a memory, arbitrary
//! asynchrony is exactly the choice of ordered partition, and a process
//! lagging across memories is equivalent to it being placed in late blocks.

use crate::OrderedPartition;
use std::fmt;

/// What a machine does with the view it receives from memory `Mⱼ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineStep<V, O> {
    /// Keep going: submit this value to the next memory.
    Continue(V),
    /// Decide and stop taking steps.
    Decide(O),
}

/// A per-process protocol state machine for the IIS model.
///
/// One instance exists per process; the runner feeds it views round by
/// round. See [`IisRunner`].
pub trait IisMachine {
    /// The values written to the one-shot memories.
    type Value: Clone;
    /// The decision value.
    type Output;

    /// The value this process submits to `M₀`.
    fn initial_value(&mut self) -> Self::Value;

    /// Receives the immediate-snapshot view from memory `M_round` — the
    /// `(pid, value)` pairs of every process in this process's block or an
    /// earlier one, sorted by pid (self-inclusive). Returns the next value
    /// or a decision.
    fn on_view(
        &mut self,
        round: usize,
        view: &[(usize, Self::Value)],
    ) -> MachineStep<Self::Value, Self::Output>;
}

/// Drives a set of [`IisMachine`]s through a sequence of ordered partitions.
///
/// # Examples
///
/// ```
/// use iis_sched::{IisMachine, IisRunner, MachineStep, OrderedPartition};
///
/// /// Decide on the number of processes seen in round 0.
/// struct CountSeen;
/// impl IisMachine for CountSeen {
///     type Value = ();
///     type Output = usize;
///     fn initial_value(&mut self) {}
///     fn on_view(&mut self, _round: usize, view: &[(usize, ())]) -> MachineStep<(), usize> {
///         MachineStep::Decide(view.len())
///     }
/// }
///
/// let mut r = IisRunner::new(vec![CountSeen, CountSeen]);
/// r.step_round(&OrderedPartition::sequential([1, 0]));
/// assert_eq!(r.output(1), Some(&1));
/// assert_eq!(r.output(0), Some(&2));
/// ```
pub struct IisRunner<M: IisMachine> {
    machines: Vec<M>,
    pending: Vec<Option<M::Value>>,
    outputs: Vec<Option<M::Output>>,
    crashed: Vec<bool>,
    round: usize,
}

impl<M: IisMachine> IisRunner<M> {
    /// Creates a runner over one machine per process (pid = index).
    pub fn new(mut machines: Vec<M>) -> Self {
        let pending = machines
            .iter_mut()
            .map(|m| Some(m.initial_value()))
            .collect();
        let n = machines.len();
        IisRunner {
            machines,
            pending,
            outputs: (0..n).map(|_| None).collect(),
            crashed: vec![false; n],
            round: 0,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// `true` iff the runner has no processes.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The next memory index to be used.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Crashes `pid` before the next round: it takes no further steps.
    pub fn crash(&mut self, pid: usize) {
        self.crashed[pid] = true;
    }

    /// `true` iff `pid` has crashed.
    pub fn is_crashed(&self, pid: usize) -> bool {
        self.crashed[pid]
    }

    /// `pid`'s decision, if it has decided.
    pub fn output(&self, pid: usize) -> Option<&M::Output> {
        self.outputs[pid].as_ref()
    }

    /// All decisions (None for undecided/crashed processes).
    pub fn outputs(&self) -> &[Option<M::Output>] {
        &self.outputs
    }

    /// Consumes the runner, returning the decisions.
    pub fn into_outputs(self) -> Vec<Option<M::Output>> {
        self.outputs
    }

    /// Borrows process `pid`'s machine — e.g. to read statistics it
    /// accumulated (decided machines remain accessible).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn machine(&self, pid: usize) -> &M {
        &self.machines[pid]
    }

    /// Iterates over all machines in pid order.
    pub fn machines(&self) -> impl Iterator<Item = &M> {
        self.machines.iter()
    }

    /// The pids that are alive and undecided.
    pub fn active(&self) -> Vec<usize> {
        (0..self.machines.len())
            .filter(|&p| !self.crashed[p] && self.outputs[p].is_none())
            .collect()
    }

    /// `true` iff no process is alive and undecided.
    pub fn is_quiescent(&self) -> bool {
        self.active().is_empty()
    }

    /// Executes one round: memory `M_round` with the given ordered
    /// partition, restricted to active processes. Returns how many processes
    /// decided in this round.
    ///
    /// # Panics
    ///
    /// Panics if some active process is missing from the partition — in the
    /// IIS model every live process uses every memory; model crashes with
    /// [`IisRunner::crash`], not by omission.
    pub fn step_round(&mut self, partition: &OrderedPartition) -> usize {
        self.step_round_with_failures(partition, &[])
    }

    /// Like [`IisRunner::step_round`], but the processes in `fail_inside`
    /// crash *inside* their `WriteRead`: their value is written to the
    /// memory (visible to their block and later blocks) but they never
    /// receive a view and take no further steps — the "crash between write
    /// and read" failure mode of the immediate snapshot object.
    ///
    /// # Panics
    ///
    /// Panics if some active process is missing from the partition.
    pub fn step_round_with_failures(
        &mut self,
        partition: &OrderedPartition,
        fail_inside: &[usize],
    ) -> usize {
        let active = self.active();
        let restricted = partition
            .restrict(|p| p < self.machines.len() && !self.crashed[p] && self.outputs[p].is_none());
        assert_eq!(
            restricted.participants(),
            active,
            "every active process must appear in the round's partition"
        );
        iis_obs::metrics::add("iis.rounds", 1);
        iis_obs::metrics::add("iis.write_reads", active.len() as u64);
        let block_size = iis_obs::metrics::HistogramHandle::handle("iis.block_size");
        let mut decided = 0;
        let mut seen: Vec<(usize, M::Value)> = Vec::new();
        type Steps<M> = Vec<(
            usize,
            MachineStep<<M as IisMachine>::Value, <M as IisMachine>::Output>,
        )>;
        let mut steps: Steps<M> = Vec::new();
        for block in restricted.blocks() {
            block_size.record(block.len() as u64);
            for &p in block {
                let v = self.pending[p]
                    .clone()
                    .expect("active process has a pending value");
                seen.push((p, v));
            }
            seen.sort_by_key(|(p, _)| *p);
            for &p in block {
                if fail_inside.contains(&p) {
                    // wrote, then crashed before reading its view
                    self.crashed[p] = true;
                    self.pending[p] = None;
                    continue;
                }
                let step = self.machines[p].on_view(self.round, &seen);
                steps.push((p, step));
            }
        }
        for (p, step) in steps {
            match step {
                MachineStep::Continue(v) => self.pending[p] = Some(v),
                MachineStep::Decide(o) => {
                    self.pending[p] = None;
                    self.outputs[p] = Some(o);
                    decided += 1;
                }
            }
        }
        iis_obs::metrics::add("iis.decisions", decided as u64);
        self.round += 1;
        decided
    }

    /// Runs rounds from a schedule until every process decided or crashed,
    /// or the schedule is exhausted. Returns the number of rounds executed.
    pub fn run<I: IntoIterator<Item = OrderedPartition>>(&mut self, schedule: I) -> usize {
        let mut rounds = 0;
        for partition in schedule {
            if self.is_quiescent() {
                break;
            }
            self.step_round(&partition);
            rounds += 1;
        }
        rounds
    }
}

impl<M: IisMachine> fmt::Debug for IisRunner<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IisRunner")
            .field("processes", &self.machines.len())
            .field("round", &self.round)
            .field("active", &self.active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes views as growing vectors; decides after `rounds` rounds on the
    /// full history.
    struct Recorder {
        rounds: usize,
        pid: usize,
        history: Vec<Vec<usize>>,
    }

    impl IisMachine for Recorder {
        type Value = usize;
        type Output = Vec<Vec<usize>>;
        fn initial_value(&mut self) -> usize {
            self.pid
        }
        fn on_view(
            &mut self,
            round: usize,
            view: &[(usize, usize)],
        ) -> MachineStep<usize, Self::Output> {
            self.history.push(view.iter().map(|(p, _)| *p).collect());
            if round + 1 == self.rounds {
                MachineStep::Decide(self.history.clone())
            } else {
                MachineStep::Continue(self.pid)
            }
        }
    }

    fn recorders(n: usize, rounds: usize) -> Vec<Recorder> {
        (0..n)
            .map(|pid| Recorder {
                rounds,
                pid,
                history: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn sequential_round_views() {
        let mut r = IisRunner::new(recorders(3, 1));
        r.step_round(&OrderedPartition::sequential([2, 0, 1]));
        assert_eq!(r.output(2), Some(&vec![vec![2]]));
        assert_eq!(r.output(0), Some(&vec![vec![0, 2]]));
        assert_eq!(r.output(1), Some(&vec![vec![0, 1, 2]]));
        assert!(r.is_quiescent());
    }

    #[test]
    fn simultaneous_round_views() {
        let mut r = IisRunner::new(recorders(3, 1));
        r.step_round(&OrderedPartition::simultaneous([0, 1, 2]));
        for p in 0..3 {
            assert_eq!(r.output(p), Some(&vec![vec![0, 1, 2]]));
        }
    }

    #[test]
    fn crashed_process_invisible_in_later_rounds() {
        let mut r = IisRunner::new(recorders(3, 2));
        r.step_round(&OrderedPartition::simultaneous([0, 1, 2]));
        r.crash(2);
        r.step_round(&OrderedPartition::simultaneous([0, 1, 2]));
        assert_eq!(r.output(0), Some(&vec![vec![0, 1, 2], vec![0, 1]]));
        assert_eq!(r.output(2), None);
        assert!(r.is_crashed(2));
        assert!(!r.is_crashed(0));
    }

    #[test]
    #[should_panic(expected = "every active process")]
    fn omitting_active_process_panics() {
        let mut r = IisRunner::new(recorders(2, 1));
        r.step_round(&OrderedPartition::sequential([0]));
    }

    #[test]
    fn crash_inside_write_read_is_visible_but_viewless() {
        let mut r = IisRunner::new(recorders(3, 2));
        // P2 writes to M0 then crashes inside the operation
        r.step_round_with_failures(&OrderedPartition::simultaneous([0, 1, 2]), &[2]);
        assert!(r.is_crashed(2));
        assert_eq!(r.output(2), None);
        r.step_round(&OrderedPartition::simultaneous([0, 1, 2]));
        // P0 saw P2 in round 0 (visible) but not in round 1 (viewless, gone)
        assert_eq!(r.output(0), Some(&vec![vec![0, 1, 2], vec![0, 1]]));
    }

    #[test]
    fn fail_in_early_block_still_seen_by_later_blocks() {
        let mut r = IisRunner::new(recorders(2, 1));
        let p = OrderedPartition::new(vec![vec![0], vec![1]]).unwrap();
        r.step_round_with_failures(&p, &[0]);
        // P1 (later block) sees P0's write even though P0 crashed mid-op
        assert_eq!(r.output(1), Some(&vec![vec![0, 1]]));
        assert_eq!(r.output(0), None);
    }

    #[test]
    fn run_consumes_schedule_until_quiescent() {
        let mut r = IisRunner::new(recorders(2, 3));
        let schedule = std::iter::repeat_with(|| OrderedPartition::simultaneous([0, 1])).take(10);
        let rounds = r.run(schedule);
        assert_eq!(rounds, 3);
        assert_eq!(r.round(), 3);
        assert!(r.is_quiescent());
        let outs = r.into_outputs();
        assert!(outs.iter().all(Option::is_some));
    }

    #[test]
    fn debug_and_len() {
        let r = IisRunner::new(recorders(2, 1));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(!format!("{r:?}").is_empty());
        assert_eq!(r.outputs().len(), 2);
    }
}
