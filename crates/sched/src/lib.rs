//! Deterministic simulation of shared-memory protocols.
//!
//! This crate is the schedule-driven half of the Borowsky–Gafni
//! reproduction: executions are explicit data (sequences of process ids for
//! the atomic snapshot model, sequences of [`OrderedPartition`]s for the
//! iterated immediate snapshot model), protocols are per-process state
//! machines, and runners replay any execution — including exhaustive
//! enumeration of *all* executions, which is how the protocol complexes of
//! §3.6 are generated and checked against the combinatorial subdivisions.
//!
//! - [`OrderedPartition`], [`all_ordered_partitions`] — IS concurrency
//!   classes (§3.4),
//! - [`IisMachine`] / [`IisRunner`] — the IIS model (§3.5) with crash
//!   adversaries,
//! - [`AtomicMachine`] / [`AtomicRunner`] — the SWMR atomic snapshot model
//!   (§3.1),
//! - [`AtomicSchedule`], [`IisSchedule`], [`CrashPattern`],
//!   [`all_iis_schedules`] — schedule generators and adversaries,
//! - [`FullInfoIis`], [`FullInfoAtomic`], [`iis_protocol_complex`] — the
//!   full-information protocols and protocol-complex enumeration
//!   (Lemmas 3.2/3.3).
//!
//! # Quickstart
//!
//! ```
//! use iis_sched::{iis_protocol_complex, OrderedPartition};
//! use iis_topology::{sds, Complex};
//!
//! // Lemma 3.2, checked by brute force: the one-shot IS protocol complex
//! // equals the standard chromatic subdivision.
//! let base = Complex::standard_simplex(2);
//! let enumerated = iis_protocol_complex(&base, 1);
//! assert!(enumerated.same_labeled(sds(&base).complex()));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod atomic_run;
mod full_info;
mod iis_run;
mod partition;
mod schedule;

pub use atomic_run::{AtomicMachine, AtomicRunner};
pub use full_info::{
    atomic_one_shot_protocol_complex, iis_protocol_complex, run_full_info_iis, FullInfoAtomic,
    FullInfoIis,
};
pub use iis_run::{IisMachine, IisRunner, MachineStep};
pub use partition::{all_ordered_partitions, OrderedPartition, PartitionError};
pub use schedule::{
    all_atomic_schedules, all_iis_schedules, AtomicSchedule, CrashPattern, IisSchedule,
};
