//! Deterministic execution of protocols in the SWMR atomic snapshot model
//! (§3.1).
//!
//! An execution is a sequence of process ids; a process's first appearance
//! is a write, its second a snapshot, and so on alternating (the paper's
//! convention for full-information executions). Single-threaded simulation
//! makes every snapshot trivially atomic, so this runner is the *reference
//! semantics* against which the IIS emulation (iis-core) is validated.

use std::fmt;

/// A per-process protocol state machine for the atomic snapshot model.
///
/// The runner alternates [`AtomicMachine::next_write`] and
/// [`AtomicMachine::on_snapshot`] per scheduled appearance, as in Figure 1.
pub trait AtomicMachine {
    /// The values written to the cells.
    type Value: Clone;
    /// The decision value.
    type Output;

    /// Called on a write step: the value to write into this process's cell.
    fn next_write(&mut self) -> Self::Value;

    /// Called on a snapshot step with the current memory contents (cell
    /// `j` is `None` until process `j` first writes). Returning `Some`
    /// decides and stops the process.
    fn on_snapshot(&mut self, snapshot: &[Option<Self::Value>]) -> Option<Self::Output>;
}

/// Which operation a process performs at its next appearance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Write,
    Snapshot,
}

/// Drives [`AtomicMachine`]s through a schedule of process ids.
///
/// # Examples
///
/// ```
/// use iis_sched::{AtomicMachine, AtomicRunner};
///
/// /// Writes its pid, then decides on the set of cells it saw.
/// struct OneShot(usize);
/// impl AtomicMachine for OneShot {
///     type Value = usize;
///     type Output = usize;
///     fn next_write(&mut self) -> usize { self.0 }
///     fn on_snapshot(&mut self, snap: &[Option<usize>]) -> Option<usize> {
///         Some(snap.iter().flatten().count())
///     }
/// }
///
/// let mut r = AtomicRunner::new(vec![OneShot(0), OneShot(1)]);
/// for pid in [0, 1, 1, 0] { r.step(pid); }
/// assert_eq!(r.output(1), Some(&2)); // 1 snapshotted after both writes
/// ```
pub struct AtomicRunner<M: AtomicMachine> {
    machines: Vec<M>,
    memory: Vec<Option<M::Value>>,
    phase: Vec<Phase>,
    outputs: Vec<Option<M::Output>>,
    crashed: Vec<bool>,
    steps: u64,
}

impl<M: AtomicMachine> AtomicRunner<M> {
    /// Creates a runner over one machine per process (pid = index); all
    /// cells start empty.
    pub fn new(machines: Vec<M>) -> Self {
        let n = machines.len();
        AtomicRunner {
            machines,
            memory: (0..n).map(|_| None).collect(),
            phase: vec![Phase::Write; n],
            outputs: (0..n).map(|_| None).collect(),
            crashed: vec![false; n],
            steps: 0,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// `true` iff the runner has no processes.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Total steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Crashes `pid`: it ignores further scheduled appearances.
    pub fn crash(&mut self, pid: usize) {
        self.crashed[pid] = true;
    }

    /// `pid`'s decision, if decided.
    pub fn output(&self, pid: usize) -> Option<&M::Output> {
        self.outputs[pid].as_ref()
    }

    /// All decisions.
    pub fn outputs(&self) -> &[Option<M::Output>] {
        &self.outputs
    }

    /// Consumes the runner, returning the decisions.
    pub fn into_outputs(self) -> Vec<Option<M::Output>> {
        self.outputs
    }

    /// The current memory contents (cells of undecided writers included).
    pub fn memory(&self) -> &[Option<M::Value>] {
        &self.memory
    }

    /// `true` iff no process is alive and undecided.
    pub fn is_quiescent(&self) -> bool {
        (0..self.machines.len()).all(|p| self.crashed[p] || self.outputs[p].is_some())
    }

    /// Executes one appearance of `pid` (write or snapshot, alternating).
    /// No-op (returning `false`) if `pid` has crashed or decided. Returns
    /// `true` iff `pid` decided on this step.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn step(&mut self, pid: usize) -> bool {
        if self.crashed[pid] || self.outputs[pid].is_some() {
            return false;
        }
        self.steps += 1;
        iis_obs::metrics::add("atomic.steps", 1);
        match self.phase[pid] {
            Phase::Write => {
                let v = self.machines[pid].next_write();
                self.memory[pid] = Some(v);
                self.phase[pid] = Phase::Snapshot;
                iis_obs::metrics::add("atomic.writes", 1);
                false
            }
            Phase::Snapshot => {
                let decision = self.machines[pid].on_snapshot(&self.memory);
                self.phase[pid] = Phase::Write;
                iis_obs::metrics::add("atomic.snapshots", 1);
                match decision {
                    Some(o) => {
                        self.outputs[pid] = Some(o);
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Runs a schedule of pids until exhausted or all processes decided or
    /// crashed. Returns the number of steps actually executed (skipped
    /// appearances of decided/crashed processes are not counted).
    pub fn run<I: IntoIterator<Item = usize>>(&mut self, schedule: I) -> u64 {
        let before = self.steps;
        for pid in schedule {
            if self.is_quiescent() {
                break;
            }
            self.step(pid);
        }
        self.steps - before
    }
}

impl<M: AtomicMachine> fmt::Debug for AtomicRunner<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicRunner")
            .field("processes", &self.machines.len())
            .field("steps", &self.steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure-1 style: performs `k` write/snapshot rounds carrying a counter,
    /// decides on the last snapshot's filled-cell count.
    struct KShot {
        pid: usize,
        k: usize,
        done: usize,
    }

    impl AtomicMachine for KShot {
        type Value = (usize, usize); // (pid, round)
        type Output = usize;
        fn next_write(&mut self) -> (usize, usize) {
            (self.pid, self.done)
        }
        fn on_snapshot(&mut self, snap: &[Option<(usize, usize)>]) -> Option<usize> {
            self.done += 1;
            if self.done == self.k {
                Some(snap.iter().flatten().count())
            } else {
                None
            }
        }
    }

    fn kshots(n: usize, k: usize) -> Vec<KShot> {
        (0..n).map(|pid| KShot { pid, k, done: 0 }).collect()
    }

    #[test]
    fn solo_run_sees_only_self() {
        let mut r = AtomicRunner::new(kshots(3, 2));
        r.run([0, 0, 0, 0]);
        assert_eq!(r.output(0), Some(&1));
        assert_eq!(r.output(1), None);
        assert_eq!(r.steps(), 4);
    }

    #[test]
    fn interleaved_run() {
        let mut r = AtomicRunner::new(kshots(2, 1));
        // 0 writes, 1 writes, 0 snaps (sees both), 1 snaps (sees both)
        r.run([0, 1, 0, 1]);
        assert_eq!(r.output(0), Some(&2));
        assert_eq!(r.output(1), Some(&2));
        assert!(r.is_quiescent());
    }

    #[test]
    fn crash_stops_steps() {
        let mut r = AtomicRunner::new(kshots(2, 1));
        r.step(0); // write
        r.crash(0);
        assert!(!r.step(0)); // ignored
        r.run([1, 1]);
        // 1 still sees 0's write (crash after write is visible)
        assert_eq!(r.output(1), Some(&2));
        assert_eq!(r.memory()[0], Some((0, 0)));
    }

    #[test]
    fn run_stops_when_quiescent() {
        let mut r = AtomicRunner::new(kshots(1, 1));
        let executed = r.run(std::iter::repeat_n(0, 100));
        assert_eq!(executed, 2);
    }

    #[test]
    fn debug_len() {
        let r = AtomicRunner::new(kshots(2, 1));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(!format!("{r:?}").is_empty());
        assert_eq!(r.outputs().len(), 2);
    }
}
