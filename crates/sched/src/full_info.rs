//! Full-information protocols in both models, and protocol-complex
//! generation by exhaustive execution enumeration.
//!
//! The *full-information protocol* is the canonical protocol: a process's
//! state is everything it has seen; every write publishes the entire state
//! (§3.1, §3.5). Running it over all schedules yields the *protocol
//! complex*; Lemma 3.3 says that for the IIS model this complex is exactly
//! the iterated standard chromatic subdivision — which the tests here check
//! *by construction*, comparing the enumerated complex with
//! [`iis_topology::sds_iterated`] label-for-label.

use crate::{all_iis_schedules, AtomicMachine, IisMachine, IisRunner, MachineStep};
use iis_topology::{Color, Complex, Label};

/// The IIS full-information machine: state = canonical view label; each
/// round submits the state and replaces it with the view received; decides
/// on its state after `b` rounds.
#[derive(Clone, Debug)]
pub struct FullInfoIis {
    rounds: usize,
    state: Label,
}

impl FullInfoIis {
    /// A machine with the given input label that runs `rounds` IIS rounds.
    pub fn new(input: Label, rounds: usize) -> Self {
        FullInfoIis {
            rounds,
            state: input,
        }
    }
}

impl IisMachine for FullInfoIis {
    type Value = Label;
    type Output = Label;

    fn initial_value(&mut self) -> Label {
        self.state.clone()
    }

    fn on_view(&mut self, round: usize, view: &[(usize, Label)]) -> MachineStep<Label, Label> {
        self.state = Label::view(view.iter().map(|(p, l)| (Color(*p as u32), l)));
        if round + 1 >= self.rounds {
            MachineStep::Decide(self.state.clone())
        } else {
            MachineStep::Continue(self.state.clone())
        }
    }
}

/// Runs the IIS full-information protocol for `b` rounds under a schedule,
/// returning each process's final view label (`None` for processes that
/// crashed or for a schedule shorter than `b`).
pub fn run_full_info_iis(
    inputs: &[Label],
    schedule: impl IntoIterator<Item = crate::OrderedPartition>,
    b: usize,
) -> Vec<Option<Label>> {
    let machines: Vec<FullInfoIis> = inputs
        .iter()
        .map(|l| FullInfoIis::new(l.clone(), b))
        .collect();
    let mut runner = IisRunner::new(machines);
    runner.run(schedule);
    runner.into_outputs()
}

/// Builds the `b`-round IIS full-information protocol complex of an input
/// complex by *exhaustive execution enumeration*: for every facet of the
/// input complex and every `b`-round schedule over its colors, run the
/// protocol and add the resulting views as a facet.
///
/// By Lemma 3.3 the result equals `sds_iterated(input, b).complex()` — the
/// tests assert `same_labeled` equality.
///
/// # Panics
///
/// Panics if `input` is not chromatic, or if a facet has more than 5
/// vertices (enumeration would be astronomically large).
pub fn iis_protocol_complex(input: &Complex, b: usize) -> Complex {
    assert!(input.is_chromatic(), "input complex must be chromatic");
    if b == 0 {
        return input.clone();
    }
    let mut out = Complex::new();
    for f in input.facets() {
        let colors: Vec<Color> = f.iter().map(|v| input.color(v)).collect();
        assert!(colors.len() <= 5, "facet too large to enumerate");
        // run with local pids 0..k mapped to the facet's colors
        let inputs: Vec<Label> = f.iter().map(|v| input.label(v).clone()).collect();
        let pids: Vec<usize> = (0..colors.len()).collect();
        for schedule in all_iis_schedules(&pids, b) {
            // relabel local pids to global colors inside view labels: we run
            // with *global* color ids to keep labels canonical, by remapping
            // the partitions.
            let rounds: Vec<crate::OrderedPartition> = schedule
                .rounds()
                .iter()
                .map(|p| {
                    crate::OrderedPartition::new(
                        p.blocks()
                            .iter()
                            .map(|blk| blk.iter().map(|&i| colors[i].0 as usize).collect())
                            .collect(),
                    )
                    .expect("remapped partition is valid")
                })
                .collect();
            // global-pid machine array: only the facet's colors participate
            let max_pid = colors.iter().map(|c| c.0 as usize).max().unwrap_or(0);
            let mut machines: Vec<FullInfoIis> = (0..=max_pid)
                .map(|_| FullInfoIis::new(Label::scalar(u64::MAX), b))
                .collect();
            for (i, c) in colors.iter().enumerate() {
                machines[c.0 as usize] = FullInfoIis::new(inputs[i].clone(), b);
            }
            let mut runner = IisRunner::new(machines);
            // crash every non-participant before round 0
            for pid in 0..=max_pid {
                if !colors.iter().any(|c| c.0 as usize == pid) {
                    runner.crash(pid);
                }
            }
            runner.run(rounds);
            let outs = runner.into_outputs();
            let mut facet = Vec::with_capacity(colors.len());
            for c in &colors {
                let label = outs[c.0 as usize]
                    .clone()
                    .expect("participant completed all rounds");
                facet.push(out.ensure_vertex(*c, label));
            }
            out.add_facet(facet);
        }
    }
    out
}

/// Builds the one-shot (`k = 1`) **atomic snapshot** full-information
/// protocol complex by enumerating every schedule: vertices are `(color,
/// final view)` pairs, facets are the joint outcomes of complete
/// executions.
///
/// This is the complex the paper's §3.4 restriction is about: for two
/// processes it coincides with `SDS(s¹)`, but for three or more it is
/// **not** a subdivided simplex — plain snapshots admit executions (e.g.
/// `P₀` seeing `{P₀, P₂}` while `P₂` sees `{P₀, P₁, P₂}` and `P₁` sees
/// all) whose views violate the immediacy axiom, which is exactly why the
/// characterization is built on *immediate* snapshots (Lemma 3.2 holds for
/// the IS complex, not this one).
///
/// # Panics
///
/// Panics if `input` is not chromatic or a facet is too large to enumerate
/// (> 3 vertices).
pub fn atomic_one_shot_protocol_complex(input: &Complex) -> Complex {
    assert!(input.is_chromatic(), "input complex must be chromatic");
    let mut out = Complex::new();
    for f in input.facets() {
        let colors: Vec<Color> = f.iter().map(|v| input.color(v)).collect();
        let inputs: Vec<Label> = f.iter().map(|v| input.label(v).clone()).collect();
        let m = colors.len();
        assert!(m <= 3, "atomic schedule enumeration explodes beyond 3");
        // every process does one write and one snapshot: schedules of
        // length 2m covering all interleavings
        for schedule in crate::all_atomic_schedules(m, 2 * m) {
            let machines: Vec<FullInfoAtomic> = (0..m)
                .map(|i| FullInfoAtomic::new(i, inputs[i].clone(), 1))
                .collect();
            let mut runner = crate::AtomicRunner::new(machines);
            runner.run(schedule);
            if !runner.is_quiescent() {
                continue; // unfair interleaving: someone did not finish
            }
            let mut facet = Vec::with_capacity(m);
            for (i, c) in colors.iter().enumerate() {
                // remap local pids in the view label to global colors
                let local = runner.output(i).expect("quiescent").clone();
                let view = local.as_view().expect("full-information views");
                let relabeled = Label::view(view.iter().map(|(lc, l)| (colors[lc.0 as usize], l)));
                facet.push(out.ensure_vertex(*c, relabeled));
            }
            out.add_facet(facet);
        }
    }
    out
}

/// The atomic-model full-information machine of Figure 1: alternates
/// writing its whole state and snapshotting; after `k` snapshots decides on
/// its state.
#[derive(Clone, Debug)]
pub struct FullInfoAtomic {
    pid: usize,
    k: usize,
    snaps_done: usize,
    state: Label,
}

impl FullInfoAtomic {
    /// A machine for process `pid` with the given input, running `k`
    /// write/snapshot rounds.
    pub fn new(pid: usize, input: Label, k: usize) -> Self {
        FullInfoAtomic {
            pid,
            k,
            snaps_done: 0,
            state: input,
        }
    }
}

impl AtomicMachine for FullInfoAtomic {
    type Value = Label;
    type Output = Label;

    fn next_write(&mut self) -> Label {
        self.state.clone()
    }

    fn on_snapshot(&mut self, snapshot: &[Option<Label>]) -> Option<Label> {
        self.state = Label::view(
            snapshot
                .iter()
                .enumerate()
                .filter_map(|(p, c)| c.as_ref().map(|l| (Color(p as u32), l))),
        );
        self.snaps_done += 1;
        if self.snaps_done >= self.k {
            Some(self.state.clone())
        } else {
            None
        }
    }
}

impl FullInfoAtomic {
    /// The process id this machine was created for.
    pub fn pid(&self) -> usize {
        self.pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicRunner, AtomicSchedule, IisSchedule};
    use iis_topology::{sds_iterated, Subdivision};

    fn inputs(n: usize) -> Vec<Label> {
        (0..n).map(|i| Label::scalar(i as u64)).collect()
    }

    #[test]
    fn one_round_lockstep_views() {
        let outs = run_full_info_iis(&inputs(2), IisSchedule::lockstep(2, 1), 1);
        let expected = Label::view([(Color(0), &Label::scalar(0)), (Color(1), &Label::scalar(1))]);
        assert_eq!(outs[0].as_ref(), Some(&expected));
        assert_eq!(outs[1].as_ref(), Some(&expected));
    }

    #[test]
    fn protocol_complex_equals_sds_lemma_3_2() {
        // one round, 3 processes: the enumerated complex IS SDS(s²)
        let base = Complex::standard_simplex(2);
        let enumerated = iis_protocol_complex(&base, 1);
        let constructed = iis_topology::sds(&base);
        assert!(enumerated.same_labeled(constructed.complex()));
    }

    #[test]
    fn protocol_complex_equals_sds_iterated_lemma_3_3() {
        // two rounds, 3 processes: SDS²(s²), 169 facets
        let base = Complex::standard_simplex(2);
        let enumerated = iis_protocol_complex(&base, 2);
        assert_eq!(enumerated.num_facets(), 169);
        let constructed = sds_iterated(&base, 2);
        assert!(enumerated.same_labeled(constructed.complex()));
    }

    #[test]
    fn protocol_complex_four_processes_one_round() {
        let base = Complex::standard_simplex(3);
        let enumerated = iis_protocol_complex(&base, 1);
        assert_eq!(enumerated.num_facets(), 75);
        let constructed = iis_topology::sds(&base);
        assert!(enumerated.same_labeled(constructed.complex()));
    }

    #[test]
    fn enumerated_complex_is_valid_subdivision() {
        // attach carriers by decoding views and validate as subdivision
        let base = Complex::standard_simplex(2);
        let enumerated = iis_protocol_complex(&base, 1);
        let carriers: Vec<iis_topology::Simplex> = enumerated
            .vertex_ids()
            .map(|v| {
                let view = enumerated.label(v).as_view().unwrap();
                iis_topology::Simplex::new(view.iter().map(|(c, l)| {
                    base.vertex_id(*c, l)
                        .expect("view entries are base vertices")
                }))
            })
            .collect();
        let sub = Subdivision::from_parts(base, enumerated, carriers);
        sub.validate().unwrap();
    }

    #[test]
    fn atomic_full_info_round_robin() {
        // round-robin: everyone writes, then everyone snapshots → all see all
        let machines: Vec<FullInfoAtomic> = (0..3)
            .map(|p| FullInfoAtomic::new(p, Label::scalar(p as u64), 1))
            .collect();
        let mut r = AtomicRunner::new(machines);
        r.run(AtomicSchedule::from_steps(vec![0, 1, 2, 0, 1, 2]));
        let expected = Label::view([
            (Color(0), &Label::scalar(0)),
            (Color(1), &Label::scalar(1)),
            (Color(2), &Label::scalar(2)),
        ]);
        for p in 0..3 {
            assert_eq!(r.output(p), Some(&expected));
        }
    }

    #[test]
    fn atomic_full_info_solo_sees_self() {
        let machines = vec![FullInfoAtomic::new(0, Label::scalar(7), 2)];
        let mut r = AtomicRunner::new(machines);
        r.run(AtomicSchedule::round_robin(1, 4));
        let l1 = Label::view([(Color(0), &Label::scalar(7))]);
        let l2 = Label::view([(Color(0), &l1)]);
        assert_eq!(r.output(0), Some(&l2));
    }

    #[test]
    fn atomic_one_shot_two_processes_is_sds_shaped() {
        // for 2 processes the atomic one-shot complex IS the standard
        // chromatic subdivision of the edge
        let base = Complex::standard_simplex(1);
        let atomic = atomic_one_shot_protocol_complex(&base);
        let is_complex = iis_topology::sds(&base);
        assert!(atomic.same_labeled(is_complex.complex()));
    }

    #[test]
    fn atomic_one_shot_three_processes_is_not_a_subdivision() {
        // for 3 processes the atomic complex strictly contains the IS
        // complex: non-immediate views appear, immediacy fails, and the
        // complex is not even a pseudomanifold — the reason §3.4 moves to
        // immediate snapshots.
        let base = Complex::standard_simplex(2);
        let atomic = atomic_one_shot_protocol_complex(&base);
        let is_complex = iis_topology::sds(&base);
        assert!(
            atomic.num_facets() > is_complex.complex().num_facets(),
            "atomic: {} facets vs IS: {}",
            atomic.num_facets(),
            is_complex.complex().num_facets()
        );
        // every IS facet is also an atomic facet (IS ⊆ atomic executions)
        for f in is_complex.complex().facets() {
            let translated: Vec<_> = f
                .iter()
                .map(|v| {
                    atomic
                        .vertex_id(is_complex.complex().color(v), is_complex.complex().label(v))
                        .expect("IS views occur atomically")
                })
                .collect();
            assert!(atomic.contains_simplex(&iis_topology::Simplex::new(translated)));
        }
        // immediacy violation exists: some facet has i ∈ S_j with S_i ⊄ S_j
        let mut violation = false;
        'outer: for f in atomic.facets() {
            let views: Vec<(Color, Vec<(Color, Label)>)> = f
                .iter()
                .map(|v| (atomic.color(v), atomic.label(v).as_view().unwrap()))
                .collect();
            for (ci, si) in &views {
                for (_cj, sj) in &views {
                    let j_sees_i = sj.iter().any(|(c, _)| c == ci);
                    let contained = si.iter().all(|e| sj.contains(e));
                    if j_sees_i && !contained {
                        violation = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            violation,
            "plain snapshots must violate immediacy somewhere"
        );
        // and the complex is not a pseudomanifold
        let report = iis_topology::manifold::pseudomanifold_report(&atomic);
        assert!(!report.is_pseudomanifold());
    }

    #[test]
    fn iis_crash_produces_smaller_views() {
        let ins = inputs(3);
        let machines: Vec<FullInfoIis> =
            ins.iter().map(|l| FullInfoIis::new(l.clone(), 2)).collect();
        let mut runner = IisRunner::new(machines);
        runner.step_round(&crate::OrderedPartition::simultaneous([0, 1, 2]));
        runner.crash(2);
        runner.step_round(&crate::OrderedPartition::simultaneous([0, 1, 2]));
        let outs = runner.into_outputs();
        assert!(outs[2].is_none());
        // round-2 views of 0 and 1 contain only two entries
        let v = outs[0].as_ref().unwrap().as_view().unwrap();
        assert_eq!(v.len(), 2);
    }
}
