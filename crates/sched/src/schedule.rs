//! Schedule generators and crash adversaries for both models.

use crate::OrderedPartition;
use iis_obs::Rng;

/// A finite schedule for the atomic snapshot model: a sequence of process
/// ids (§3.1). Each appearance of a pid alternates write/snapshot.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AtomicSchedule {
    steps: Vec<usize>,
}

impl AtomicSchedule {
    /// Wraps an explicit step sequence.
    pub fn from_steps(steps: Vec<usize>) -> Self {
        AtomicSchedule { steps }
    }

    /// Round-robin: `0, 1, …, n−1` repeated `rounds` times — every process
    /// performs `rounds` operations, fully synchronously.
    pub fn round_robin(n: usize, rounds: usize) -> Self {
        AtomicSchedule {
            steps: (0..rounds).flat_map(|_| 0..n).collect(),
        }
    }

    /// One process at a time: pid 0 runs `ops` steps, then pid 1, etc.
    pub fn sequential(n: usize, ops: usize) -> Self {
        AtomicSchedule {
            steps: (0..n).flat_map(|p| std::iter::repeat_n(p, ops)).collect(),
        }
    }

    /// A uniformly random schedule of `len` steps over `n` processes.
    pub fn random(n: usize, len: usize, rng: &mut Rng) -> Self {
        AtomicSchedule {
            steps: (0..len).map(|_| rng.random_range(0..n)).collect(),
        }
    }

    /// The step sequence.
    pub fn steps(&self) -> &[usize] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl IntoIterator for AtomicSchedule {
    type Item = usize;
    type IntoIter = std::vec::IntoIter<usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.steps.into_iter()
    }
}

impl<'a> IntoIterator for &'a AtomicSchedule {
    type Item = usize;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;
    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter().copied()
    }
}

/// A finite IIS schedule: one ordered partition per memory `M₀, M₁, …`
/// (§3.5).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IisSchedule {
    rounds: Vec<OrderedPartition>,
}

impl IisSchedule {
    /// Wraps explicit per-round partitions.
    pub fn from_rounds(rounds: Vec<OrderedPartition>) -> Self {
        IisSchedule { rounds }
    }

    /// Fully synchronous: all `n` processes simultaneous in every round.
    pub fn lockstep(n: usize, rounds: usize) -> Self {
        IisSchedule {
            rounds: (0..rounds)
                .map(|_| OrderedPartition::simultaneous(0..n))
                .collect(),
        }
    }

    /// Fully sequential in pid order every round.
    pub fn sequential(n: usize, rounds: usize) -> Self {
        IisSchedule {
            rounds: (0..rounds)
                .map(|_| OrderedPartition::sequential(0..n))
                .collect(),
        }
    }

    /// A "rotating leader" adversary: in round `r`, process `r mod n` is
    /// alone in the first block, everyone else simultaneous after it. This
    /// starves no one but maximizes view asymmetry.
    pub fn rotating_leader(n: usize, rounds: usize) -> Self {
        IisSchedule {
            rounds: (0..rounds)
                .map(|r| {
                    let leader = r % n;
                    let rest: Vec<usize> = (0..n).filter(|&p| p != leader).collect();
                    let mut blocks = vec![vec![leader]];
                    if !rest.is_empty() {
                        blocks.push(rest);
                    }
                    OrderedPartition::new(blocks).expect("valid by construction")
                })
                .collect(),
        }
    }

    /// A "laggard" adversary: process `n−1` is always in the last block by
    /// itself — it sees everyone, no one ever sees it first.
    pub fn laggard(n: usize, rounds: usize) -> Self {
        IisSchedule {
            rounds: (0..rounds)
                .map(|_| {
                    let mut blocks: Vec<Vec<usize>> = Vec::new();
                    if n > 1 {
                        blocks.push((0..n - 1).collect());
                    }
                    blocks.push(vec![n - 1]);
                    OrderedPartition::new(blocks).expect("valid by construction")
                })
                .collect(),
        }
    }

    /// Seeded-random partitions each round.
    pub fn random(n: usize, rounds: usize, rng: &mut Rng) -> Self {
        let pids: Vec<usize> = (0..n).collect();
        IisSchedule {
            rounds: (0..rounds)
                .map(|_| OrderedPartition::random(&pids, rng))
                .collect(),
        }
    }

    /// The per-round partitions.
    pub fn rounds(&self) -> &[OrderedPartition] {
        &self.rounds
    }

    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` iff the schedule has no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Appends a round.
    pub fn push(&mut self, p: OrderedPartition) {
        self.rounds.push(p);
    }
}

impl IntoIterator for IisSchedule {
    type Item = OrderedPartition;
    type IntoIter = std::vec::IntoIter<OrderedPartition>;
    fn into_iter(self) -> Self::IntoIter {
        self.rounds.into_iter()
    }
}

/// Enumerates all `b`-round IIS schedules over `pids`: every sequence of
/// ordered partitions. There are `ordered_bell(|pids|)^b` of them — keep
/// `pids` and `b` small.
pub fn all_iis_schedules(pids: &[usize], b: usize) -> Vec<IisSchedule> {
    let per_round = crate::all_ordered_partitions(pids);
    let mut out: Vec<Vec<OrderedPartition>> = vec![Vec::new()];
    for _ in 0..b {
        let mut next = Vec::with_capacity(out.len() * per_round.len());
        for prefix in &out {
            for p in &per_round {
                let mut s = prefix.clone();
                s.push(p.clone());
                next.push(s);
            }
        }
        out = next;
    }
    out.into_iter().map(IisSchedule::from_rounds).collect()
}

/// Enumerates every atomic-model schedule of exactly `steps` steps over `n`
/// processes (`n^steps` sequences). For exhaustively comparing emulated
/// behaviours against the reference model — keep `n` and `steps` small.
pub fn all_atomic_schedules(n: usize, steps: usize) -> Vec<AtomicSchedule> {
    assert!(
        (n as f64).powi(steps as i32) <= 5e6,
        "enumeration too large"
    );
    let mut out = vec![Vec::new()];
    for _ in 0..steps {
        let mut next = Vec::with_capacity(out.len() * n);
        for prefix in &out {
            for p in 0..n {
                let mut s: Vec<usize> = prefix.clone();
                s.push(p);
                next.push(s);
            }
        }
        out = next;
    }
    out.into_iter().map(AtomicSchedule::from_steps).collect()
}

/// A crash pattern: which processes crash immediately before which round.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CrashPattern {
    events: Vec<(usize, usize)>, // (round, pid)
}

impl CrashPattern {
    /// No crashes.
    pub fn none() -> Self {
        CrashPattern::default()
    }

    /// Crash `pid` before round `round`.
    pub fn with_crash(mut self, round: usize, pid: usize) -> Self {
        self.events.push((round, pid));
        self
    }

    /// The pids crashing before `round`.
    pub fn crashes_before(&self, round: usize) -> Vec<usize> {
        self.events
            .iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, p)| *p)
            .collect()
    }

    /// A random pattern: each process crashes independently with probability
    /// `p_crash` at a uniformly random round in `0..rounds`.
    pub fn random(n: usize, rounds: usize, p_crash: f64, rng: &mut Rng) -> Self {
        let mut pat = CrashPattern::none();
        for pid in 0..n {
            if rng.random_bool(p_crash) {
                pat = pat.with_crash(rng.random_range(0..rounds.max(1)), pid);
            }
        }
        pat
    }

    /// All crash events as `(round, pid)` pairs.
    pub fn events(&self) -> &[(usize, usize)] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_generators() {
        assert_eq!(AtomicSchedule::round_robin(2, 2).steps(), &[0, 1, 0, 1]);
        assert_eq!(AtomicSchedule::sequential(2, 2).steps(), &[0, 0, 1, 1]);
        let mut rng = Rng::seed_from_u64(1);
        let r = AtomicSchedule::random(3, 100, &mut rng);
        assert_eq!(r.len(), 100);
        assert!(r.steps().iter().all(|&p| p < 3));
        assert!(!r.is_empty());
        assert!(AtomicSchedule::from_steps(vec![]).is_empty());
    }

    #[test]
    fn atomic_schedule_iterates() {
        let s = AtomicSchedule::round_robin(2, 1);
        let v: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(v, vec![0, 1]);
        let v2: Vec<usize> = s.into_iter().collect();
        assert_eq!(v2, vec![0, 1]);
    }

    #[test]
    fn iis_generators_shapes() {
        let l = IisSchedule::lockstep(3, 2);
        assert_eq!(l.len(), 2);
        assert_eq!(l.rounds()[0].blocks().len(), 1);
        let s = IisSchedule::sequential(3, 1);
        assert_eq!(s.rounds()[0].blocks().len(), 3);
        let rl = IisSchedule::rotating_leader(3, 3);
        assert_eq!(rl.rounds()[0].blocks()[0], vec![0]);
        assert_eq!(rl.rounds()[1].blocks()[0], vec![1]);
        let lg = IisSchedule::laggard(3, 1);
        assert_eq!(lg.rounds()[0].blocks().last().unwrap(), &vec![2]);
        let mut rng = Rng::seed_from_u64(7);
        let r = IisSchedule::random(4, 5, &mut rng);
        assert_eq!(r.len(), 5);
        for round in r.rounds() {
            assert_eq!(round.participants(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn iis_schedule_push_and_iter() {
        let mut s = IisSchedule::default();
        assert!(s.is_empty());
        s.push(OrderedPartition::simultaneous([0, 1]));
        assert_eq!(s.len(), 1);
        let rounds: Vec<OrderedPartition> = s.into_iter().collect();
        assert_eq!(rounds.len(), 1);
    }

    #[test]
    fn schedule_enumeration_counts() {
        assert_eq!(all_iis_schedules(&[0, 1], 1).len(), 3);
        assert_eq!(all_iis_schedules(&[0, 1], 3).len(), 27);
        assert_eq!(all_iis_schedules(&[0, 1, 2], 2).len(), 169);
        assert_eq!(all_iis_schedules(&[0, 1], 0).len(), 1);
    }

    #[test]
    fn atomic_schedule_enumeration() {
        assert_eq!(all_atomic_schedules(2, 3).len(), 8);
        assert_eq!(all_atomic_schedules(3, 2).len(), 9);
        assert_eq!(all_atomic_schedules(2, 0).len(), 1);
        let set: std::collections::BTreeSet<Vec<usize>> = all_atomic_schedules(2, 4)
            .into_iter()
            .map(|s| s.steps().to_vec())
            .collect();
        assert_eq!(set.len(), 16, "all distinct");
    }

    #[test]
    fn crash_pattern_queries() {
        let p = CrashPattern::none()
            .with_crash(1, 2)
            .with_crash(1, 0)
            .with_crash(3, 1);
        assert_eq!(p.crashes_before(1), vec![2, 0]);
        assert_eq!(p.crashes_before(0), Vec::<usize>::new());
        assert_eq!(p.events().len(), 3);
        let mut rng = Rng::seed_from_u64(3);
        let r = CrashPattern::random(10, 4, 0.5, &mut rng);
        assert!(r.events().len() <= 10);
        for &(round, pid) in r.events() {
            assert!(round < 4 && pid < 10);
        }
    }

    #[test]
    fn laggard_single_process() {
        let lg = IisSchedule::laggard(1, 2);
        assert_eq!(lg.rounds()[0].blocks(), &[vec![0]]);
    }
}
