//! Property coverage for `IisRunner::step_round_with_failures` (ISSUE 4
//! satellite): for n ≤ 3, over **all** crash subsets × **all** ordered
//! partitions, the surviving processes' views still satisfy the one-shot
//! immediate-snapshot axioms of §3.5 (self-inclusion, containment,
//! immediacy — checked by `iis_memory::checks::validate_immediate_snapshot`)
//! and a crashed pid never appears in any later round's concurrency class.

use iis_memory::checks::validate_immediate_snapshot;
use iis_sched::{all_ordered_partitions, IisMachine, IisRunner, MachineStep, OrderedPartition};

/// Writes its pid every round and records every view it receives; never
/// decides, so the harness controls exactly how many rounds run.
struct Probe {
    pid: usize,
    views: Vec<(usize, Vec<(usize, usize)>)>,
}

impl IisMachine for Probe {
    type Value = usize;
    type Output = ();
    fn initial_value(&mut self) -> usize {
        self.pid
    }
    fn on_view(&mut self, round: usize, view: &[(usize, usize)]) -> MachineStep<usize, ()> {
        self.views.push((round, view.to_vec()));
        MachineStep::Continue(self.pid)
    }
}

fn probes(n: usize) -> Vec<Probe> {
    (0..n)
        .map(|pid| Probe {
            pid,
            views: Vec::new(),
        })
        .collect()
}

/// The view process `p` received from memory `round`, if any.
fn view_at(r: &IisRunner<Probe>, p: usize, round: usize) -> Option<Vec<(usize, usize)>> {
    r.machine(p)
        .views
        .iter()
        .find(|(rd, _)| *rd == round)
        .map(|(_, v)| v.clone())
}

/// Every subset of `pids` as a vector, by bitmask.
fn subsets(pids: &[usize]) -> Vec<Vec<usize>> {
    (0..(1usize << pids.len()))
        .map(|mask| {
            pids.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &p)| p)
                .collect()
        })
        .collect()
}

#[test]
fn mid_writeread_crashes_preserve_is_axioms_and_round_one_views() {
    for n in 1..=3usize {
        let pids: Vec<usize> = (0..n).collect();
        for victims in subsets(&pids) {
            for p0 in all_ordered_partitions(&pids) {
                let mut r = IisRunner::new(probes(n));
                r.step_round_with_failures(&p0, &victims);
                // the round-0 one-shot IS instance: everyone wrote (a crash
                // inside WriteRead still leaves the write visible), the
                // victims never received a view
                let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
                let outputs: Vec<Option<Vec<(usize, usize)>>> =
                    (0..n).map(|p| view_at(&r, p, 0)).collect();
                for &v in &victims {
                    assert!(r.is_crashed(v), "victim {v} must be crashed");
                    assert!(outputs[v].is_none(), "victim {v} must be viewless");
                }
                for &p in &pids {
                    if !victims.contains(&p) {
                        assert!(outputs[p].is_some(), "survivor {p} must get a view");
                    }
                }
                validate_immediate_snapshot(&inputs, &outputs)
                    .unwrap_or_else(|e| panic!("n={n} victims={victims:?} partition={p0:?}: {e}"));

                // drive one more round under every ordered partition of the
                // survivors: the crashed pids must be gone from every view,
                // and the surviving views again form a valid IS instance
                let survivors = r.active();
                if survivors.is_empty() {
                    continue;
                }
                for p1 in all_ordered_partitions(&survivors) {
                    let mut r = IisRunner::new(probes(n));
                    r.step_round_with_failures(&p0, &victims);
                    r.step_round(&p1);
                    for p in 0..n {
                        for (rd, view) in &r.machine(p).views {
                            if *rd >= 1 {
                                for (q, _) in view {
                                    assert!(
                                        !victims.contains(q),
                                        "crashed {q} reappeared in round-{rd} \
                                         view of {p} (victims={victims:?})"
                                    );
                                }
                            }
                        }
                    }
                    let inputs: Vec<Option<usize>> = (0..n)
                        .map(|p| survivors.contains(&p).then_some(p))
                        .collect();
                    let outputs: Vec<Option<Vec<(usize, usize)>>> =
                        (0..n).map(|p| view_at(&r, p, 1)).collect();
                    validate_immediate_snapshot(&inputs, &outputs).unwrap_or_else(|e| {
                        panic!("round 1: n={n} victims={victims:?} p1={p1:?}: {e}")
                    });
                }
            }
        }
    }
}

#[test]
fn clean_crashes_before_the_round_are_never_written() {
    // `IisRunner::crash` (crash *before* the round) is the other failure
    // mode: the victim neither writes nor reads, so it is a non-participant
    // of the IS instance — views must not mention it at all
    for n in 1..=3usize {
        let pids: Vec<usize> = (0..n).collect();
        for victims in subsets(&pids) {
            for p0 in all_ordered_partitions(&pids) {
                let mut r = IisRunner::new(probes(n));
                for &v in &victims {
                    r.crash(v);
                }
                r.step_round(&p0);
                let inputs: Vec<Option<usize>> = (0..n)
                    .map(|p| (!victims.contains(&p)).then_some(p))
                    .collect();
                let outputs: Vec<Option<Vec<(usize, usize)>>> =
                    (0..n).map(|p| view_at(&r, p, 0)).collect();
                for &v in &victims {
                    assert!(outputs[v].is_none());
                }
                validate_immediate_snapshot(&inputs, &outputs).unwrap_or_else(|e| {
                    panic!("clean: n={n} victims={victims:?} partition={p0:?}: {e}")
                });
            }
        }
    }
}

#[test]
fn failure_enumeration_covers_the_expected_space() {
    // the sweep above really is exhaustive: 13 ordered partitions of 3 pids
    // (ordered set partitions, Fubini numbers) × 8 crash subsets
    assert_eq!(all_ordered_partitions(&[0, 1, 2]).len(), 13);
    assert_eq!(subsets(&[0, 1, 2]).len(), 8);
    // and a partition with an omitted active process still panics (crashes
    // are modeled by the crash APIs, not by dropping a pid on the floor)
    let caught = std::panic::catch_unwind(|| {
        let mut r = IisRunner::new(probes(2));
        r.step_round_with_failures(&OrderedPartition::sequential([0]), &[]);
    });
    assert!(caught.is_err());
}
