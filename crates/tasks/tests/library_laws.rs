//! Structural laws every library task must satisfy.

use iis_tasks::library::{
    approximate_agreement, chromatic_simplex_agreement, consensus, k_set_consensus,
    one_shot_immediate_snapshot_task, renaming, trivial,
};
use iis_tasks::Task;
use iis_topology::{sds, Color, Complex, Simplex};
use std::collections::BTreeSet;

fn all_library_tasks() -> Vec<Task> {
    vec![
        trivial(1),
        trivial(2),
        consensus(1, &[0, 1]),
        consensus(2, &[0, 1]),
        k_set_consensus(1, 1),
        k_set_consensus(2, 2),
        k_set_consensus(2, 3),
        renaming(1, 3),
        renaming(2, 4),
        approximate_agreement(1, 3),
        one_shot_immediate_snapshot_task(1),
        one_shot_immediate_snapshot_task(2),
        chromatic_simplex_agreement(&sds(&Complex::standard_simplex(1))),
    ]
}

#[test]
fn every_input_simplex_has_allowed_outputs() {
    for task in all_library_tasks() {
        for si in task.input().simplices() {
            assert!(
                !task.delta(&si).is_empty(),
                "{}: Δ({si}) empty — task unsolvable by fiat",
                task.name()
            );
        }
    }
}

#[test]
fn delta_respects_colors_everywhere() {
    for task in all_library_tasks() {
        for (si, outs) in task.delta_entries() {
            let in_colors: BTreeSet<Color> = si.iter().map(|v| task.input().color(v)).collect();
            for so in outs {
                let out_colors: BTreeSet<Color> =
                    so.iter().map(|w| task.output().color(w)).collect();
                assert_eq!(in_colors, out_colors, "{}: X(sᵢ) = X(sₒ)", task.name());
            }
        }
    }
}

#[test]
fn output_complex_is_exactly_the_delta_image() {
    // every output facet appears in some Δ entry (no junk outputs), and
    // every Δ value is an output simplex (checked by the builder, re-checked
    // here)
    for task in all_library_tasks() {
        let mut covered: BTreeSet<Simplex> = BTreeSet::new();
        for (_, outs) in task.delta_entries() {
            for so in outs {
                assert!(task.output().contains_simplex(so));
                covered.insert(so.clone());
            }
        }
        for facet in task.output().facets() {
            assert!(
                covered
                    .iter()
                    .any(|s| facet.is_face_of(s) || s.is_face_of(facet)),
                "{}: output facet {facet} unreachable through Δ",
                task.name()
            );
        }
    }
}

#[test]
fn solo_executions_always_have_a_decision() {
    // every single-vertex input simplex allows some single-vertex output
    for task in all_library_tasks() {
        for v in task.input().vertex_ids() {
            let solo = Simplex::new([v]);
            if !task.input().contains_simplex(&solo) {
                continue;
            }
            let outs = task.delta(&solo);
            assert!(!outs.is_empty(), "{}: solo {v} has no outputs", task.name());
            for so in outs {
                assert_eq!(so.len(), 1, "{}: solo output must be a vertex", task.name());
            }
        }
    }
}

#[test]
fn allows_is_monotone_in_the_decided_set() {
    // if a tuple is allowed, so is every face of it
    for task in all_library_tasks() {
        for (si, outs) in task.delta_entries() {
            for so in outs.iter().take(3) {
                for face in so.faces() {
                    assert!(
                        task.allows(si, &face),
                        "{}: face {face} of allowed {so} rejected",
                        task.name()
                    );
                }
                assert!(task.allows(si, &Simplex::empty()));
            }
        }
    }
}

#[test]
fn consensus_agreement_and_validity() {
    let t = consensus(2, &[0, 1]);
    for (si, outs) in t.delta_entries() {
        let input_vals: BTreeSet<u64> = si
            .iter()
            .map(|v| t.input().label(v).as_scalar().unwrap())
            .collect();
        for so in outs {
            let decisions: BTreeSet<u64> = so
                .iter()
                .map(|w| t.output().label(w).as_scalar().unwrap())
                .collect();
            assert_eq!(decisions.len(), 1, "agreement");
            assert!(
                decisions.is_subset(&input_vals),
                "validity: decide an input"
            );
        }
    }
}

#[test]
fn set_consensus_k_bound_holds() {
    for k in 1..=3usize {
        let t = k_set_consensus(2, k);
        for (_, outs) in t.delta_entries() {
            for so in outs {
                let decisions: BTreeSet<u64> = so
                    .iter()
                    .map(|w| t.output().label(w).as_scalar().unwrap())
                    .collect();
                assert!(decisions.len() <= k);
            }
        }
    }
}

#[test]
fn renaming_names_distinct_and_in_range() {
    let t = renaming(2, 4);
    for (_, outs) in t.delta_entries() {
        for so in outs {
            let names: Vec<u64> = so
                .iter()
                .map(|w| t.output().label(w).as_scalar().unwrap())
                .collect();
            let uniq: BTreeSet<u64> = names.iter().copied().collect();
            assert_eq!(uniq.len(), names.len(), "distinct names");
            assert!(names.iter().all(|&m| (1..=4).contains(&m)));
        }
    }
}

#[test]
fn approximate_agreement_outputs_within_input_hull() {
    let t = approximate_agreement(1, 3);
    for (si, outs) in t.delta_entries() {
        let vals: Vec<u64> = si
            .iter()
            .map(|v| t.input().label(v).as_scalar().unwrap())
            .collect();
        let (lo, hi) = (*vals.iter().min().unwrap(), *vals.iter().max().unwrap());
        for so in outs {
            for w in so.iter() {
                let d = t.output().label(w).as_scalar().unwrap();
                assert!(d >= lo && d <= hi, "validity: output within input hull");
            }
        }
    }
}

#[test]
fn csass_outputs_form_simplices_of_the_target() {
    let target = sds(&Complex::standard_simplex(2));
    let t = chromatic_simplex_agreement(&target);
    for (_, outs) in t.delta_entries() {
        for so in outs {
            // relocate into the target complex via labels
            let ids: Vec<_> = so
                .iter()
                .map(|w| {
                    target
                        .complex()
                        .vertex_id(t.output().color(w), t.output().label(w))
                        .expect("CSASS outputs are target vertices")
                })
                .collect();
            assert!(target.complex().contains_simplex(&Simplex::new(ids)));
        }
    }
}
