//! Distributed tasks as chromatic complexes (§3.2) and the standard task
//! library.
//!
//! A task `T = (Iⁿ, Oⁿ, Δ)` pairs an input complex and an output complex
//! through a color-preserving carrier map `Δ`. This crate provides:
//!
//! - [`Task`] / [`TaskBuilder`] — the formalism with validation,
//! - [`library`] — consensus, k-set consensus, renaming, approximate
//!   agreement, simplex agreement over a subdivision (CSASS, §5), and the
//!   one-shot immediate snapshot as a task.
//!
//! The wait-free solvability decision procedure for these tasks
//! (Proposition 3.1) lives in `iis-core`.
//!
//! # Quickstart
//!
//! ```
//! use iis_tasks::library::k_set_consensus;
//!
//! let t = k_set_consensus(2, 2); // 3 processes, at most 2 distinct ids
//! assert_eq!(t.input().num_facets(), 1);
//! assert_eq!(t.output().colors().len(), 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod library;
mod task;

pub use task::{Task, TaskBuilder, TaskError};
