//! The task formalism of §3.2: input complex, output complex, and the
//! carrier map `Δ`.

use iis_topology::{Color, Complex, Label, Simplex};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Ways a [`Task`] can fail validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TaskError {
    /// The input complex is not chromatic.
    InputNotChromatic,
    /// The output complex is not chromatic.
    OutputNotChromatic,
    /// A `Δ` key is not a simplex of the input complex.
    DeltaKeyNotInput(Simplex),
    /// A `Δ` value is not a simplex of the output complex.
    DeltaValueNotOutput(Simplex),
    /// `Δ` maps an input simplex to an output simplex of different colors
    /// (the map must satisfy `X(sᵢ) = X(sₒ)`, §3.2).
    ColorMismatch {
        /// The input simplex.
        input: Simplex,
        /// The offending output simplex.
        output: Simplex,
    },
    /// An input simplex has no allowed outputs — the task would be
    /// unsolvable by fiat.
    EmptyDelta(Simplex),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InputNotChromatic => write!(f, "input complex is not chromatic"),
            Self::OutputNotChromatic => write!(f, "output complex is not chromatic"),
            Self::DeltaKeyNotInput(s) => write!(f, "Δ key {s} is not an input simplex"),
            Self::DeltaValueNotOutput(s) => write!(f, "Δ value {s} is not an output simplex"),
            Self::ColorMismatch { input, output } => {
                write!(f, "Δ({input}) contains {output} with different colors")
            }
            Self::EmptyDelta(s) => write!(f, "Δ({s}) is empty"),
        }
    }
}

impl std::error::Error for TaskError {}

/// A distributed task `T = (Iⁿ, Oⁿ, Δ)` (§3.2).
///
/// `Δ` maps each input simplex (a participating set with its inputs) to the
/// set of full output tuples those processes may produce; a *partial*
/// decision is acceptable if it extends to one of them
/// ([`Task::allows`]), matching the paper's definition of wait-free
/// solvability (§3.3: the produced tuple "can be extended to an output
/// simplex in `Δ(sᵢ)`").
///
/// Build tasks with [`TaskBuilder`]; ready-made constructions live in
/// [`crate::library`].
#[derive(Clone, Debug)]
pub struct Task {
    name: String,
    input: Complex,
    output: Complex,
    delta: BTreeMap<Simplex, Vec<Simplex>>,
    /// Memoized canonical JSON encoding — tasks are immutable once built,
    /// and content-addressed callers (`iis_core::cache::cache_key`) hash
    /// this string on every request, so serializing once pays off.
    canonical: std::sync::OnceLock<String>,
}

impl Task {
    /// The task's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input complex `Iⁿ`.
    pub fn input(&self) -> &Complex {
        &self.input
    }

    /// The output complex `Oⁿ`.
    pub fn output(&self) -> &Complex {
        &self.output
    }

    /// The full output tuples allowed for input simplex `si` (empty slice if
    /// `si` is not a `Δ` key).
    pub fn delta(&self, si: &Simplex) -> &[Simplex] {
        self.delta.get(si).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all `(input simplex, allowed outputs)` entries.
    pub fn delta_entries(&self) -> impl Iterator<Item = (&Simplex, &[Simplex])> {
        self.delta.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// `true` iff the (possibly partial) output simplex `t` is acceptable
    /// for input simplex `si`: some `sₒ ∈ Δ(si)` has `t ⊆ sₒ`.
    pub fn allows(&self, si: &Simplex, t: &Simplex) -> bool {
        self.delta(si).iter().any(|so| t.is_face_of(so))
    }

    /// Looks up an output vertex by `(color, label)`.
    pub fn output_vertex(&self, color: Color, label: &Label) -> Option<iis_topology::VertexId> {
        self.output.vertex_id(color, label)
    }

    /// The canonical JSON encoding of the task, serialized once and
    /// memoized (tasks are immutable after [`TaskBuilder::build`]).
    ///
    /// Structurally equal tasks produce identical strings — `delta` is
    /// BTreeMap-ordered and the complexes serialize in construction order —
    /// so this is a valid content-address preimage.
    pub fn canonical_json(&self) -> &str {
        use iis_obs::ToJson;
        self.canonical.get_or_init(|| self.to_json().to_string())
    }

    /// `true` iff `Δ` is *monotone*: for every input face `sq ⊆ si`, every
    /// tuple allowed at `sq` extends tuples allowed at... precisely: each
    /// `sₒ ∈ Δ(sq)` is a face of the restriction to `X(sq)` of... The
    /// practically useful direction for solvability is: for faces `sq ⊆ si`,
    /// the restriction of any `sₒ ∈ Δ(si)` to the colors of `sq` is allowed
    /// at `sq`. This checks that direction.
    pub fn is_delta_monotone(&self) -> bool {
        for (si, outs) in &self.delta {
            for sq in si.faces() {
                if sq == *si {
                    continue;
                }
                let colors: BTreeSet<Color> = sq.iter().map(|v| self.input.color(v)).collect();
                for so in outs {
                    let restricted = Simplex::new(
                        so.iter()
                            .filter(|&w| colors.contains(&self.output.color(w))),
                    );
                    if !self.allows(&sq, &restricted) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (inputs: {} facets, outputs: {} facets, Δ entries: {})",
            self.name,
            self.input.num_facets(),
            self.output.num_facets(),
            self.delta.len()
        )
    }
}

/// Incremental constructor for [`Task`]s.
///
/// # Examples
///
/// ```
/// use iis_tasks::TaskBuilder;
/// use iis_topology::{Complex, Simplex};
///
/// let input = Complex::standard_simplex(1);
/// let output = Complex::standard_simplex(1);
/// let full_in = Simplex::new(input.vertex_ids());
/// let full_out = Simplex::new(output.vertex_ids());
/// let mut b = TaskBuilder::new("identity", input, output);
/// b.allow(full_in.clone(), full_out.clone());
/// for (fi, fo) in full_in.faces().into_iter().zip(full_out.faces()) {
///     b.allow(fi, fo);
/// }
/// let task = b.build()?;
/// assert!(task.allows(&full_in, &full_out));
/// # Ok::<(), iis_tasks::TaskError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TaskBuilder {
    name: String,
    input: Complex,
    output: Complex,
    delta: BTreeMap<Simplex, Vec<Simplex>>,
}

impl TaskBuilder {
    /// Starts a task with the given complexes and an empty `Δ`.
    pub fn new(name: impl Into<String>, input: Complex, output: Complex) -> Self {
        TaskBuilder {
            name: name.into(),
            input,
            output,
            delta: BTreeMap::new(),
        }
    }

    /// The input complex (to look up vertex ids while building `Δ`).
    pub fn input(&self) -> &Complex {
        &self.input
    }

    /// The output complex (to look up vertex ids while building `Δ`).
    pub fn output(&self) -> &Complex {
        &self.output
    }

    /// Allows output tuple `so` for input simplex `si` (duplicates are
    /// dropped at `build`).
    pub fn allow(&mut self, si: Simplex, so: Simplex) -> &mut Self {
        self.delta.entry(si).or_default().push(so);
        self
    }

    /// Validates and finishes the task.
    ///
    /// # Errors
    ///
    /// Returns the first [`TaskError`] violated.
    pub fn build(mut self) -> Result<Task, TaskError> {
        if !self.input.is_chromatic() {
            return Err(TaskError::InputNotChromatic);
        }
        if !self.output.is_chromatic() {
            return Err(TaskError::OutputNotChromatic);
        }
        for (si, outs) in &mut self.delta {
            if !self.input.contains_simplex(si) || si.is_empty() {
                return Err(TaskError::DeltaKeyNotInput(si.clone()));
            }
            outs.sort();
            outs.dedup();
            if outs.is_empty() {
                return Err(TaskError::EmptyDelta(si.clone()));
            }
            let in_colors: BTreeSet<Color> = si.iter().map(|v| self.input.color(v)).collect();
            for so in outs.iter() {
                if !self.output.contains_simplex(so) {
                    return Err(TaskError::DeltaValueNotOutput(so.clone()));
                }
                let out_colors: BTreeSet<Color> = so.iter().map(|w| self.output.color(w)).collect();
                if in_colors != out_colors {
                    return Err(TaskError::ColorMismatch {
                        input: si.clone(),
                        output: so.clone(),
                    });
                }
            }
        }
        Ok(Task {
            name: self.name,
            input: self.input,
            output: self.output,
            delta: self.delta,
            canonical: std::sync::OnceLock::new(),
        })
    }
}

/// JSON form: `{"name", "input", "output", "delta": [[si, [so, …]], …]}`.
/// Deserialization re-validates through [`TaskBuilder`], so hand-edited
/// task files cannot produce ill-formed tasks.
impl iis_obs::ToJson for Task {
    fn to_json(&self) -> iis_obs::Json {
        let delta: Vec<(Simplex, Vec<Simplex>)> = self
            .delta
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        iis_obs::Json::obj([
            ("name", self.name.to_json()),
            ("input", self.input.to_json()),
            ("output", self.output.to_json()),
            ("delta", delta.to_json()),
        ])
    }
}

impl iis_obs::FromJson for Task {
    fn from_json(v: &iis_obs::Json) -> Result<Self, iis_obs::JsonError> {
        let name = String::from_json(v.field("name")?)?;
        let input = Complex::from_json(v.field("input")?)?;
        let output = Complex::from_json(v.field("output")?)?;
        let delta = Vec::<(Simplex, Vec<Simplex>)>::from_json(v.field("delta")?)?;
        let mut b = TaskBuilder::new(name, input, output);
        for (si, outs) in delta {
            for so in outs {
                b.allow(si.clone(), so);
            }
        }
        b.build()
            .map_err(|e| iis_obs::JsonError::new(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_topology::Label;

    fn identity_task() -> Task {
        let input = Complex::standard_simplex(1);
        let output = Complex::standard_simplex(1);
        let mut b = TaskBuilder::new("identity", input.clone(), output);
        for si in Complex::standard_simplex(1).simplices() {
            b.allow(si.clone(), si.clone());
        }
        b.build().unwrap()
    }

    #[test]
    fn identity_task_builds_and_allows() {
        let t = identity_task();
        assert_eq!(t.name(), "identity");
        let full = Simplex::new(t.input().vertex_ids());
        assert!(t.allows(&full, &full));
        // partial decisions extend
        let v0 = Simplex::new([t.input().vertex_ids().next().unwrap()]);
        assert!(t.allows(&full, &v0));
        assert!(t.allows(&full, &Simplex::empty()));
        assert!(t.is_delta_monotone());
        assert!(!t.to_string().is_empty());
        assert_eq!(t.delta_entries().count(), 3);
    }

    #[test]
    fn unknown_key_has_no_outputs() {
        let t = identity_task();
        let bogus = Simplex::new([iis_topology::VertexId(99)]);
        assert!(t.delta(&bogus).is_empty());
        assert!(!t.allows(&bogus, &Simplex::empty()));
    }

    #[test]
    fn color_mismatch_rejected() {
        let input = Complex::standard_simplex(1);
        let output = Complex::standard_simplex(1);
        let in_full = Simplex::new(input.vertex_ids());
        let out_v0 = Simplex::new([output.vertex_ids().next().unwrap()]);
        let mut b = TaskBuilder::new("bad", input, output);
        b.allow(in_full, out_v0);
        assert!(matches!(b.build(), Err(TaskError::ColorMismatch { .. })));
    }

    #[test]
    fn non_chromatic_input_rejected() {
        let mut input = Complex::new();
        let a = input.ensure_vertex(Color(0), Label::scalar(0));
        let b2 = input.ensure_vertex(Color(0), Label::scalar(1));
        input.add_facet([a, b2]);
        let b = TaskBuilder::new("bad", input, Complex::standard_simplex(1));
        assert_eq!(b.build().unwrap_err(), TaskError::InputNotChromatic);
    }

    #[test]
    fn delta_key_not_in_input_rejected() {
        let input = Complex::standard_simplex(0);
        let output = Complex::standard_simplex(0);
        let mut b = TaskBuilder::new("bad", input, output);
        b.allow(
            Simplex::new([iis_topology::VertexId(5)]),
            Simplex::new([iis_topology::VertexId(0)]),
        );
        assert!(matches!(b.build(), Err(TaskError::DeltaKeyNotInput(_))));
    }

    #[test]
    fn delta_value_not_in_output_rejected() {
        let input = Complex::standard_simplex(0);
        let output = Complex::standard_simplex(0);
        let mut b = TaskBuilder::new("bad", input, output);
        b.allow(
            Simplex::new([iis_topology::VertexId(0)]),
            Simplex::new([iis_topology::VertexId(5)]),
        );
        assert!(matches!(b.build(), Err(TaskError::DeltaValueNotOutput(_))));
    }

    #[test]
    fn duplicates_deduped() {
        let input = Complex::standard_simplex(0);
        let output = Complex::standard_simplex(0);
        let s = Simplex::new([iis_topology::VertexId(0)]);
        let mut b = TaskBuilder::new("dup", input, output);
        b.allow(s.clone(), s.clone());
        b.allow(s.clone(), s.clone());
        let t = b.build().unwrap();
        assert_eq!(t.delta(&s).len(), 1);
    }

    #[test]
    fn output_vertex_lookup() {
        let t = identity_task();
        assert!(t.output_vertex(Color(0), &Label::scalar(0)).is_some());
        assert!(t.output_vertex(Color(0), &Label::scalar(9)).is_none());
    }

    #[test]
    fn task_json_roundtrip() {
        use iis_obs::{Json, ToJson};
        let t = crate::library::k_set_consensus(1, 1);
        let json = t.to_json().to_string();
        let back: Task = Json::parse_as(&json).unwrap();
        assert_eq!(t.name(), back.name());
        assert!(t.input().same_labeled(back.input()));
        assert!(t.output().same_labeled(back.output()));
        assert_eq!(t.delta_entries().count(), back.delta_entries().count());
        for (si, outs) in t.delta_entries() {
            assert_eq!(back.delta(si), outs);
        }
    }

    #[test]
    fn task_deserialize_revalidates() {
        use iis_obs::{FromJson, Json, ToJson};
        // corrupt a serialized task: Δ value not in the output complex
        let t = identity_task();
        let mut v = t.to_json();
        if let Json::Obj(members) = &mut v {
            let delta = members
                .iter_mut()
                .find(|(k, _)| k == "delta")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Arr(entries) = delta {
                if let Json::Arr(pair) = &mut entries[0] {
                    pair[1] = Json::Arr(vec![Json::Arr(vec![Json::Num(99.0)])]);
                }
            }
        }
        assert!(Task::from_json(&v).is_err());
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<TaskError> = vec![
            TaskError::InputNotChromatic,
            TaskError::OutputNotChromatic,
            TaskError::DeltaKeyNotInput(Simplex::empty()),
            TaskError::DeltaValueNotOutput(Simplex::empty()),
            TaskError::ColorMismatch {
                input: Simplex::empty(),
                output: Simplex::empty(),
            },
            TaskError::EmptyDelta(Simplex::empty()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
