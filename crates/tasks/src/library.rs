//! The standard task library: consensus, k-set consensus, renaming,
//! approximate agreement, simplex agreement — the instances the paper and
//! its surrounding literature reason about.

use crate::{Task, TaskBuilder, TaskError};
use iis_topology::{Color, Complex, Label, Simplex, Subdivision};
use std::collections::BTreeSet;

/// Assembles a task from a *spec function* mapping each input simplex to its
/// allowed full output tuples (as `(color, label)` lists). The output
/// complex is built from exactly the tuples the spec returns, per §3.2
/// (output vertices/simplices are those appearing in some output tuple).
///
/// # Errors
///
/// Propagates [`TaskError`] from validation.
pub fn task_from_spec<F>(
    name: impl Into<String>,
    input: Complex,
    spec: F,
) -> Result<Task, TaskError>
where
    F: Fn(&Complex, &Simplex) -> Vec<Vec<(Color, Label)>>,
{
    let mut output = Complex::new();
    type Tuples = Vec<Vec<(Color, Label)>>;
    let mut entries: Vec<(Simplex, Tuples)> = Vec::new();
    for si in input.simplices() {
        let tuples = spec(&input, &si);
        for tuple in &tuples {
            let ids: Vec<_> = tuple
                .iter()
                .map(|(c, l)| output.ensure_vertex(*c, l.clone()))
                .collect();
            output.add_facet(ids);
        }
        entries.push((si, tuples));
    }
    let mut b = TaskBuilder::new(name, input, output);
    for (si, tuples) in entries {
        for tuple in tuples {
            let ids: Vec<_> = tuple
                .iter()
                .map(|(c, l)| {
                    b.output()
                        .vertex_id(*c, l)
                        .expect("vertex created in first pass")
                })
                .collect();
            b.allow(si.clone(), Simplex::new(ids));
        }
    }
    b.build()
}

/// The trivial task: every process decides its own input. Wait-free solvable
/// with zero communication (`b = 0`).
pub fn trivial(n: usize) -> Task {
    task_from_spec("trivial", Complex::standard_simplex(n), |input, si| {
        vec![si
            .iter()
            .map(|v| (input.color(v), input.label(v).clone()))
            .collect()]
    })
    .expect("trivial task is well-formed")
}

/// Consensus over `n + 1` processes with the given input values: everyone
/// decides the same value, which must be some participant's input. The
/// celebrated FLP/wait-free impossibility: unsolvable for `n ≥ 1`.
pub fn consensus(n: usize, values: &[u64]) -> Task {
    assert!(!values.is_empty(), "consensus needs at least one value");
    let mut input = Complex::new();
    // all assignments of values to processes
    let mut assignment = vec![0usize; n + 1];
    loop {
        let ids: Vec<_> = (0..=n)
            .map(|i| {
                let c = Color(i as u32);
                (c, Label::scalar(values[assignment[i]]))
            })
            .collect();
        let vs: Vec<_> = ids
            .iter()
            .map(|(c, l)| input.ensure_vertex(*c, l.clone()))
            .collect();
        input.add_facet(vs);
        // next assignment
        let mut i = 0;
        loop {
            if i > n {
                break;
            }
            assignment[i] += 1;
            if assignment[i] < values.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
        if i > n {
            break;
        }
    }
    task_from_spec("consensus", input, |input, si| {
        let vals: BTreeSet<u64> = si
            .iter()
            .map(|v| input.label(v).as_scalar().expect("scalar inputs"))
            .collect();
        vals.into_iter()
            .map(|d| {
                si.iter()
                    .map(|v| (input.color(v), Label::scalar(d)))
                    .collect()
            })
            .collect()
    })
    .expect("consensus task is well-formed")
}

/// `(n+1, k)`-set consensus (§3.2, \[4\]): inputs are process ids; each
/// participant decides a participant's id, with at most `k` distinct ids
/// decided. `k = n + 1` is trivial; `k ≤ n` is wait-free unsolvable (the
/// 1993 triple result).
pub fn k_set_consensus(n: usize, k: usize) -> Task {
    assert!(k >= 1);
    task_from_spec(
        format!("({},{k})-set-consensus", n + 1),
        Complex::standard_simplex(n),
        move |input, si| {
            let ids: Vec<u64> = si
                .iter()
                .map(|v| input.label(v).as_scalar().expect("scalar ids"))
                .collect();
            let colors: Vec<Color> = si.iter().map(|v| input.color(v)).collect();
            let m = colors.len();
            // all functions colors -> ids with ≤ k distinct values
            let mut out = Vec::new();
            let mut choice = vec![0usize; m];
            loop {
                let distinct: BTreeSet<usize> = choice.iter().copied().collect();
                if distinct.len() <= k {
                    out.push(
                        (0..m)
                            .map(|i| (colors[i], Label::scalar(ids[choice[i]])))
                            .collect(),
                    );
                }
                let mut i = 0;
                loop {
                    if i == m {
                        break;
                    }
                    choice[i] += 1;
                    if choice[i] < ids.len() {
                        break;
                    }
                    choice[i] = 0;
                    i += 1;
                }
                if i == m {
                    break;
                }
            }
            out
        },
    )
    .expect("set consensus task is well-formed")
}

/// `M`-renaming: inputs are ids; participants decide pairwise-distinct names
/// in `1..=M`.
///
/// Note: in this plain (non-comparison-based) formulation the task is
/// trivially solvable — `Pᵢ` decides name `i + 1` — because ids are usable.
/// The famous `2n`-renaming lower bound concerns *symmetric* protocols; the
/// paper cites its impossibility as the result needing homology. We include
/// the task as a solvable sanity instance for the decision procedure.
pub fn renaming(n: usize, m: usize) -> Task {
    assert!(m > n, "need at least n+1 names");
    task_from_spec(
        format!("{m}-renaming"),
        Complex::standard_simplex(n),
        move |input, si| {
            let colors: Vec<Color> = si.iter().map(|v| input.color(v)).collect();
            let cnt = colors.len();
            // all injective assignments colors -> 1..=m
            let mut out = Vec::new();
            let mut names: Vec<usize> = (0..cnt).collect(); // indices into 1..=m
                                                            // enumerate via odometer over injective tuples
            fn rec(
                colors: &[Color],
                m: usize,
                used: &mut Vec<bool>,
                acc: &mut Vec<(Color, Label)>,
                out: &mut Vec<Vec<(Color, Label)>>,
            ) {
                if acc.len() == colors.len() {
                    out.push(acc.clone());
                    return;
                }
                let i = acc.len();
                for name in 1..=m {
                    if !used[name] {
                        used[name] = true;
                        acc.push((colors[i], Label::scalar(name as u64)));
                        rec(colors, m, used, acc, out);
                        acc.pop();
                        used[name] = false;
                    }
                }
            }
            let mut used = vec![false; m + 1];
            rec(&colors, m, &mut used, &mut Vec::new(), &mut out);
            names.clear();
            out
        },
    )
    .expect("renaming task is well-formed")
}

/// Discretized ε-agreement on the unit interval for `n + 1` processes:
/// inputs are the endpoints `0` or `grid` (representing 0 and 1 on a grid of
/// `grid + 1` points); decisions are grid points within the input range,
/// pairwise at most one grid step apart (ε = 1/grid).
///
/// Wait-free solvable; the rounds needed grow with `grid` (each IIS round
/// refines an edge 3-fold), making this the canonical "solvable at large
/// `b`, not small `b`" instance for Proposition 3.1.
pub fn approximate_agreement(n: usize, grid: u64) -> Task {
    assert!(grid >= 1);
    let mut input = Complex::new();
    let mut stack = vec![0u8; n + 1];
    loop {
        let vs: Vec<_> = (0..=n)
            .map(|i| {
                let val = if stack[i] == 0 { 0 } else { grid };
                input.ensure_vertex(Color(i as u32), Label::scalar(val))
            })
            .collect();
        input.add_facet(vs);
        let mut i = 0;
        while i <= n && stack[i] == 1 {
            stack[i] = 0;
            i += 1;
        }
        if i > n {
            break;
        }
        stack[i] = 1;
    }
    task_from_spec("eps-agreement", input, move |input, si| {
        let vals: Vec<u64> = si
            .iter()
            .map(|v| input.label(v).as_scalar().expect("scalar inputs"))
            .collect();
        let colors: Vec<Color> = si.iter().map(|v| input.color(v)).collect();
        let lo = *vals.iter().min().expect("non-empty simplex");
        let hi = *vals.iter().max().expect("non-empty simplex");
        let m = colors.len();
        let mut out = BTreeSet::new();
        // all assignments with values in {t, t+1} ∩ [lo, hi]
        for t in lo..=hi {
            let choices: Vec<u64> = if t < hi { vec![t, t + 1] } else { vec![t] };
            let mut idx = vec![0usize; m];
            loop {
                let tuple: Vec<(Color, Label)> = (0..m)
                    .map(|i| (colors[i], Label::scalar(choices[idx[i]])))
                    .collect();
                out.insert(tuple);
                let mut i = 0;
                while i < m {
                    idx[i] += 1;
                    if idx[i] < choices.len() {
                        break;
                    }
                    idx[i] = 0;
                    i += 1;
                }
                if i == m {
                    break;
                }
            }
        }
        out.into_iter().collect()
    })
    .expect("approximate agreement task is well-formed")
}

/// Chromatic simplex agreement over a subdivision `A` of the standard
/// simplex (the CSASS task of §5): process `Pᵢ` starts at corner `i` and
/// must output a vertex of `A` of its own color such that the outputs form
/// a simplex of `A` whose carrier is within the participating corners.
///
/// Theorem 5.1 is exactly the statement that this task is wait-free
/// solvable for every chromatic subdivision `A`.
///
/// # Panics
///
/// Panics if the subdivision's base is not a single facet (a simplex).
pub fn chromatic_simplex_agreement(sub: &Subdivision) -> Task {
    assert_eq!(
        sub.base().num_facets(),
        1,
        "CSASS is defined over a subdivided simplex"
    );
    let input = sub.base().clone();
    let output = sub.complex().clone();
    let mut b = TaskBuilder::new("chromatic-simplex-agreement", input.clone(), output);
    for si in input.simplices() {
        let si_colors: BTreeSet<Color> = si.iter().map(|v| input.color(v)).collect();
        // all simplices W of A with X(W) = X(si) and carrier(W) ⊆ si
        for w in sub.complex().simplices() {
            let w_colors: BTreeSet<Color> = w.iter().map(|v| sub.complex().color(v)).collect();
            if w_colors != si_colors {
                continue;
            }
            let carrier = sub.carrier_of_simplex(&w);
            if carrier.is_face_of(&si) {
                b.allow(si.clone(), w);
            }
        }
    }
    b.build().expect("CSASS task is well-formed")
}

/// The one-shot immediate snapshot *as a task* (§3.5/§3.6): equivalent to
/// chromatic simplex agreement over `SDS(sⁿ)`; solvable in exactly one IIS
/// round by the identity decision map.
pub fn one_shot_immediate_snapshot_task(n: usize) -> Task {
    let sub = iis_topology::sds(&Complex::standard_simplex(n));
    chromatic_simplex_agreement(&sub)
}

/// Parses a library task specifier — `trivial:N`, `consensus:N`,
/// `kset:N:K`, `renaming:N:M`, `eps:N:GRID`, `oneshot:N` (`N` is the
/// dimension, i.e. `N+1` processes) — into its [`Task`].
///
/// This is the one spec grammar shared by every front end (the `iis`
/// CLI, the solve service, the gateway's routing layer), so a spec hashes
/// to the same `cache_key` wherever it is parsed.
///
/// # Errors
///
/// Returns a message describing the malformed specifier.
pub fn parse_spec(spec: &str) -> Result<Task, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num =
        |s: &str| -> Result<usize, String> { s.parse().map_err(|_| format!("bad number: {s}")) };
    match parts.as_slice() {
        ["trivial", n] => Ok(trivial(num(n)?)),
        ["consensus", n] => Ok(consensus(num(n)?, &[0, 1])),
        ["kset", n, k] => Ok(k_set_consensus(num(n)?, num(k)?)),
        ["renaming", n, m] => Ok(renaming(num(n)?, num(m)?)),
        ["eps", n, grid] => Ok(approximate_agreement(num(n)?, num(grid)? as u64)),
        ["oneshot", n] => Ok(one_shot_immediate_snapshot_task(num(n)?)),
        _ => Err(format!("unknown task spec: {spec}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_shapes() {
        let t = trivial(2);
        assert_eq!(t.input().num_facets(), 1);
        assert_eq!(t.output().num_vertices(), 3);
        assert!(t.is_delta_monotone());
        let full = Simplex::new(t.input().vertex_ids());
        assert_eq!(t.delta(&full).len(), 1);
    }

    #[test]
    fn binary_consensus_shapes() {
        let t = consensus(1, &[0, 1]);
        // inputs: 2 procs × 2 values → 4 facets
        assert_eq!(t.input().num_facets(), 4);
        // outputs: both decide 0 or both decide 1 → 2 facets + solo faces
        assert!(t.output().num_facets() >= 2);
        // mixed-input simplex allows both decisions
        let v00 = t.input().vertex_id(Color(0), &Label::scalar(0)).unwrap();
        let v11 = t.input().vertex_id(Color(1), &Label::scalar(1)).unwrap();
        let mixed = Simplex::new([v00, v11]);
        assert_eq!(t.delta(&mixed).len(), 2);
        // same-input simplex allows exactly one
        let v10 = t.input().vertex_id(Color(1), &Label::scalar(0)).unwrap();
        let same = Simplex::new([v00, v10]);
        assert_eq!(t.delta(&same).len(), 1);
        // not monotone: a mixed execution may decide 1, but P0-solo must
        // decide its own input 0 — the hallmark of consensus validity
        assert!(!t.is_delta_monotone());
    }

    #[test]
    fn consensus_three_values() {
        let t = consensus(1, &[7, 8, 9]);
        assert_eq!(t.input().num_facets(), 9);
    }

    #[test]
    fn set_consensus_shapes() {
        let t = k_set_consensus(2, 2);
        let full = Simplex::new(t.input().vertex_ids());
        // 27 functions minus 6 bijections (3 distinct) = 21
        assert_eq!(t.delta(&full).len(), 21);
        // solo participant: only its own id
        let v0 = t.input().vertex_id(Color(0), &Label::scalar(0)).unwrap();
        let solo = Simplex::new([v0]);
        assert_eq!(t.delta(&solo).len(), 1);
        // not monotone for the same reason as consensus (solo validity)
        assert!(!t.is_delta_monotone());
    }

    #[test]
    fn set_consensus_trivial_when_k_full() {
        let t = k_set_consensus(1, 2);
        let full = Simplex::new(t.input().vertex_ids());
        assert_eq!(t.delta(&full).len(), 4); // all functions allowed
    }

    #[test]
    fn renaming_shapes() {
        let t = renaming(1, 3);
        let full = Simplex::new(t.input().vertex_ids());
        assert_eq!(t.delta(&full).len(), 6); // P(3,2)
        assert!(t.is_delta_monotone());
    }

    #[test]
    fn approximate_agreement_shapes() {
        let t = approximate_agreement(1, 3);
        assert_eq!(t.input().num_facets(), 4);
        // same-endpoint inputs allow only that endpoint region
        let v0 = t.input().vertex_id(Color(0), &Label::scalar(0)).unwrap();
        let w0 = t.input().vertex_id(Color(1), &Label::scalar(0)).unwrap();
        let same = Simplex::new([v0, w0]);
        for so in t.delta(&same) {
            for v in so.iter() {
                assert_eq!(t.output().label(v).as_scalar(), Some(0));
            }
        }
        // mixed inputs allow adjacent pairs across the whole grid
        let w1 = t.input().vertex_id(Color(1), &Label::scalar(3)).unwrap();
        let mixed = Simplex::new([v0, w1]);
        assert!(t.delta(&mixed).len() >= 7);
        // not monotone: mixed inputs permit interior decisions that a solo
        // run (pinned to its endpoint) cannot make
        assert!(!t.is_delta_monotone());
    }

    #[test]
    fn csass_over_sds_shapes() {
        let t = one_shot_immediate_snapshot_task(1);
        // outputs are the 4 vertices of SDS(s¹)
        assert_eq!(t.output().num_vertices(), 4);
        let full = Simplex::new(t.input().vertex_ids());
        // allowed full tuples: the 3 edges of SDS(s¹)
        assert_eq!(t.delta(&full).len(), 3);
        // not monotone: interior vertices are out of reach of solo runs
        assert!(!t.is_delta_monotone());
    }

    #[test]
    fn csass_carrier_constraint() {
        // a solo participant must converge within its own corner
        let t = one_shot_immediate_snapshot_task(2);
        let v0 = t.input().vertex_id(Color(0), &Label::scalar(0)).unwrap();
        let solo = Simplex::new([v0]);
        assert_eq!(t.delta(&solo).len(), 1, "only the corner itself");
    }

    #[test]
    fn csass_over_iterated_sds() {
        let sub = iis_topology::sds_iterated(&Complex::standard_simplex(1), 2);
        let t = chromatic_simplex_agreement(&sub);
        let full = Simplex::new(t.input().vertex_ids());
        assert_eq!(t.delta(&full).len(), 9);
    }
}
