//! The ISSUE acceptance criteria for the adversary harness:
//!
//! 1. the exhaustive sweep (n = 3, b ≤ 2 — every ordered partition per
//!    round × every crash assignment) passes all oracles on the IIS layer;
//! 2. a deliberately mutated IS memory (test-only fault dropping
//!    self-inclusion) is caught by the fuzzer and shrunk to a ≤ 2-round
//!    counterexample;
//! 3. the same `(seed, case_index)` reproduces the identical schedule,
//!    fault plan, and verdict on any thread.

use iis_adversary::{fuzz, run_iis_case, Adversary, FuzzConfig, IisTrace, Layer, RandomIis};
use iis_obs::{Json, ToJson};
use iis_tasks::library::one_shot_immediate_snapshot_task;

#[test]
fn exhaustive_sweep_passes_all_oracles() {
    // the whole space: 13 partitions of 3 pids per round, every fault
    // assignment (alive / clean@r / inside@r per pid)
    for (b, expect) in [(1usize, 13 * 27), (2, 169 * 125)] {
        let mut cfg = FuzzConfig::new(Layer::Iis);
        cfg.n = 3;
        cfg.rounds = b;
        cfg.exhaustive = true;
        let out = fuzz(&cfg);
        assert_eq!(out.cases, expect, "b = {b} space size");
        assert!(
            out.ok(),
            "b = {b}: {} oracle failures, first: {}",
            out.failures.len(),
            out.failures[0]
                .failures
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn exhaustive_sweep_passes_task_oracles_too() {
    // with a task attached the sweep additionally replays every case with
    // DecisionProtocol machines: wait-freedom (every survivor outputs
    // within the witness's round bound) and task validity (outputs allowed
    // by Δ of the participating set)
    let task = one_shot_immediate_snapshot_task(2);
    let mut cfg = FuzzConfig::new(Layer::Iis);
    cfg.n = 3;
    cfg.rounds = 1;
    cfg.exhaustive = true;
    cfg.task = Some(&task);
    let out = fuzz(&cfg);
    assert_eq!(out.cases, 13 * 27);
    assert!(out.ok(), "first failure: {:?}", out.failures.first());
}

/// The injected fault: drop self-inclusion in P0's earliest recorded view.
fn drop_self_inclusion(trace: &mut IisTrace) {
    for rt in &mut trace.rounds {
        if let Some(view) = &mut rt.views[0] {
            view.retain(|(q, _)| *q != 0);
            return;
        }
    }
}

#[test]
fn mutated_self_inclusion_is_caught_and_shrunk() {
    let mut cfg = FuzzConfig::new(Layer::Iis);
    cfg.n = 3;
    cfg.rounds = 3;
    cfg.cases = 30;
    cfg.seed = 99;
    cfg.max_crashes = 2;
    cfg.shrink = true;
    cfg.mutate = Some(&drop_self_inclusion);
    let out = fuzz(&cfg);
    assert!(!out.ok(), "the mutation must be caught");
    for failure in &out.failures {
        assert!(
            failure
                .failures
                .iter()
                .any(|f| f.to_string().contains("misses its own input")),
            "expected a self-inclusion verdict, got {:?}",
            failure.failures
        );
        assert!(failure.shrink_steps > 0, "shrinking must have run");
        // the report carries the shrunken replayable case; its schedule
        // must be a ≤ 2-round counterexample (1 round suffices here)
        let shrunk = failure.report.field("shrunk").expect("shrunk case");
        let rounds = shrunk
            .get("schedule")
            .and_then(Json::as_array)
            .expect("schedule array");
        assert!(
            rounds.len() <= 2,
            "case {} shrunk to {} rounds: {}",
            failure.case_index,
            rounds.len(),
            shrunk.to_string_pretty()
        );
        // and the shrunken plan has no crashes left — they are irrelevant
        // to the injected fault
        let plan = shrunk.get("plan").and_then(Json::as_array).unwrap();
        assert!(plan.is_empty(), "irrelevant crashes must be shrunk away");
    }
}

#[test]
fn seed_and_index_replay_identically_across_threads() {
    let make = || RandomIis {
        n: 3,
        b: 2,
        max_crashes: 2,
        seed: 2024,
    };
    let here: Vec<String> = (0..40)
        .map(|i| {
            let case = make().case(i);
            let verdict = run_iis_case(&case, None, None);
            format!("{} {:?}", case.to_json().to_string_pretty(), verdict)
        })
        .collect();
    // the same coordinates, evaluated on a different thread and in reverse
    // order, give byte-identical cases and verdicts
    let there: Vec<String> = std::thread::spawn(move || {
        let mut v: Vec<(usize, String)> = (0..40)
            .rev()
            .map(|i| {
                let case = make().case(i);
                let verdict = run_iis_case(&case, None, None);
                (
                    i,
                    format!("{} {:?}", case.to_json().to_string_pretty(), verdict),
                )
            })
            .collect();
        v.sort_by_key(|(i, _)| *i);
        v.into_iter().map(|(_, s)| s).collect()
    })
    .join()
    .expect("worker thread");
    assert_eq!(here, there);
    // and the full driver is deterministic end to end
    let sweep = |_jobs: usize| {
        let mut cfg = FuzzConfig::new(Layer::Iis);
        cfg.seed = 2024;
        cfg.cases = 40;
        cfg.max_crashes = 2;
        cfg.shrink = true;
        cfg.mutate = Some(&drop_self_inclusion);
        fuzz(&cfg)
            .failures
            .iter()
            .map(|f| f.report.to_string_pretty())
            .collect::<Vec<_>>()
    };
    assert_eq!(sweep(1), sweep(4));
}
