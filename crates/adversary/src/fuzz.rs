//! The fuzz driver: picks an adversary for the requested layer, runs the
//! sweep, applies the oracle battery, shrinks failures, and emits
//! replayable JSON reports.
//!
//! The driver is strictly sequential and every case is derived from
//! `(seed, case_index)` alone, so a verdict is independent of `--jobs`,
//! thread counts, and sweep length — replaying one index reproduces the
//! identical schedule, fault plan, and verdict.
//!
//! Counters: `fuzz.cases`, `fuzz.crashes_injected`, `fuzz.oracle_failures`
//! and `fuzz.shrink_steps`.

use crate::adversary::{
    Adversary, ExhaustiveIis, RandomAtomic, RandomBg, RandomEmulation, RandomIis,
};
use crate::atomic::{atomic_candidates, run_atomic_case, AtomicCase};
use crate::bg::{bg_candidates, run_bg_case, BgCase};
use crate::emulation::{emulation_candidates, run_emulation_case, EmulationCase};
use crate::gateway::{gateway_candidates, gateway_case_at, run_gateway_case, GatewayCase};
use crate::iis::{iis_candidates, run_iis_case, IisCase, IisTrace, TaskContext};
use crate::oracle::OracleFailure;
use crate::shrink::shrink_case;
use crate::store::{run_store_case, store_candidates, store_case_at, StoreCase};
use iis_core::solvability::solve_up_to;
use iis_obs::{Json, ToJson};
use iis_tasks::Task;
use std::sync::Arc;

/// Which runtime layer a sweep drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// `iis_sched::IisRunner` — raw iterated immediate snapshots.
    Iis,
    /// `iis_sched::AtomicRunner` — single-writer atomic snapshots.
    Atomic,
    /// `iis_core::emulation` — Figure 2 snapshot emulation on IIS.
    Emulation,
    /// `iis_core::bg` — the BG simulation with safe agreement.
    Bg,
    /// `iis_store::Store` over a fault-injecting I/O backend — durability
    /// and recovery invariants instead of schedule axioms.
    Store,
    /// `iis_cluster::Gateway` over a fault-injecting transport — routing
    /// soundness (never a wrong answer, only late or `503`) instead of
    /// schedule axioms.
    Gateway,
}

impl Layer {
    /// Parses a CLI layer name.
    pub fn parse(s: &str) -> Option<Layer> {
        match s {
            "iis" => Some(Layer::Iis),
            "atomic" => Some(Layer::Atomic),
            "emulation" => Some(Layer::Emulation),
            "bg" => Some(Layer::Bg),
            "store" => Some(Layer::Store),
            "gateway" => Some(Layer::Gateway),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Iis => "iis",
            Layer::Atomic => "atomic",
            Layer::Emulation => "emulation",
            Layer::Bg => "bg",
            Layer::Store => "store",
            Layer::Gateway => "gateway",
        }
    }
}

/// Sweep parameters. `n` and `rounds` size the cases; on the BG layer `n`
/// is both the simulated-process and simulator count and `rounds` the
/// simulated round count.
pub struct FuzzConfig<'a> {
    /// The layer to drive.
    pub layer: Layer,
    /// Sweep seed — with a case index, the full replay coordinate.
    pub seed: u64,
    /// Cases to run (ignored by exhaustive sweeps, which run the space).
    pub cases: usize,
    /// Processes per case.
    pub n: usize,
    /// Rounds (IIS layers) or snapshots-per-process (atomic/emulation/BG).
    pub rounds: usize,
    /// Crash budget per case.
    pub max_crashes: usize,
    /// Shrink failing cases to minimal counterexamples.
    pub shrink: bool,
    /// Enumerate the whole space instead of sampling (IIS layer, small
    /// `n`/`rounds` only).
    pub exhaustive: bool,
    /// Check task validity against this solvable task (IIS layer only).
    pub task: Option<&'a Task>,
    /// Test-only trace mutation, applied before the oracles (IIS layer
    /// only) — lets the suite prove the oracles catch injected faults.
    pub mutate: Option<&'a dyn Fn(&mut IisTrace)>,
}

impl<'a> FuzzConfig<'a> {
    /// A small random sweep on `layer` with one crash per case.
    pub fn new(layer: Layer) -> Self {
        FuzzConfig {
            layer,
            seed: 0,
            cases: 100,
            n: 3,
            rounds: 2,
            max_crashes: 1,
            shrink: false,
            exhaustive: false,
            task: None,
            mutate: None,
        }
    }
}

/// One failing case, with its replay coordinate and JSON report.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// The failing index — replay with the sweep seed.
    pub case_index: usize,
    /// The oracle verdicts.
    pub failures: Vec<OracleFailure>,
    /// Candidate executions spent shrinking (0 when shrinking is off).
    pub shrink_steps: usize,
    /// The replayable report: layer, seed, index, case, failures, and the
    /// shrunken case when available.
    pub report: Json,
}

/// The sweep outcome.
#[derive(Clone, Debug, Default)]
pub struct FuzzOutcome {
    /// Cases executed.
    pub cases: usize,
    /// Failing cases, in discovery order.
    pub failures: Vec<CaseFailure>,
}

impl FuzzOutcome {
    /// `true` iff every case passed every oracle.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn report_json<C: ToJson>(
    layer: Layer,
    seed: u64,
    index: usize,
    case: &C,
    failures: &[OracleFailure],
    shrunk: Option<&C>,
) -> Json {
    Json::obj([
        ("layer", Json::Str(layer.name().to_string())),
        ("seed", Json::Num(seed as f64)),
        ("case_index", Json::Num(index as f64)),
        ("case", case.to_json()),
        (
            "failures",
            Json::Arr(failures.iter().map(ToJson::to_json).collect()),
        ),
        ("shrunk", shrunk.map_or(Json::Null, ToJson::to_json)),
    ])
}

/// Generic sweep loop shared by all four layers.
#[allow(clippy::too_many_arguments)]
fn drive<C: Clone + ToJson>(
    layer: Layer,
    seed: u64,
    total: usize,
    case_at: impl Fn(usize) -> C,
    crashes_of: impl Fn(&C) -> usize,
    run: impl Fn(&C) -> Vec<OracleFailure>,
    candidates: impl Fn(&C) -> Vec<C>,
    shrink: bool,
) -> FuzzOutcome {
    let mut outcome = FuzzOutcome::default();
    iis_obs::progress::fuzz_started(&format!("fuzz {}", layer.name()), total as u64);
    for index in 0..total {
        let case = case_at(index);
        iis_obs::metrics::add("fuzz.cases", 1);
        iis_obs::metrics::add("fuzz.crashes_injected", crashes_of(&case) as u64);
        let failures = run(&case);
        outcome.cases += 1;
        iis_obs::progress::fuzz_case_done();
        if failures.is_empty() {
            continue;
        }
        iis_obs::metrics::add("fuzz.oracle_failures", failures.len() as u64);
        iis_obs::progress::fuzz_failures_add(failures.len() as u64);
        let (shrunk, shrink_steps) = if shrink {
            let (min, steps) = shrink_case(case.clone(), &candidates, |c| !run(c).is_empty());
            (Some(min), steps)
        } else {
            (None, 0)
        };
        let report = report_json(layer, seed, index, &case, &failures, shrunk.as_ref());
        outcome.failures.push(CaseFailure {
            case_index: index,
            failures,
            shrink_steps,
            report,
        });
    }
    outcome
}

/// Runs the sweep described by `cfg`.
///
/// # Panics
///
/// Panics if `cfg.task` is set but the task is not solvable within
/// `cfg.rounds` rounds (the wait-freedom oracle needs a round bound to
/// hold the run against) or its input facets do not cover `n` colors.
pub fn fuzz(cfg: &FuzzConfig<'_>) -> FuzzOutcome {
    match cfg.layer {
        Layer::Iis => {
            let witness = cfg.task.map(|task| {
                let report = solve_up_to(task, cfg.rounds);
                let map = report
                    .witness()
                    .unwrap_or_else(|| {
                        panic!("--task must be solvable within {} rounds", cfg.rounds)
                    })
                    .clone();
                (task, Arc::new(map))
            });
            let run = |case: &IisCase| {
                let ctx = witness.as_ref().map(|(task, map)| {
                    TaskContext::for_case(task, map, case)
                        .expect("task input facets must cover all colors")
                });
                run_iis_case(case, ctx.as_ref(), cfg.mutate)
            };
            if cfg.exhaustive {
                let adv = ExhaustiveIis::new(cfg.n, cfg.rounds);
                let total = adv.len().expect("exhaustive spaces are finite");
                drive(
                    cfg.layer,
                    cfg.seed,
                    total,
                    |i| adv.case(i),
                    |c| c.plan.crashes(),
                    run,
                    iis_candidates,
                    cfg.shrink,
                )
            } else {
                let adv = RandomIis {
                    n: cfg.n,
                    b: cfg.rounds,
                    max_crashes: cfg.max_crashes,
                    seed: cfg.seed,
                };
                drive(
                    cfg.layer,
                    cfg.seed,
                    cfg.cases,
                    |i| adv.case(i),
                    |c| c.plan.crashes(),
                    run,
                    iis_candidates,
                    cfg.shrink,
                )
            }
        }
        Layer::Atomic => {
            let adv = RandomAtomic {
                n: cfg.n,
                k: cfg.rounds.max(1),
                max_crashes: cfg.max_crashes,
                seed: cfg.seed,
            };
            drive(
                cfg.layer,
                cfg.seed,
                cfg.cases,
                |i| adv.case(i),
                |c: &AtomicCase| c.plan.crashes(),
                run_atomic_case,
                atomic_candidates,
                cfg.shrink,
            )
        }
        Layer::Emulation => {
            let adv = RandomEmulation {
                n: cfg.n,
                k: cfg.rounds.max(1),
                b: 4 * cfg.rounds.max(1),
                max_crashes: cfg.max_crashes,
                seed: cfg.seed,
            };
            drive(
                cfg.layer,
                cfg.seed,
                cfg.cases,
                |i| adv.case(i),
                |c: &EmulationCase| c.iis.plan.crashes(),
                run_emulation_case,
                emulation_candidates,
                cfg.shrink,
            )
        }
        Layer::Bg => {
            let adv = RandomBg {
                n_sim: cfg.n,
                k: cfg.rounds.max(1),
                m: cfg.n,
                max_crashes: cfg.max_crashes,
                seed: cfg.seed,
            };
            drive(
                cfg.layer,
                cfg.seed,
                cfg.cases,
                |i| adv.case(i),
                |c: &BgCase| c.plan.crashes(),
                run_bg_case,
                bg_candidates,
                cfg.shrink,
            )
        }
        Layer::Store => {
            let seed = cfg.seed;
            drive(
                cfg.layer,
                cfg.seed,
                cfg.cases,
                |i| store_case_at(seed, i),
                |c: &StoreCase| usize::from(c.crash_at.is_some()),
                run_store_case,
                store_candidates,
                cfg.shrink,
            )
        }
        Layer::Gateway => {
            let seed = cfg.seed;
            drive(
                cfg.layer,
                cfg.seed,
                cfg.cases,
                |i| gateway_case_at(seed, i),
                |c: &GatewayCase| usize::from(c.fault_denom > 0),
                run_gateway_case,
                gateway_candidates,
                cfg.shrink,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweeps_pass_on_every_layer() {
        for layer in [
            Layer::Iis,
            Layer::Atomic,
            Layer::Emulation,
            Layer::Bg,
            Layer::Store,
            Layer::Gateway,
        ] {
            let mut cfg = FuzzConfig::new(layer);
            cfg.cases = 25;
            cfg.seed = 7;
            cfg.max_crashes = 2;
            let out = fuzz(&cfg);
            assert!(out.ok(), "{}: {:?}", layer.name(), out.failures);
            assert_eq!(out.cases, 25);
        }
    }

    #[test]
    fn layer_names_round_trip() {
        for layer in [
            Layer::Iis,
            Layer::Atomic,
            Layer::Emulation,
            Layer::Bg,
            Layer::Store,
            Layer::Gateway,
        ] {
            assert_eq!(Layer::parse(layer.name()), Some(layer));
        }
        assert_eq!(Layer::parse("nope"), None);
    }
}
