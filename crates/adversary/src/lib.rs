//! Deterministic fault-injection and schedule-exploration harness for the
//! wait-free runtime layers.
//!
//! The paper's model is asynchronous processes with crash faults; this
//! crate turns its safety and liveness claims into executable oracles and
//! sweeps them over adversarially chosen schedules and fault plans, across
//! all three runtime layers:
//!
//! - **iis** — raw iterated immediate snapshots ([`iis_sched::IisRunner`]):
//!   per-round §3.5 axioms, no ghost writers, no starved survivor, plus
//!   wait-freedom and task validity against a decision-map witness;
//! - **atomic** — single-writer atomic snapshots
//!   ([`iis_sched::AtomicRunner`]): scan linearizability and wait-freedom;
//! - **emulation** — the §4 Figure 2 snapshot emulation
//!   ([`iis_core::EmulatorMachine`]): snapshot-history atomicity and
//!   non-blocking progress under mid-WriteRead crashes;
//! - **bg** — the BG simulation ([`iis_core::bg::BgSimulation`]): `f`
//!   simulator crashes stall at most `f` simulated processes, and decided
//!   views nest;
//! - **gateway** — the cluster gateway ([`iis_cluster::Gateway`]) over a
//!   fault-injecting transport: under drops, delays, short reads, and
//!   dead shards, no question is ever answered wrongly, misaligned, or
//!   twice — only late or `503` (purity makes failover sound).
//!
//! Everything is replayable: a case is a pure function of
//! `(seed, case_index)` ([`adversary::derive_seed`]), the driver is
//! sequential, and failing cases are shrunk ([`shrink::shrink_case`]) to
//! minimal counterexamples emitted as JSON reports.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod atomic;
pub mod bg;
pub mod emulation;
pub mod fuzz;
pub mod gateway;
pub mod iis;
pub mod oracle;
pub mod plan;
pub mod shrink;
pub mod store;

pub use adversary::{
    derive_seed, Adversary, ExhaustiveIis, RandomAtomic, RandomBg, RandomEmulation, RandomIis,
};
pub use atomic::{run_atomic_case, AtomicCase};
pub use bg::{run_bg_case, BgCase};
pub use emulation::{run_emulation_case, EmulationCase};
pub use fuzz::{fuzz, CaseFailure, FuzzConfig, FuzzOutcome, Layer};
pub use gateway::{run_gateway_case, FaultyTransport, GatewayCase, MockCluster, TransportFault};
pub use iis::{check_iis_trace, execute_iis, run_iis_case, IisCase, IisTrace, TaskContext};
pub use oracle::OracleFailure;
pub use plan::{CrashEvent, CrashMode, FaultPlan};
pub use shrink::shrink_case;
pub use store::{run_store_case, FaultProbe, FaultyIo, StoreCase};
