//! The oracle battery: what "correct under this schedule and fault plan"
//! means, per layer.
//!
//! Every executor returns a (possibly empty) list of [`OracleFailure`]s;
//! a failure is a counterexample candidate that the shrinker then reduces.

use iis_core::emulation::SnapshotHistoryError;
use iis_memory::checks::{IsAxiomError, ScanOrderError};
use iis_obs::{Json, ToJson};
use std::fmt;

/// A violated runtime property, with enough context to read the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleFailure {
    /// A round's one-shot immediate-snapshot instance violated a §3.5
    /// axiom (self-inclusion, containment, immediacy, or a bad value).
    IsAxiom {
        /// The offending round.
        round: usize,
        /// The violated axiom.
        error: IsAxiomError,
    },
    /// A process that crashed at `crashed_at` showed up in a later view —
    /// crashed processes must stay dead.
    GhostWriter {
        /// Round of the sighting.
        round: usize,
        /// The crashed process that reappeared.
        pid: usize,
        /// The round it crashed at.
        crashed_at: usize,
        /// The survivor whose view contains the ghost.
        seen_by: usize,
    },
    /// Wait-freedom: a surviving process did not receive a view in a round
    /// it was active for.
    MissingView {
        /// The starved round.
        round: usize,
        /// The starved process.
        pid: usize,
    },
    /// Wait-freedom: a surviving process failed to output within the round
    /// (or step) bound.
    NotDecided {
        /// The process (or simulated process) without an output.
        pid: usize,
    },
    /// Task validity: the decided outputs do not form a simplex allowed by
    /// Δ applied to the participating set.
    InvalidDecision {
        /// The participating processes (all that wrote round 0).
        participants: Vec<usize>,
        /// The decided output vertices, as raw ids.
        outputs: Vec<usize>,
    },
    /// Atomic-snapshot linearizability: two scans with incomparable
    /// version vectors.
    ScanOrder {
        /// The incomparable pair.
        error: ScanOrderError,
    },
    /// Emulated snapshot histories violated atomicity (comparability,
    /// self-inclusion, or monotonicity).
    SnapshotHistory {
        /// The violated history property.
        error: SnapshotHistoryError,
    },
    /// BG progress: more simulated processes stalled than crashed
    /// simulators — f crashes may block at most f simulated processes.
    BgStalled {
        /// Simulated processes without a decision after the step bound.
        undecided: usize,
        /// Crashed simulators (the bound).
        crashes: usize,
    },
    /// BG safe agreement: the number of processes stalled inside occupied
    /// unsafe zones exceeds the number of crashed simulators.
    BgBlocked {
        /// Processes blocked on an occupied unsafe zone.
        blocked: usize,
        /// Crashed simulators (the bound).
        crashes: usize,
    },
    /// BG validity: two decided final views have incomparable participant
    /// sets — snapshots of the simulated memory must nest.
    BgIncomparableViews {
        /// First simulated process.
        a: usize,
        /// Second simulated process.
        b: usize,
    },
    /// Storage recovery: a store invariant (no corrupted record served,
    /// durability of fault-free acknowledged puts, index ≡ rescan) was
    /// violated under injected I/O faults.
    StoreRecovery {
        /// Which invariant broke, and how.
        detail: String,
    },
    /// Gateway routing: a question was answered wrongly, misaligned,
    /// dropped, or duplicated under injected transport faults — purity
    /// allows an answer to be late or `503`, never different.
    GatewayRouting {
        /// Which invariant broke, and how.
        detail: String,
    },
}

impl OracleFailure {
    /// Short machine-readable kind tag, used in JSON reports and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::IsAxiom { .. } => "is_axiom",
            Self::GhostWriter { .. } => "ghost_writer",
            Self::MissingView { .. } => "missing_view",
            Self::NotDecided { .. } => "not_decided",
            Self::InvalidDecision { .. } => "invalid_decision",
            Self::ScanOrder { .. } => "scan_order",
            Self::SnapshotHistory { .. } => "snapshot_history",
            Self::BgStalled { .. } => "bg_stalled",
            Self::BgBlocked { .. } => "bg_blocked",
            Self::BgIncomparableViews { .. } => "bg_incomparable_views",
            Self::StoreRecovery { .. } => "store_recovery",
            Self::GatewayRouting { .. } => "gateway_routing",
        }
    }
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IsAxiom { round, error } => write!(f, "round {round}: {error}"),
            Self::GhostWriter {
                round,
                pid,
                crashed_at,
                seen_by,
            } => write!(
                f,
                "P{pid} crashed at round {crashed_at} but appears in \
                 round-{round} view of P{seen_by}"
            ),
            Self::MissingView { round, pid } => {
                write!(f, "P{pid} active in round {round} but got no view")
            }
            Self::NotDecided { pid } => {
                write!(f, "P{pid} survived but never output within the bound")
            }
            Self::InvalidDecision {
                participants,
                outputs,
            } => write!(
                f,
                "outputs {outputs:?} not allowed by Δ for participants {participants:?}"
            ),
            Self::ScanOrder { error } => write!(f, "{error}"),
            Self::SnapshotHistory { error } => write!(f, "{error}"),
            Self::BgStalled { undecided, crashes } => write!(
                f,
                "{undecided} simulated processes stalled under {crashes} \
                 simulator crashes (bound: at most {crashes})"
            ),
            Self::BgBlocked { blocked, crashes } => write!(
                f,
                "{blocked} processes blocked in unsafe zones under {crashes} \
                 simulator crashes (bound: at most {crashes})"
            ),
            Self::BgIncomparableViews { a, b } => write!(
                f,
                "simulated processes {a} and {b} decided incomparable views"
            ),
            Self::StoreRecovery { detail } => write!(f, "{detail}"),
            Self::GatewayRouting { detail } => write!(f, "{detail}"),
        }
    }
}

impl ToJson for OracleFailure {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind().to_string())),
            ("detail", Json::Str(self.to_string())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let f = OracleFailure::IsAxiom {
            round: 1,
            error: IsAxiomError::SelfInclusion { pid: 0 },
        };
        assert_eq!(f.kind(), "is_axiom");
        assert_eq!(f.to_string(), "round 1: view of 0 misses its own input");
        let j = f.to_json();
        assert_eq!(
            j.field("kind").expect("kind present").as_str(),
            Some("is_axiom")
        );
    }
}
