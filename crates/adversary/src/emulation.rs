//! The emulation-layer executor: drives the §4 Figure 2 emulation
//! (`iis_core::EmulatorMachine` on top of `iis_sched::IisRunner`) under an
//! arbitrary IIS schedule and fault plan, then checks the emulated
//! snapshot histories for atomicity and the survivors for progress.

use crate::iis::IisCase;
use crate::oracle::OracleFailure;
use iis_core::emulation::validate_snapshot_histories;
use iis_core::EmulatorMachine;
use iis_obs::{Json, ToJson};
use iis_sched::{AtomicMachine, IisRunner, OrderedPartition};
use std::collections::BTreeSet;

/// One fuzz case on the emulation layer: the IIS case supplies schedule
/// and fault plan; `k` is the number of emulated write/snapshot pairs each
/// process performs before deciding.
#[derive(Clone, Debug)]
pub struct EmulationCase {
    /// The underlying IIS schedule and crash plan.
    pub iis: IisCase,
    /// Emulated snapshots per process.
    pub k: usize,
}

impl ToJson for EmulationCase {
    fn to_json(&self) -> Json {
        Json::obj([("iis", self.iis.to_json()), ("k", Json::Num(self.k as f64))])
    }
}

/// The `KShot`-style probe: writes `(pid, sq)` encoded as `u64`, decides
/// after `k` emulated snapshots.
struct KShot {
    pid: usize,
    k: usize,
    sq: usize,
}

impl AtomicMachine for KShot {
    type Value = u64; // encodes (pid << 16) | sq
    type Output = Vec<u64>;
    fn next_write(&mut self) -> u64 {
        self.sq += 1;
        ((self.pid as u64) << 16) | self.sq as u64
    }
    fn on_snapshot(&mut self, snap: &[Option<u64>]) -> Option<Vec<u64>> {
        if self.sq >= self.k {
            Some(snap.iter().map(|c| c.map_or(0, |v| v & 0xffff)).collect())
        } else {
            None
        }
    }
}

/// Executes `case` and checks the oracles: every survivor's emulation
/// completes (the protocol is non-blocking, so crashes cannot stall it),
/// and all emulated snapshot histories — including the partial histories
/// of crashed processes — are atomic.
pub fn run_emulation_case(case: &EmulationCase) -> Vec<OracleFailure> {
    let n = case.iis.n;
    let machines: Vec<EmulatorMachine<KShot>> = (0..n)
        .map(|pid| {
            EmulatorMachine::new(
                pid,
                n,
                KShot {
                    pid,
                    k: case.k,
                    sq: 0,
                },
            )
        })
        .collect();
    let mut runner = IisRunner::new(machines);
    for (round, scheduled) in case.iis.schedule.rounds().iter().enumerate() {
        for v in case.iis.plan.clean_at(round) {
            if !runner.is_crashed(v) {
                runner.crash(v);
            }
        }
        let active = runner.active();
        if active.is_empty() {
            break;
        }
        let present: BTreeSet<usize> = scheduled.participants().into_iter().collect();
        let missing: Vec<usize> = active
            .iter()
            .copied()
            .filter(|p| !present.contains(p))
            .collect();
        let mut blocks = scheduled
            .restrict(|p| active.contains(&p))
            .blocks()
            .to_vec();
        if !missing.is_empty() {
            blocks.push(missing);
        }
        let partition = OrderedPartition::new(blocks).expect("repaired partition");
        let inside: Vec<usize> = case
            .iis
            .plan
            .inside_at(round)
            .into_iter()
            .filter(|&v| !runner.is_crashed(v))
            .collect();
        runner.step_round_with_failures(&partition, &inside);
    }
    // each emulated op needs at most a few memories; run the survivors in
    // lockstep until everyone finishes, generously bounded
    let mut extra = 8 * (case.k + 1) * n + 16;
    while !runner.is_quiescent() && extra > 0 {
        runner.step_round(&OrderedPartition::simultaneous(runner.active()));
        extra -= 1;
    }
    let mut failures = Vec::new();
    for p in 0..n {
        if !runner.is_crashed(p) && runner.output(p).is_none() {
            failures.push(OracleFailure::NotDecided { pid: p });
        }
    }
    let histories: Vec<Vec<(usize, Vec<u64>)>> = (0..n)
        .map(|p| {
            runner
                .machine(p)
                .snapshot_history()
                .iter()
                .map(|(sq, cells)| {
                    (
                        *sq,
                        cells.iter().map(|c| c.map_or(0, |v| v & 0xffff)).collect(),
                    )
                })
                .collect()
        })
        .collect();
    if let Err(error) = validate_snapshot_histories(&histories) {
        failures.push(OracleFailure::SnapshotHistory { error });
    }
    failures
}

/// One-step reductions: shrink the underlying IIS case.
pub fn emulation_candidates(case: &EmulationCase) -> Vec<EmulationCase> {
    crate::iis::iis_candidates(&case.iis)
        .into_iter()
        .map(|iis| EmulationCase { iis, k: case.k })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CrashEvent, CrashMode, FaultPlan};
    use iis_sched::IisSchedule;

    #[test]
    fn lockstep_emulation_passes() {
        let case = EmulationCase {
            iis: IisCase {
                n: 3,
                schedule: IisSchedule::lockstep(3, 4),
                plan: FaultPlan::none(),
                input_facet: 0,
            },
            k: 1,
        };
        assert_eq!(run_emulation_case(&case), vec![]);
    }

    #[test]
    fn mid_op_crash_keeps_histories_atomic() {
        let case = EmulationCase {
            iis: IisCase {
                n: 3,
                schedule: IisSchedule::sequential(3, 4),
                plan: FaultPlan {
                    events: vec![CrashEvent {
                        at: 1,
                        pid: 0,
                        mode: CrashMode::Inside,
                    }],
                },
                input_facet: 0,
            },
            k: 2,
        };
        assert_eq!(run_emulation_case(&case), vec![]);
    }
}
