//! Storage-layer fault injection: a deterministic [`FaultyIo`] backend for
//! `iis_store::Store` and the `iis fuzz --layer store` workload that drives
//! it.
//!
//! Every fault is a pure function of `(seed, op_index)` via
//! [`derive_seed`], so a failing case replays bit-identically from its
//! `(sweep_seed, case_index)` coordinate — the same discipline PR 4
//! established for schedule faults, extended to the durability stack:
//!
//! - **short write** — a prefix of the bytes persists, the append errors;
//! - **ENOSPC** — nothing persists, the append errors;
//! - **bit flip** — the append succeeds *silently* with one corrupted bit
//!   (the fault the per-record checksum exists to catch);
//! - **failed flush** — buffered bytes stay buffered, the flush errors;
//! - **crash at op k** — flushed bytes survive, a seed-determined prefix
//!   of each unflushed tail survives, every later op fails.
//!
//! [`run_store_case`] runs a randomized put/get workload against a store
//! over `FaultyIo`, crashes it, reopens twice over the surviving bytes,
//! and asserts the recovery invariants: no value is ever served that was
//! not written, every fault-free acknowledged put survives the crash, and
//! a second reopen agrees exactly with the first (index ≡ rescan).

use crate::adversary::derive_seed;
use crate::oracle::OracleFailure;
use iis_core::cache::fnv1a64;
use iis_obs::{Json, Rng, ToJson};
use iis_store::io::{Io, MemIo};
use iis_store::Store;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// The injectable fault kinds, tagged per op in the [`FaultProbe`] log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Append persisted only a prefix and returned an error.
    ShortWrite,
    /// Append persisted nothing and returned an error (ENOSPC).
    NoSpace,
    /// Append succeeded but silently corrupted one bit.
    BitFlip,
    /// Flush returned an error without flushing.
    FailedFlush,
    /// The crash point: unflushed tails partially lost, later ops fail.
    Crash,
}

#[derive(Default)]
struct FaultLog {
    ops: u64,
    injected: Vec<(u64, FaultKind)>,
    crashed: bool,
}

/// A shared window into a [`FaultyIo`]'s op counter and injection log,
/// so the workload harness can bracket each store call and ask "did a
/// fault land in this range?" after the `Box<dyn Io>` has been moved
/// into the store.
#[derive(Clone, Default)]
pub struct FaultProbe {
    log: Arc<Mutex<FaultLog>>,
}

impl FaultProbe {
    fn with<T>(&self, f: impl FnOnce(&mut FaultLog) -> T) -> T {
        f(&mut self.log.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Ops issued so far (every [`Io`] call counts one).
    pub fn ops(&self) -> u64 {
        self.with(|l| l.ops)
    }

    /// `true` iff any fault (including the crash) landed in `[from, to)`.
    pub fn injected_between(&self, from: u64, to: u64) -> bool {
        self.with(|l| l.injected.iter().any(|(op, _)| (from..to).contains(op)))
    }

    /// Faults injected so far.
    pub fn injected(&self) -> Vec<(u64, FaultKind)> {
        self.with(|l| l.injected.clone())
    }

    /// `true` once the crash point has been hit.
    pub fn crashed(&self) -> bool {
        self.with(|l| l.crashed)
    }
}

/// A deterministic fault-injecting [`Io`] over an in-memory filesystem.
///
/// Each op rolls `derive_seed(seed, op_index)`; when the roll lands on
/// the `1/denom` fault lane, the op misbehaves per [`FaultKind`]. With
/// `denom == 0` no faults inject and `FaultyIo` behaves exactly like its
/// inner [`MemIo`] — the control every invariant is calibrated against.
pub struct FaultyIo {
    inner: MemIo,
    seed: u64,
    denom: u64,
    crash_at: Option<u64>,
    probe: FaultProbe,
}

fn injected_err(what: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {what}"))
}

impl FaultyIo {
    /// A fresh injector over an empty in-memory filesystem. Faults fire
    /// on roughly `1/denom` of mutating ops (`0` disables them); the op
    /// numbered `crash_at` (if any) becomes the crash point.
    pub fn new(seed: u64, denom: u64, crash_at: Option<u64>) -> FaultyIo {
        FaultyIo {
            inner: MemIo::new(),
            seed,
            denom,
            crash_at,
            probe: FaultProbe::default(),
        }
    }

    /// A handle on the underlying in-memory filesystem — what "the disk"
    /// holds. Clones share state, so reopening a store over this models a
    /// process restart on the surviving bytes.
    pub fn mem(&self) -> MemIo {
        self.inner.clone()
    }

    /// The op/injection window shared with the harness.
    pub fn probe(&self) -> FaultProbe {
        self.probe.clone()
    }

    /// Counts the op; errors if crashed; fires the crash point.
    fn tick(&mut self) -> std::io::Result<(u64, u64)> {
        let (op, crashed) = self.probe.with(|l| {
            let op = l.ops;
            l.ops += 1;
            (op, l.crashed)
        });
        if crashed {
            return Err(injected_err("backend crashed"));
        }
        if self.crash_at == Some(op) {
            self.probe.with(|l| {
                l.crashed = true;
                l.injected.push((op, FaultKind::Crash));
            });
            let seed = self.seed;
            self.inner.crash(|path, unflushed| {
                let r = derive_seed(seed, op ^ fnv1a64(path.to_string_lossy().as_bytes()));
                (r % (unflushed as u64 + 1)) as usize
            });
            return Err(injected_err("crash point"));
        }
        Ok((op, derive_seed(self.seed, op)))
    }

    /// The fault roll for a mutating op: `Some(kind_selector)` when this
    /// op is faulty.
    fn roll(&self, r: u64) -> Option<u64> {
        (self.denom > 0 && r.is_multiple_of(self.denom)).then_some(r >> 8)
    }

    fn record(&self, op: u64, kind: FaultKind) {
        self.probe.with(|l| l.injected.push((op, kind)));
    }
}

impl Io for FaultyIo {
    fn create_dir_all(&mut self, dir: &Path) -> std::io::Result<()> {
        self.tick()?;
        self.inner.create_dir_all(dir)
    }

    fn list(&mut self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.tick()?;
        self.inner.list(dir)
    }

    fn len(&mut self, path: &Path) -> std::io::Result<u64> {
        self.tick()?;
        self.inner.len(path)
    }

    fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.tick()?;
        self.inner.read(path)
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: u64) -> std::io::Result<Vec<u8>> {
        self.tick()?;
        self.inner.read_range(path, offset, len)
    }

    fn create(&mut self, path: &Path) -> std::io::Result<()> {
        self.tick()?;
        self.inner.create(path)
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let (op, r) = self.tick()?;
        let Some(sel) = self.roll(r) else {
            return self.inner.append(path, bytes);
        };
        match sel % 3 {
            0 => {
                self.record(op, FaultKind::ShortWrite);
                let keep = if bytes.is_empty() {
                    0
                } else {
                    ((sel >> 8) as usize) % bytes.len()
                };
                self.inner.append(path, &bytes[..keep])?;
                Err(injected_err("short write"))
            }
            1 => {
                self.record(op, FaultKind::NoSpace);
                Err(injected_err("no space left on device"))
            }
            _ => {
                self.record(op, FaultKind::BitFlip);
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let i = ((sel >> 8) as usize) % corrupted.len();
                    corrupted[i] ^= 1 << ((sel >> 40) % 8);
                }
                // the lying disk: reports success, stored garbage
                self.inner.append(path, &corrupted)
            }
        }
    }

    fn flush(&mut self, path: &Path) -> std::io::Result<()> {
        let (op, r) = self.tick()?;
        if self.roll(r).is_some() {
            self.record(op, FaultKind::FailedFlush);
            return Err(injected_err("flush failed"));
        }
        self.inner.flush(path)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> std::io::Result<()> {
        self.tick()?;
        self.inner.truncate(path, len)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.tick()?;
        self.inner.rename(from, to)
    }

    fn remove(&mut self, path: &Path) -> std::io::Result<()> {
        self.tick()?;
        self.inner.remove(path)
    }
}

/// One storage fuzz case: a seeded workload shape. The whole put/get
/// sequence and every fault derive from these four numbers.
#[derive(Clone, Debug)]
pub struct StoreCase {
    /// The case seed (already mixed from `(sweep_seed, index)`).
    pub seed: u64,
    /// Store operations (puts and gets) the workload attempts.
    pub num_ops: usize,
    /// Fault density: roughly one injected fault per `fault_denom`
    /// mutating I/O ops (`0` disables injection).
    pub fault_denom: u64,
    /// I/O op index at which the backend crashes, if any.
    pub crash_at: Option<u64>,
}

impl ToJson for StoreCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Num(self.seed as f64)),
            ("num_ops", Json::Num(self.num_ops as f64)),
            ("fault_denom", Json::Num(self.fault_denom as f64)),
            (
                "crash_at",
                self.crash_at.map_or(Json::Null, |k| Json::Num(k as f64)),
            ),
        ])
    }
}

/// The case at `index` of the sweep seeded by `sweep_seed`.
pub fn store_case_at(sweep_seed: u64, index: usize) -> StoreCase {
    let seed = derive_seed(sweep_seed, index as u64);
    let mut rng = Rng::seed_from_u64(seed);
    let num_ops = rng.random_range(6usize..40);
    let fault_denom = rng.random_range(2u64..9);
    let crash_at = rng
        .random_bool(0.6)
        .then(|| rng.random_range(4u64..uppermost_op(num_ops)));
    StoreCase {
        seed,
        num_ops,
        fault_denom,
        crash_at,
    }
}

/// An upper bound on interesting crash points: open costs a few ops and
/// each put costs at most a handful (append + flush + repair truncate).
fn uppermost_op(num_ops: usize) -> u64 {
    8 + 4 * num_ops as u64
}

/// Simpler variants of `case` for the shrinker: shorter workload prefix,
/// no crash, sparser faults.
pub fn store_candidates(case: &StoreCase) -> Vec<StoreCase> {
    let mut out = Vec::new();
    if case.num_ops > 1 {
        let mut c = case.clone();
        c.num_ops /= 2;
        out.push(c);
        let mut c = case.clone();
        c.num_ops -= 1;
        out.push(c);
    }
    if case.crash_at.is_some() {
        let mut c = case.clone();
        c.crash_at = None;
        out.push(c);
    }
    if let Some(k) = case.crash_at {
        if k > 4 {
            let mut c = case.clone();
            c.crash_at = Some(k / 2);
            out.push(c);
        }
    }
    if case.fault_denom > 0 {
        let mut c = case.clone();
        c.fault_denom = 0;
        out.push(c);
        let mut c = case.clone();
        c.fault_denom *= 4;
        out.push(c);
    }
    out
}

fn fail(failures: &mut Vec<OracleFailure>, detail: String) {
    failures.push(OracleFailure::StoreRecovery { detail });
}

/// The key universe the workload draws from — small, so first-write-wins
/// collisions and duplicate-key recovery actually exercise.
const KEYS: u64 = 6;

/// Runs one storage fuzz case and returns every violated invariant.
///
/// Phase 1 drives a store over [`FaultyIo`] with a seeded put/get mix,
/// tracking every attempted value, and which acknowledged puts were
/// *fault-free* (no injected fault inside the put's I/O op window — those
/// are the durability obligations). Phase 2 crashes the backend (at the
/// case's crash point, or at the end). Phases 3–4 reopen the surviving
/// bytes twice over a clean backend and assert:
///
/// 1. a clean reopen never errors;
/// 2. **no fabrication/corruption**: every value served was attempted for
///    exactly that key (a checksum-defeating corruption would surface
///    here);
/// 3. **durability**: every fault-free acknowledged put is served after
///    the crash — quarantine recovery included;
/// 4. **index ≡ rescan**: the second reopen serves exactly what the first
///    did, and finds nothing left to repair.
pub fn run_store_case(case: &StoreCase) -> Vec<OracleFailure> {
    let mut failures = Vec::new();
    let dir = PathBuf::from("/store");
    let io = FaultyIo::new(case.seed, case.fault_denom, case.crash_at);
    let mem = io.mem();
    let probe = io.probe();
    let mut rng = Rng::seed_from_u64(derive_seed(case.seed, 0xF00D));
    let mut attempted: HashMap<u64, Vec<String>> = HashMap::new();
    let mut durable: HashMap<u64, String> = HashMap::new();
    let mut attempts = 0u64;

    // phase 1: the faulty workload
    match Store::open_with(&dir, Box::new(io)) {
        Err(e) => {
            if !probe.crashed() {
                fail(
                    &mut failures,
                    format!("open errored without a crash point: {e}"),
                );
            }
        }
        Ok(mut store) => {
            for _ in 0..case.num_ops {
                if probe.crashed() {
                    break;
                }
                let key = rng.random_range(0u64..KEYS);
                if rng.random_bool(0.7) {
                    attempts += 1;
                    let filler = "x".repeat(rng.random_range(0usize..32));
                    let value = format!("k{key}-a{attempts}-{filler}");
                    attempted.entry(key).or_default().push(value.clone());
                    let before = probe.ops();
                    if let Ok(true) = store.put(key, &value) {
                        let after = probe.ops();
                        if !probe.injected_between(before, after) {
                            durable.entry(key).or_insert(value);
                        }
                    }
                } else if let Ok(Some(v)) = store.get(key) {
                    if !attempted.get(&key).is_some_and(|vs| vs.contains(&v)) {
                        fail(
                            &mut failures,
                            format!("live get({key:#x}) served a never-attempted value {v:?}"),
                        );
                    }
                }
            }
        }
    }

    // phase 2: whatever was going to crash has crashed; lose a
    // seed-determined prefix of any remaining unflushed tails
    if !probe.crashed() {
        let seed = case.seed;
        mem.crash(|path, unflushed| {
            let r = derive_seed(seed, 0xDEAD ^ fnv1a64(path.to_string_lossy().as_bytes()));
            (r % (unflushed as u64 + 1)) as usize
        });
    }

    // phase 3: clean reopen — recovery and its invariants
    let mut first = match Store::open_with(&dir, Box::new(mem.clone())) {
        Ok(store) => store,
        Err(e) => {
            fail(&mut failures, format!("clean reopen errored: {e}"));
            return failures;
        }
    };
    for key in 0..KEYS {
        match first.get(key) {
            Ok(Some(v)) => {
                if !attempted.get(&key).is_some_and(|vs| vs.contains(&v)) {
                    fail(
                        &mut failures,
                        format!("recovered get({key:#x}) served a never-attempted value {v:?}"),
                    );
                }
            }
            Ok(None) => {}
            Err(e) => fail(&mut failures, format!("recovered get({key:#x}): {e}")),
        }
    }
    for (key, value) in &durable {
        match first.get(*key) {
            Ok(Some(v)) if v == *value => {}
            got => fail(
                &mut failures,
                format!("durable put({key:#x}) lost after crash: expected {value:?}, got {got:?}"),
            ),
        }
    }

    // phase 4: a second reopen agrees exactly (index ≡ rescan) and finds
    // nothing further to repair — recovery is idempotent
    let mut second = match Store::open_with(&dir, Box::new(mem.clone())) {
        Ok(store) => store,
        Err(e) => {
            fail(&mut failures, format!("second clean reopen errored: {e}"));
            return failures;
        }
    };
    if second.recovery().torn_bytes != 0 {
        fail(
            &mut failures,
            format!(
                "second reopen still saw {} torn bytes — recovery not idempotent",
                second.recovery().torn_bytes
            ),
        );
    }
    if second.len() != first.len() {
        fail(
            &mut failures,
            format!(
                "reopen disagreement: first indexed {}, second {}",
                first.len(),
                second.len()
            ),
        );
    }
    for key in 0..KEYS {
        let a = first.get(key).ok().flatten();
        let b = second.get(key).ok().flatten();
        if a != b {
            fail(
                &mut failures,
                format!("reopen disagreement on {key:#x}: {a:?} vs {b:?}"),
            );
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_injector_behaves_like_memio() {
        let mut io = FaultyIo::new(1, 0, None);
        let p = Path::new("/s/seg-00000.jsonl");
        io.create(p).unwrap();
        io.append(p, b"hello\n").unwrap();
        io.flush(p).unwrap();
        assert_eq!(io.read(p).unwrap(), b"hello\n");
        assert!(io.probe().injected().is_empty());
        assert!(io.probe().ops() >= 4);
    }

    #[test]
    fn crash_point_kills_every_later_op() {
        let mut io = FaultyIo::new(1, 0, Some(2));
        let p = Path::new("/f");
        io.create(p).unwrap(); // op 0
        io.append(p, b"a").unwrap(); // op 1
        assert!(io.append(p, b"b").is_err()); // op 2: crash
        assert!(io.probe().crashed());
        assert!(io.read(p).is_err()); // post-crash: dead
        assert_eq!(io.probe().injected(), vec![(2, FaultKind::Crash)]);
    }

    #[test]
    fn faults_are_a_pure_function_of_seed_and_op() {
        let run = || {
            let mut io = FaultyIo::new(42, 2, None);
            let p = Path::new("/f");
            let mut outcomes = Vec::new();
            for i in 0..40 {
                outcomes.push(io.append(p, format!("row {i}\n").as_bytes()).is_ok());
            }
            (outcomes, io.probe().injected())
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        assert!(!fa.is_empty(), "denom 2 must inject something in 40 ops");
    }

    #[test]
    fn cases_derive_deterministically() {
        let a = store_case_at(7, 3);
        let b = store_case_at(7, 3);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.num_ops, b.num_ops);
        assert_eq!(a.fault_denom, b.fault_denom);
        assert_eq!(a.crash_at, b.crash_at);
        assert_ne!(store_case_at(7, 4).seed, a.seed);
    }

    #[test]
    fn small_store_sweep_passes() {
        for index in 0..60 {
            let case = store_case_at(11, index);
            let failures = run_store_case(&case);
            assert!(failures.is_empty(), "case {index} ({case:?}): {failures:?}");
        }
    }

    #[test]
    fn shrinker_candidates_simplify() {
        let case = StoreCase {
            seed: 5,
            num_ops: 20,
            fault_denom: 3,
            crash_at: Some(30),
        };
        let cands = store_candidates(&case);
        assert!(cands.iter().any(|c| c.num_ops == 10));
        assert!(cands.iter().any(|c| c.crash_at.is_none()));
        assert!(cands.iter().any(|c| c.fault_denom == 0));
    }
}
