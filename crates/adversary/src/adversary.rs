//! Deterministic case sources: exhaustive enumeration for small spaces and
//! seeded random sweeps for everything else.
//!
//! Every case is a pure function of `(seed, index)` — replaying a failure
//! needs only those two numbers, never the whole sweep. The per-case RNG is
//! re-seeded from a SplitMix64 mix of both, so cases are independent of
//! iteration order, sweep length, and thread count.

use crate::atomic::AtomicCase;
use crate::bg::BgCase;
use crate::emulation::EmulationCase;
use crate::iis::IisCase;
use crate::plan::{CrashEvent, CrashMode, FaultPlan};
use iis_obs::Rng;
use iis_sched::{all_iis_schedules, AtomicSchedule, IisSchedule};

/// A deterministic source of fuzz cases for one layer.
#[allow(clippy::len_without_is_empty)] // `len() == None` means unbounded, not empty
pub trait Adversary {
    /// The per-layer case type.
    type Case;
    /// Number of cases when the space is finite (exhaustive adversaries);
    /// `None` for unbounded random sweeps.
    fn len(&self) -> Option<usize>;
    /// The `index`-th case — a pure function of the adversary's parameters
    /// (including its seed) and `index`.
    fn case(&self, index: usize) -> Self::Case;
}

/// SplitMix64-style mix of a sweep seed and a case index into a per-case
/// RNG seed.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The full space of `n`-process, `b`-round IIS executions: every
/// per-round ordered partition crossed with every fault assignment (each
/// process is alive, crashes cleanly before round `r`, or crashes inside
/// round `r`'s WriteRead, for every `r < b`).
pub struct ExhaustiveIis {
    n: usize,
    b: usize,
    schedules: Vec<IisSchedule>,
}

impl ExhaustiveIis {
    /// Enumerates the space. Sized for `n ≤ 3, b ≤ 2` (21 125 cases at the
    /// maximum); the schedule count is the `b`-th power of the `n`-th
    /// Fubini number, so keep both small.
    pub fn new(n: usize, b: usize) -> Self {
        let pids: Vec<usize> = (0..n).collect();
        ExhaustiveIis {
            n,
            b,
            schedules: all_iis_schedules(&pids, b),
        }
    }

    /// Fault options per process: alive, or one of two modes × `b` rounds.
    fn options(&self) -> usize {
        1 + 2 * self.b
    }
}

impl Adversary for ExhaustiveIis {
    type Case = IisCase;

    fn len(&self) -> Option<usize> {
        Some(self.schedules.len() * self.options().pow(self.n as u32))
    }

    fn case(&self, index: usize) -> IisCase {
        let opts = self.options();
        let mut code = index;
        let schedule = self.schedules[code % self.schedules.len()].clone();
        code /= self.schedules.len();
        let mut events = Vec::new();
        for pid in 0..self.n {
            let c = code % opts;
            code /= opts;
            if c > 0 {
                events.push(CrashEvent {
                    at: (c - 1) / 2,
                    pid,
                    mode: if c % 2 == 1 {
                        CrashMode::Clean
                    } else {
                        CrashMode::Inside
                    },
                });
            }
        }
        IisCase {
            n: self.n,
            schedule,
            plan: FaultPlan { events },
            input_facet: index,
        }
    }
}

/// Picks up to `max_crashes` distinct victims with random rounds/modes.
fn random_plan(n: usize, rounds: usize, max_crashes: usize, rng: &mut Rng) -> FaultPlan {
    let c = rng.random_range(0..max_crashes.min(n) + 1);
    let mut pids: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut pids);
    let events = pids
        .into_iter()
        .take(c)
        .map(|pid| CrashEvent {
            at: rng.random_range(0..rounds.max(1)),
            pid,
            mode: if rng.random_bool(0.5) {
                CrashMode::Clean
            } else {
                CrashMode::Inside
            },
        })
        .collect();
    FaultPlan { events }
}

/// Seeded random IIS cases: `b`-round schedules over `n` processes with up
/// to `max_crashes` crashes.
pub struct RandomIis {
    /// Number of processes.
    pub n: usize,
    /// Rounds per schedule.
    pub b: usize,
    /// Crash budget per case.
    pub max_crashes: usize,
    /// Sweep seed.
    pub seed: u64,
}

impl Adversary for RandomIis {
    type Case = IisCase;

    fn len(&self) -> Option<usize> {
        None
    }

    fn case(&self, index: usize) -> IisCase {
        let mut rng = Rng::seed_from_u64(derive_seed(self.seed, index as u64));
        IisCase {
            n: self.n,
            schedule: IisSchedule::random(self.n, self.b, &mut rng),
            plan: random_plan(self.n, self.b, self.max_crashes, &mut rng),
            input_facet: rng.random_range(0..64),
        }
    }
}

/// Seeded random atomic-snapshot cases.
pub struct RandomAtomic {
    /// Number of processes.
    pub n: usize,
    /// Snapshots per process before deciding.
    pub k: usize,
    /// Crash budget per case.
    pub max_crashes: usize,
    /// Sweep seed.
    pub seed: u64,
}

impl Adversary for RandomAtomic {
    type Case = AtomicCase;

    fn len(&self) -> Option<usize> {
        None
    }

    fn case(&self, index: usize) -> AtomicCase {
        let mut rng = Rng::seed_from_u64(derive_seed(self.seed, index as u64));
        let len = rng.random_range(self.n..self.n * (2 * self.k + 2) + 1);
        AtomicCase {
            n: self.n,
            k: self.k,
            schedule: AtomicSchedule::random(self.n, len, &mut rng),
            plan: random_plan(self.n, len, self.max_crashes, &mut rng),
        }
    }
}

/// Seeded random emulation cases: a random IIS substrate under a `k`-shot
/// emulated snapshot protocol.
pub struct RandomEmulation {
    /// Number of processes.
    pub n: usize,
    /// Emulated snapshots per process.
    pub k: usize,
    /// Rounds in the fuzzed schedule prefix.
    pub b: usize,
    /// Crash budget per case.
    pub max_crashes: usize,
    /// Sweep seed.
    pub seed: u64,
}

impl Adversary for RandomEmulation {
    type Case = EmulationCase;

    fn len(&self) -> Option<usize> {
        None
    }

    fn case(&self, index: usize) -> EmulationCase {
        let mut rng = Rng::seed_from_u64(derive_seed(self.seed, index as u64));
        EmulationCase {
            iis: IisCase {
                n: self.n,
                schedule: IisSchedule::random(self.n, self.b, &mut rng),
                plan: random_plan(self.n, self.b, self.max_crashes, &mut rng),
                input_facet: 0,
            },
            k: self.k,
        }
    }
}

/// Seeded random BG-simulation cases.
pub struct RandomBg {
    /// Simulated processes.
    pub n_sim: usize,
    /// Simulated rounds per process.
    pub k: usize,
    /// Simulators.
    pub m: usize,
    /// Crash budget per case (victims are simulators).
    pub max_crashes: usize,
    /// Sweep seed.
    pub seed: u64,
}

impl Adversary for RandomBg {
    type Case = BgCase;

    fn len(&self) -> Option<usize> {
        None
    }

    fn case(&self, index: usize) -> BgCase {
        let mut rng = Rng::seed_from_u64(derive_seed(self.seed, index as u64));
        let len = rng.random_range(self.m..40 * self.m + 1);
        let schedule = (0..len).map(|_| rng.random_range(0..self.m)).collect();
        BgCase {
            n_sim: self.n_sim,
            k: self.k,
            m: self.m,
            schedule,
            plan: random_plan(self.m, len, self.max_crashes, &mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_space_has_the_expected_size() {
        // 13 ordered partitions of 3 pids; 169 two-round schedules; 5 fault
        // options per pid at b = 2 (alive, clean@0/1, inside@0/1)
        assert_eq!(ExhaustiveIis::new(3, 1).len(), Some(13 * 27));
        assert_eq!(ExhaustiveIis::new(3, 2).len(), Some(169 * 125));
    }

    #[test]
    fn exhaustive_decoding_is_a_bijection_onto_plans() {
        let adv = ExhaustiveIis::new(2, 1);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..adv.len().unwrap() {
            let c = adv.case(i);
            seen.insert(format!("{:?}{:?}", c.schedule.rounds(), c.plan));
        }
        assert_eq!(seen.len(), adv.len().unwrap());
    }

    #[test]
    fn random_cases_replay_from_seed_and_index() {
        let adv = RandomIis {
            n: 3,
            b: 2,
            max_crashes: 2,
            seed: 42,
        };
        let a = adv.case(17);
        let b = adv.case(17);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // a different index or seed gives (almost surely) a different case
        let c = adv.case(18);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }
}
