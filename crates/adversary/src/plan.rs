//! Fault plans: which process crashes, when, and how.
//!
//! The IIS layers distinguish two crash modes (both from the runtime in
//! `iis_sched::IisRunner`):
//!
//! - a **clean** crash *before* a round: the victim neither writes nor
//!   reads that memory (a non-participant from then on);
//! - a crash **inside** a WriteRead: the victim's write lands (visible to
//!   its own and later concurrency classes) but it never receives a view.
//!
//! Step-indexed layers (atomic runner, BG simulation) use only the clean
//! mode, keyed by step instead of round.

use iis_obs::{Json, ToJson};

/// How a crash interrupts the victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashMode {
    /// Crash before the round/step: no write, no read.
    Clean,
    /// Crash inside the WriteRead: write visible, no view received.
    Inside,
}

/// One scheduled crash: process `pid` fails at round (or step) `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrashEvent {
    /// Round (IIS layers) or step index (atomic/BG layers) of the crash.
    pub at: usize,
    /// The victim: a process id, or a simulator id on the BG layer.
    pub pid: usize,
    /// Whether the victim's final write is visible.
    pub mode: CrashMode,
}

impl ToJson for CrashEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("at", Json::Num(self.at as f64)),
            ("pid", Json::Num(self.pid as f64)),
            (
                "mode",
                Json::Str(
                    match self.mode {
                        CrashMode::Clean => "clean",
                        CrashMode::Inside => "inside",
                    }
                    .to_string(),
                ),
            ),
        ])
    }
}

/// A deterministic crash schedule for one fuzz case.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The crash events, in no particular order; at most one per pid.
    pub events: Vec<CrashEvent>,
}

impl FaultPlan {
    /// A plan with no crashes.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Number of scheduled crashes.
    pub fn crashes(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no crash is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The victims scheduled to crash *cleanly before* round/step `at`.
    pub fn clean_at(&self, at: usize) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.at == at && e.mode == CrashMode::Clean)
            .map(|e| e.pid)
            .collect()
    }

    /// The victims scheduled to crash *inside* round/step `at`.
    pub fn inside_at(&self, at: usize) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.at == at && e.mode == CrashMode::Inside)
            .map(|e| e.pid)
            .collect()
    }

    /// The plan induced by deleting round/step `at` from the schedule:
    /// events at `at` are dropped, later events shift down by one. Used by
    /// the shrinker so a shrunken schedule keeps a consistent plan.
    pub fn without_round(&self, at: usize) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .filter(|e| e.at != at)
                .map(|e| CrashEvent {
                    at: if e.at > at { e.at - 1 } else { e.at },
                    ..*e
                })
                .collect(),
        }
    }

    /// The plan with the `i`-th event removed (the victim survives).
    pub fn without_event(&self, i: usize) -> FaultPlan {
        let mut events = self.events.clone();
        events.remove(i);
        FaultPlan { events }
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::Arr(self.events.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_removal_shifts_later_events() {
        let plan = FaultPlan {
            events: vec![
                CrashEvent {
                    at: 0,
                    pid: 1,
                    mode: CrashMode::Inside,
                },
                CrashEvent {
                    at: 1,
                    pid: 2,
                    mode: CrashMode::Clean,
                },
                CrashEvent {
                    at: 2,
                    pid: 0,
                    mode: CrashMode::Clean,
                },
            ],
        };
        let shrunk = plan.without_round(1);
        assert_eq!(shrunk.events.len(), 2);
        assert_eq!(shrunk.events[0].at, 0);
        assert_eq!(shrunk.events[1], {
            CrashEvent {
                at: 1,
                pid: 0,
                mode: CrashMode::Clean,
            }
        });
        assert_eq!(plan.without_event(0).crashes(), 2);
        assert_eq!(plan.inside_at(0), vec![1]);
        assert_eq!(plan.clean_at(1), vec![2]);
    }
}
