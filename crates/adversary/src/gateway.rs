//! Fault injection for the cluster gateway: a deterministic transport
//! wrapper plus an in-memory mock cluster, driving [`iis_cluster::Gateway`]
//! through drops, delays, short reads, and dead shards.
//!
//! The soundness claim under test is the routing corollary of solvability
//! purity (Prop 3.1): a question's answer is a pure function of its cache
//! key, so retries, failovers, and replica choice can change *when* and
//! *where* a question is answered but never *what* the answer is. The
//! oracle therefore accepts exactly two outcomes per question — the
//! byte-identical canned answer for its key, or an honest `503` — and
//! rejects everything else: a wrong body, a misaligned answer (one
//! question served another's result), a dropped or duplicated slot.
//!
//! Faults derive from `(seed, op_index)` exactly like the storage layer's
//! [`crate::FaultyIo`]: each transport call rolls
//! [`derive_seed`]`(seed, op)` and misbehaves on the `1/denom` lane. The
//! gateway is driven with one worker so transport ops are issued in a
//! deterministic order and a failing case replays bit-identically.

use crate::adversary::derive_seed;
use crate::oracle::OracleFailure;
use iis_cluster::{
    batch_envelope, question_key, Answer, Gateway, GatewayConfig, Transport, TransportError,
    TransportResponse,
};
use iis_obs::{Json, Rng, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The injectable transport fault kinds.
///
/// All three surface to the gateway as a transport error, because that is
/// what the real `obs::http` client reports for each: a refused connection
/// (drop), a missed deadline (delay), and a body shorter than its declared
/// `Content-Length` (short read). The distinction is kept for the fault
/// log so shrunken reports say *which* misbehavior broke routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportFault {
    /// The connection never opens.
    Drop,
    /// The reply misses the per-request deadline.
    Delay,
    /// The reply body is truncated mid-stream.
    ShortRead,
}

/// A mock shard fleet answering the backend solve protocol from a pure
/// function of the question key — no HTTP, no worker pool, no cache.
///
/// Because [`canned_body`] is a function of the key alone, every shard
/// agrees on every answer, exactly as purity guarantees for real
/// `iis serve` replicas; any disagreement observed downstream must have
/// been introduced by the transport or the gateway.
pub struct MockCluster {
    /// Shards that never answer (connection refused), by index.
    dead: Vec<bool>,
}

/// The canned single-question response body for `key` — the mock's stand-in
/// for the deterministic solver output all replicas share.
pub fn canned_body(key: u64) -> String {
    format!(
        "{{\"cached\":true,\"key\":\"{key:016x}\",\"result\":{{\"tag\":{}}}}}",
        key % 1_000_003
    )
}

impl MockCluster {
    fn shard_index(shard: &str) -> usize {
        shard
            .rsplit('-')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    fn answer(&self, q: &Json) -> Answer {
        match question_key(q) {
            Ok(key) => Answer {
                status: 200,
                body: Json::parse(&canned_body(key)).expect("canned bodies are JSON"),
            },
            Err(e) => Answer {
                status: 400,
                body: Json::obj([("error", Json::Str(e))]),
            },
        }
    }

    fn respond(&self, shard: &str, path: &str, body: &str) -> Result<TransportResponse, String> {
        if *self.dead.get(Self::shard_index(shard)).unwrap_or(&false) {
            return Err(format!("{shard}: connection refused (dead shard)"));
        }
        match path {
            "/readyz" | "/healthz" => Ok(TransportResponse {
                status: 200,
                body: "{\"status\":\"ok\"}".to_string(),
            }),
            "/metrics" => Ok(TransportResponse {
                status: 200,
                body: String::new(),
            }),
            "/solve" => {
                let parsed =
                    Json::parse(body).map_err(|e| format!("{shard}: unreadable request: {e}"))?;
                if let Some(Json::Arr(questions)) = parsed.get("questions") {
                    let answers: Vec<Answer> = questions.iter().map(|q| self.answer(q)).collect();
                    Ok(TransportResponse {
                        status: 200,
                        body: batch_envelope(&answers),
                    })
                } else {
                    let a = self.answer(&parsed);
                    Ok(TransportResponse {
                        status: a.status,
                        body: a.body.to_string(),
                    })
                }
            }
            _ => Ok(TransportResponse {
                status: 404,
                body: "not found".to_string(),
            }),
        }
    }
}

/// A deterministic fault-injecting [`Transport`] over a [`MockCluster`].
///
/// Each call (GET or POST alike) takes the next op index from a shared
/// counter and rolls `derive_seed(seed, op)`; on the `1/denom` lane the
/// call fails with the [`TransportFault`] the roll selects instead of
/// reaching the shard. `denom == 0` disables injection — the control
/// configuration the oracle is calibrated against.
pub struct FaultyTransport {
    cluster: MockCluster,
    seed: u64,
    denom: u64,
    ops: AtomicU64,
}

impl FaultyTransport {
    /// Wraps `cluster` with faults derived from `(seed, op_index)`.
    pub fn new(cluster: MockCluster, seed: u64, denom: u64) -> FaultyTransport {
        FaultyTransport {
            cluster,
            seed,
            denom,
            ops: AtomicU64::new(0),
        }
    }

    /// Rolls the fault lane for the next op.
    fn roll(&self) -> Option<TransportFault> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.denom == 0 {
            return None;
        }
        let r = derive_seed(self.seed, op);
        r.is_multiple_of(self.denom).then_some(match (r >> 8) % 3 {
            0 => TransportFault::Drop,
            1 => TransportFault::Delay,
            _ => TransportFault::ShortRead,
        })
    }

    fn faulted(&self, shard: &str, fault: TransportFault) -> TransportError {
        match fault {
            TransportFault::Drop => format!("{shard}: connection refused (injected)"),
            TransportFault::Delay => format!("{shard}: deadline exceeded (injected)"),
            TransportFault::ShortRead => {
                format!("{shard}: short read: body ended before Content-Length (injected)")
            }
        }
    }
}

impl Transport for FaultyTransport {
    fn get(&self, shard: &str, path: &str) -> Result<TransportResponse, TransportError> {
        match self.roll() {
            Some(fault) => Err(self.faulted(shard, fault)),
            None => self.cluster.respond(shard, path, ""),
        }
    }

    fn post(
        &self,
        shard: &str,
        path: &str,
        body: &str,
    ) -> Result<TransportResponse, TransportError> {
        match self.roll() {
            Some(fault) => Err(self.faulted(shard, fault)),
            None => self.cluster.respond(shard, path, body),
        }
    }
}

/// One gateway fuzz case: a seeded cluster shape and fault plan. The
/// question list, dead-shard set, and every transport fault derive from
/// these numbers alone.
#[derive(Clone, Debug)]
pub struct GatewayCase {
    /// The case seed (already mixed from `(sweep_seed, index)`).
    pub seed: u64,
    /// Questions in the batch.
    pub questions: usize,
    /// Shards in the fleet.
    pub shards: usize,
    /// Replicas per key.
    pub replicas: usize,
    /// Fault density: roughly one transport fault per `fault_denom` calls
    /// (`0` disables injection).
    pub fault_denom: u64,
}

impl ToJson for GatewayCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Num(self.seed as f64)),
            ("questions", Json::Num(self.questions as f64)),
            ("shards", Json::Num(self.shards as f64)),
            ("replicas", Json::Num(self.replicas as f64)),
            ("fault_denom", Json::Num(self.fault_denom as f64)),
        ])
    }
}

/// The case at `index` of the sweep seeded by `sweep_seed`.
pub fn gateway_case_at(sweep_seed: u64, index: usize) -> GatewayCase {
    let seed = derive_seed(sweep_seed, index as u64);
    let mut rng = Rng::seed_from_u64(seed);
    let shards = rng.random_range(2usize..6);
    GatewayCase {
        seed,
        questions: rng.random_range(3usize..12),
        shards,
        replicas: rng.random_range(1usize..shards + 1),
        fault_denom: if rng.random_bool(0.8) {
            rng.random_range(2u64..9)
        } else {
            0
        },
    }
}

/// Simpler variants of `case` for the shrinker: fewer questions, no
/// faults, sparser faults, one replica.
pub fn gateway_candidates(case: &GatewayCase) -> Vec<GatewayCase> {
    let mut out = Vec::new();
    if case.questions > 1 {
        let mut c = case.clone();
        c.questions /= 2;
        out.push(c);
        let mut c = case.clone();
        c.questions -= 1;
        out.push(c);
    }
    if case.fault_denom > 0 {
        let mut c = case.clone();
        c.fault_denom = 0;
        out.push(c);
        let mut c = case.clone();
        c.fault_denom *= 4;
        out.push(c);
    }
    if case.replicas > 1 {
        let mut c = case.clone();
        c.replicas = 1;
        out.push(c);
    }
    out
}

fn fail(failures: &mut Vec<OracleFailure>, detail: String) {
    failures.push(OracleFailure::GatewayRouting { detail });
}

/// The spec pool questions draw from — distinct tasks, so distinct cache
/// keys, so a misrouted answer is detectable by its body.
const SPECS: [&str; 6] = [
    "trivial:1",
    "trivial:2",
    "eps:1:3",
    "eps:1:5",
    "consensus:1",
    "kset:2:2",
];

/// The seeded question list for `case` — valid single-question bodies with
/// duplicates allowed (a repeated key must still answer per slot).
fn case_questions(case: &GatewayCase) -> Vec<Json> {
    let mut rng = Rng::seed_from_u64(derive_seed(case.seed, 0xCA5E));
    (0..case.questions)
        .map(|_| {
            Json::obj([
                (
                    "spec",
                    Json::Str(SPECS[rng.random_range(0usize..SPECS.len())].to_string()),
                ),
                ("max_rounds", Json::Num(rng.random_range(1usize..4) as f64)),
            ])
        })
        .collect()
}

/// Checks one envelope slot against purity: the slot must hold either the
/// canned answer for *its own* key, byte-identical, or an honest `503`.
fn check_answer(failures: &mut Vec<OracleFailure>, i: usize, key: u64, slot: &Json) {
    let status = slot.get("status").and_then(Json::as_f64);
    let body = slot.get("body");
    match (status, body) {
        (Some(200.0), Some(body)) => {
            let expect = canned_body(key);
            let got = body.to_string();
            if got != expect {
                fail(
                    failures,
                    format!(
                        "question {i} (key {key:016x}) answered with the wrong \
                         bytes: expected {expect}, got {got}"
                    ),
                );
            }
        }
        (Some(503.0), _) => {} // late, honestly refused — allowed
        (Some(s), _) => fail(
            failures,
            format!("question {i} (key {key:016x}) answered status {s}: {slot}"),
        ),
        (None, _) => fail(failures, format!("question {i}: malformed slot {slot}")),
    }
}

/// Runs one gateway fuzz case and returns every violated invariant.
///
/// Builds a seeded fleet (each shard dead with probability 0.15), wraps it
/// in a [`FaultyTransport`], and drives a one-worker [`Gateway`] through
/// the full batch plus a single-question call, asserting:
///
/// 1. the batch envelope parses and has exactly one slot per question, in
///    order — no dropped, duplicated, or misaligned answers;
/// 2. every `200` slot is byte-identical to the canned answer for that
///    question's own key — never another question's, never garbled;
/// 3. every non-`200` slot is a `503` — under transport faults the
///    gateway may answer late or not at all, never wrongly;
/// 4. the single-question path obeys the same dichotomy;
/// 5. with `fault_denom == 0` and a fully live fleet, nothing is allowed
///    to fail at all (the control calibration).
pub fn run_gateway_case(case: &GatewayCase) -> Vec<OracleFailure> {
    let mut failures = Vec::new();
    let mut rng = Rng::seed_from_u64(derive_seed(case.seed, 0xDEAD));
    let dead: Vec<bool> = (0..case.shards).map(|_| rng.random_bool(0.15)).collect();
    let any_dead = dead.iter().any(|&d| d);
    let transport = FaultyTransport::new(MockCluster { dead }, case.seed, case.fault_denom);
    let gateway = Gateway::new(
        Arc::new(transport),
        GatewayConfig {
            backends: (0..case.shards).map(|i| format!("shard-{i}")).collect(),
            replicas: case.replicas,
            // one worker: transport ops issue in deterministic order, so
            // the fault plan — and hence the verdict — replays exactly
            workers: 1,
        },
    );

    let questions = case_questions(case);
    let keys: Vec<u64> = questions
        .iter()
        .map(|q| question_key(q).expect("generated questions are valid"))
        .collect();
    // a dead shard can orphan a whole replica set (replicas < shards), so
    // the zero-failure calibration needs a fully live, fault-free fleet
    let fault_free = case.fault_denom == 0 && !any_dead;

    let envelope = gateway.solve_batch(&questions);
    match Json::parse(&envelope) {
        Err(e) => fail(&mut failures, format!("unparseable envelope: {e}")),
        Ok(parsed) => match parsed.get("answers") {
            Some(Json::Arr(slots)) => {
                if slots.len() != questions.len() {
                    fail(
                        &mut failures,
                        format!(
                            "{} questions got {} answer slots",
                            questions.len(),
                            slots.len()
                        ),
                    );
                } else {
                    for (i, slot) in slots.iter().enumerate() {
                        check_answer(&mut failures, i, keys[i], slot);
                        if fault_free {
                            let status = slot.get("status").and_then(Json::as_f64);
                            if status != Some(200.0) {
                                fail(
                                    &mut failures,
                                    format!(
                                        "question {i} failed ({slot}) with no faults \
                                         injected and live shards available"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            _ => fail(
                &mut failures,
                format!("envelope has no answers: {envelope}"),
            ),
        },
    }

    // the single-question path must obey the same dichotomy
    let (status, body) = gateway.solve_one(&questions[0].to_string());
    match status {
        200 => {
            let expect = canned_body(keys[0]);
            if body != expect {
                fail(
                    &mut failures,
                    format!(
                        "single-question answer for key {:016x} has the wrong \
                         bytes: expected {expect}, got {body}",
                        keys[0]
                    ),
                );
            }
        }
        503 => {
            if fault_free {
                fail(
                    &mut failures,
                    format!("single question refused ({body}) with no faults injected"),
                );
            }
        }
        s => fail(
            &mut failures,
            format!("single question answered status {s}: {body}"),
        ),
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_derive_deterministically() {
        for index in 0..10 {
            let a = gateway_case_at(42, index);
            let b = gateway_case_at(42, index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.questions, b.questions);
            assert_eq!(a.shards, b.shards);
            assert_eq!(a.replicas, b.replicas);
            assert_eq!(a.fault_denom, b.fault_denom);
            assert!(a.replicas >= 1 && a.replicas <= a.shards);
        }
    }

    #[test]
    fn verdicts_replay_bit_identically() {
        for index in 0..12 {
            let case = gateway_case_at(7, index);
            let a = run_gateway_case(&case);
            let b = run_gateway_case(&case);
            assert_eq!(a, b, "case {index} did not replay");
        }
    }

    #[test]
    fn fault_free_sweeps_are_clean_and_faulty_sweeps_never_answer_wrongly() {
        let mut refused = 0usize;
        for index in 0..40 {
            let case = gateway_case_at(3, index);
            let failures = run_gateway_case(&case);
            assert!(failures.is_empty(), "case {index} ({case:?}): {failures:?}");
            refused += usize::from(case.fault_denom > 0);
        }
        assert!(refused > 0, "the sweep never exercised fault injection");
    }

    #[test]
    fn the_oracle_catches_a_wrong_answer() {
        // a transport that swaps every answer body for a constant — the
        // purity oracle must flag every 200 slot
        struct LyingTransport(MockCluster);
        impl Transport for LyingTransport {
            fn get(&self, shard: &str, path: &str) -> Result<TransportResponse, TransportError> {
                self.0.respond(shard, path, "")
            }
            fn post(
                &self,
                shard: &str,
                path: &str,
                body: &str,
            ) -> Result<TransportResponse, TransportError> {
                let mut resp = self.0.respond(shard, path, body)?;
                resp.body = resp.body.replace("\"cached\":true", "\"cached\":false");
                Ok(resp)
            }
        }
        let case = GatewayCase {
            seed: 1,
            questions: 3,
            shards: 2,
            replicas: 2,
            fault_denom: 0,
        };
        let gateway = Gateway::new(
            Arc::new(LyingTransport(MockCluster {
                dead: vec![false, false],
            })),
            GatewayConfig {
                backends: vec!["shard-0".into(), "shard-1".into()],
                replicas: 2,
                workers: 1,
            },
        );
        let questions = case_questions(&case);
        let envelope = gateway.solve_batch(&questions);
        let parsed = Json::parse(&envelope).unwrap();
        let Some(Json::Arr(slots)) = parsed.get("answers") else {
            panic!("{envelope}");
        };
        let mut failures = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            let key = question_key(&questions[i]).unwrap();
            check_answer(&mut failures, i, key, slot);
        }
        assert_eq!(failures.len(), slots.len(), "{failures:?}");
        assert!(failures.iter().all(|f| f.kind() == "gateway_routing"));
    }

    #[test]
    fn every_shard_dead_refuses_honestly() {
        let case = GatewayCase {
            seed: 9,
            questions: 4,
            shards: 3,
            replicas: 2,
            fault_denom: 0,
        };
        let transport = FaultyTransport::new(
            MockCluster {
                dead: vec![true, true, true],
            },
            case.seed,
            0,
        );
        let gateway = Gateway::new(
            Arc::new(transport),
            GatewayConfig {
                backends: vec!["shard-0".into(), "shard-1".into(), "shard-2".into()],
                replicas: 2,
                workers: 1,
            },
        );
        let questions = case_questions(&case);
        let envelope = gateway.solve_batch(&questions);
        let parsed = Json::parse(&envelope).unwrap();
        let Some(Json::Arr(slots)) = parsed.get("answers") else {
            panic!("{envelope}");
        };
        assert_eq!(slots.len(), 4);
        for slot in slots {
            assert_eq!(slot.get("status").and_then(Json::as_f64), Some(503.0));
        }
    }
}
