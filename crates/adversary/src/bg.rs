//! The BG-simulation-layer executor: drives `iis_core::bg::BgSimulation`
//! under a micro-step schedule with simulator crashes, then checks the
//! safe-agreement guarantees — `f` crashed simulators stall at most `f`
//! simulated processes, and decided views stay nested.

use crate::oracle::OracleFailure;
use crate::plan::FaultPlan;
use iis_core::bg::BgSimulation;
use iis_obs::{Json, ToJson};
use std::collections::BTreeSet;

/// One fuzz case on the BG layer: `m` simulators run `n_sim` simulated
/// processes for `k` rounds each, under a micro-step schedule with
/// simulator crashes (`plan.at` indexes into `schedule`, pids are
/// simulator ids, mode is ignored — a micro-step is atomic).
#[derive(Clone, Debug)]
pub struct BgCase {
    /// Simulated processes.
    pub n_sim: usize,
    /// Simulated write/snapshot rounds per process.
    pub k: usize,
    /// Simulators.
    pub m: usize,
    /// The scheduled micro-steps (simulator ids).
    pub schedule: Vec<usize>,
    /// The simulator crash plan.
    pub plan: FaultPlan,
}

impl ToJson for BgCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n_sim", Json::Num(self.n_sim as f64)),
            ("k", Json::Num(self.k as f64)),
            ("m", Json::Num(self.m as f64)),
            (
                "schedule",
                Json::Arr(self.schedule.iter().map(|&s| Json::Num(s as f64)).collect()),
            ),
            ("plan", self.plan.to_json()),
        ])
    }
}

/// Executes `case` and checks the oracles. After the fuzzed prefix the
/// surviving simulators run round-robin, generously bounded, so that
/// every decision not permanently blocked by a crashed simulator lands.
pub fn run_bg_case(case: &BgCase) -> Vec<OracleFailure> {
    let mut bg = BgSimulation::new(case.n_sim, case.k, case.m);
    for (t, &s) in case.schedule.iter().enumerate() {
        for v in case.plan.clean_at(t) {
            bg.crash(v);
        }
        for v in case.plan.inside_at(t) {
            bg.crash(v);
        }
        if s < case.m {
            bg.step(s);
        }
    }
    let crashed: BTreeSet<usize> = (0..case.m).filter(|&s| bg.is_crashed(s)).collect();
    let f = crashed.len();
    let survivors: Vec<usize> = (0..case.m).filter(|s| !crashed.contains(s)).collect();
    if !survivors.is_empty() {
        let mut extra = 500 * case.n_sim * case.k * case.m + 1000;
        'ext: while !bg.all_done() {
            let mut progressed = false;
            for &s in &survivors {
                if extra == 0 {
                    break 'ext;
                }
                extra -= 1;
                progressed |= bg.step(s);
            }
            if !progressed {
                break;
            }
        }
    }
    let mut failures = Vec::new();
    let undecided = bg.decisions().iter().filter(|d| d.is_none()).count();
    if !survivors.is_empty() && undecided > f {
        failures.push(OracleFailure::BgStalled {
            undecided,
            crashes: f,
        });
    }
    if bg.blocked_processes() > f {
        failures.push(OracleFailure::BgBlocked {
            blocked: bg.blocked_processes(),
            crashes: f,
        });
    }
    // decided final views are snapshots of one monotone simulated memory:
    // their participant sets must nest
    let views: Vec<(usize, BTreeSet<u32>)> = bg
        .decisions()
        .iter()
        .enumerate()
        .filter_map(|(p, d)| {
            d.as_ref()
                .and_then(|l| l.as_view())
                .map(|v| (p, v.iter().map(|(c, _)| c.0).collect()))
        })
        .collect();
    for (i, (a, va)) in views.iter().enumerate() {
        for (b, vb) in views.iter().skip(i + 1) {
            if !va.is_subset(vb) && !vb.is_subset(va) {
                failures.push(OracleFailure::BgIncomparableViews { a: *a, b: *b });
            }
        }
    }
    failures
}

/// One-step reductions: drop a schedule step (shifting the plan), then
/// drop a crash event.
pub fn bg_candidates(case: &BgCase) -> Vec<BgCase> {
    let mut out = Vec::new();
    for t in (0..case.schedule.len()).rev() {
        let mut remaining = case.schedule.clone();
        remaining.remove(t);
        out.push(BgCase {
            schedule: remaining,
            plan: case.plan.without_round(t),
            ..case.clone()
        });
    }
    for i in 0..case.plan.events.len() {
        out.push(BgCase {
            plan: case.plan.without_event(i),
            ..case.clone()
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CrashEvent, CrashMode};

    #[test]
    fn crash_free_run_decides_everyone() {
        let case = BgCase {
            n_sim: 3,
            k: 1,
            m: 2,
            schedule: (0..40).map(|t| t % 2).collect(),
            plan: FaultPlan::none(),
        };
        assert_eq!(run_bg_case(&case), vec![]);
    }

    #[test]
    fn one_crash_blocks_at_most_one() {
        let case = BgCase {
            n_sim: 3,
            k: 1,
            m: 3,
            schedule: (0..30).map(|t| t % 3).collect(),
            plan: FaultPlan {
                events: vec![CrashEvent {
                    at: 7,
                    pid: 1,
                    mode: CrashMode::Clean,
                }],
            },
        };
        assert_eq!(run_bg_case(&case), vec![]);
    }
}
