//! The atomic-snapshot-layer executor: drives `iis_sched::AtomicRunner`
//! under a step schedule with clean crash injection, then checks scan
//! linearizability (pairwise-comparable version vectors) and wait-freedom.

use crate::oracle::OracleFailure;
use crate::plan::FaultPlan;
use iis_memory::checks::{validate_scan_comparability, ScanOrderError};
use iis_obs::{Json, ToJson};
use iis_sched::{AtomicMachine, AtomicRunner, AtomicSchedule};

/// One fuzz case on the atomic layer: `n` processes each performing `k`
/// write/snapshot pairs, a step schedule, and a crash plan keyed by step
/// index (clean crashes only — a step is already atomic).
#[derive(Clone, Debug)]
pub struct AtomicCase {
    /// Number of processes.
    pub n: usize,
    /// Snapshots each process takes before deciding.
    pub k: usize,
    /// The scheduled steps (pids; no-ops on crashed/decided pids are fine).
    pub schedule: AtomicSchedule,
    /// The crash plan; `at` indexes into `schedule`, mode is ignored.
    pub plan: FaultPlan,
}

impl ToJson for AtomicCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::Num(self.n as f64)),
            ("k", Json::Num(self.k as f64)),
            (
                "schedule",
                Json::Arr(
                    self.schedule
                        .steps()
                        .iter()
                        .map(|&p| Json::Num(p as f64))
                        .collect(),
                ),
            ),
            ("plan", self.plan.to_json()),
        ])
    }
}

/// Writes `(pid, sq)` pairs and decides, after `k` snapshots, on its full
/// scan history (per-cell sequence numbers), so the oracle can recover
/// every scan from the runner's outputs alone.
struct ScanRec {
    pid: usize,
    k: usize,
    sq: usize,
    scans: Vec<Vec<u64>>,
}

impl AtomicMachine for ScanRec {
    type Value = u64; // encodes (pid << 16) | sq
    type Output = Vec<Vec<u64>>;
    fn next_write(&mut self) -> u64 {
        self.sq += 1;
        ((self.pid as u64) << 16) | self.sq as u64
    }
    fn on_snapshot(&mut self, snap: &[Option<u64>]) -> Option<Vec<Vec<u64>>> {
        self.scans
            .push(snap.iter().map(|c| c.map_or(0, |v| v & 0xffff)).collect());
        (self.scans.len() >= self.k).then(|| self.scans.clone())
    }
}

/// Executes `case` and checks the oracles. After the fuzzed prefix the
/// surviving processes run round-robin to completion (wait-freedom means
/// the crashes cannot stop them), bounded by `n * (2k + 2)` extra steps.
pub fn run_atomic_case(case: &AtomicCase) -> Vec<OracleFailure> {
    let machines: Vec<ScanRec> = (0..case.n)
        .map(|pid| ScanRec {
            pid,
            k: case.k,
            sq: 0,
            scans: Vec::new(),
        })
        .collect();
    let mut runner = AtomicRunner::new(machines);
    let mut crashed = vec![false; case.n];
    for (t, &p) in case.schedule.steps().iter().enumerate() {
        for v in case
            .plan
            .clean_at(t)
            .into_iter()
            .chain(case.plan.inside_at(t))
        {
            runner.crash(v);
            crashed[v] = true;
        }
        runner.step(p);
    }
    let mut extra = case.n * (2 * case.k + 2);
    'ext: while !runner.is_quiescent() {
        for p in 0..case.n {
            if extra == 0 {
                break 'ext;
            }
            extra -= 1;
            runner.step(p);
        }
    }
    let mut failures = Vec::new();
    let mut scans: Vec<Vec<u64>> = Vec::new();
    for (p, &was_crashed) in crashed.iter().enumerate() {
        match runner.output(p) {
            Some(history) => {
                // a process's own scans must be monotone: the memory only
                // grows, so a later scan dominates an earlier one
                for w in history.windows(2) {
                    if !w[0].iter().zip(&w[1]).all(|(a, b)| a <= b) {
                        failures.push(OracleFailure::ScanOrder {
                            error: ScanOrderError {
                                first: scans.len() + 1,
                                second: scans.len(),
                            },
                        });
                    }
                }
                scans.extend(history.iter().cloned());
            }
            None if !was_crashed => {
                failures.push(OracleFailure::NotDecided { pid: p });
            }
            None => {}
        }
    }
    if let Err(error) = validate_scan_comparability(&scans) {
        failures.push(OracleFailure::ScanOrder { error });
    }
    failures
}

/// One-step reductions: drop a schedule step (shifting the plan), then
/// drop a crash event.
pub fn atomic_candidates(case: &AtomicCase) -> Vec<AtomicCase> {
    let mut out = Vec::new();
    let steps = case.schedule.steps();
    for t in (0..steps.len()).rev() {
        let mut remaining = steps.to_vec();
        remaining.remove(t);
        out.push(AtomicCase {
            n: case.n,
            k: case.k,
            schedule: AtomicSchedule::from_steps(remaining),
            plan: case.plan.without_round(t),
        });
    }
    for i in 0..case.plan.events.len() {
        out.push(AtomicCase {
            n: case.n,
            k: case.k,
            schedule: case.schedule.clone(),
            plan: case.plan.without_event(i),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CrashEvent, CrashMode};

    #[test]
    fn clean_round_robin_passes() {
        let case = AtomicCase {
            n: 3,
            k: 2,
            schedule: AtomicSchedule::round_robin(3, 4),
            plan: FaultPlan::none(),
        };
        assert_eq!(run_atomic_case(&case), vec![]);
    }

    #[test]
    fn crashes_do_not_block_survivors() {
        let case = AtomicCase {
            n: 3,
            k: 2,
            schedule: AtomicSchedule::round_robin(3, 2),
            plan: FaultPlan {
                events: vec![CrashEvent {
                    at: 3,
                    pid: 1,
                    mode: CrashMode::Clean,
                }],
            },
        };
        assert_eq!(run_atomic_case(&case), vec![]);
    }
}
