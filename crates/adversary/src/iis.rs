//! The IIS-layer executor: drives `iis_sched::IisRunner` under an
//! arbitrary schedule and fault plan, records a full trace, and checks it
//! against the oracle battery.
//!
//! Schedules are **repaired** against the live set before each round: the
//! runner itself drops crashed pids from a partition, and any active pid
//! the scheduled partition omits is appended as a final concurrency class.
//! This makes every `(schedule, plan)` pair executable, which the shrinker
//! relies on — deleting a crash event never invalidates later rounds.

use crate::oracle::OracleFailure;
use crate::plan::FaultPlan;
use iis_core::solvability::{DecisionMap, DecisionProtocol};
use iis_memory::checks::validate_immediate_snapshot;
use iis_obs::{Json, ToJson};
use iis_sched::{IisMachine, IisRunner, IisSchedule, MachineStep, OrderedPartition};
use iis_tasks::Task;
use iis_topology::{Color, Label, Simplex};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One fuzz case on the IIS layer: `n` processes, a round schedule, and a
/// crash plan. Fully describes the execution — replay is `run_iis_case`.
#[derive(Clone, Debug)]
pub struct IisCase {
    /// Number of processes.
    pub n: usize,
    /// The scheduled partitions, one per round (repaired before use).
    pub schedule: IisSchedule,
    /// The crash plan.
    pub plan: FaultPlan,
    /// Which facet of the task's input complex supplies the inputs, when a
    /// task oracle is attached (taken modulo the facet count).
    pub input_facet: usize,
}

impl ToJson for IisCase {
    fn to_json(&self) -> Json {
        let rounds: Vec<Json> = self
            .schedule
            .rounds()
            .iter()
            .map(|p| {
                Json::Arr(
                    p.blocks()
                        .iter()
                        .map(|b| Json::Arr(b.iter().map(|&q| Json::Num(q as f64)).collect()))
                        .collect(),
                )
            })
            .collect();
        Json::obj([
            ("n", Json::Num(self.n as f64)),
            ("schedule", Json::Arr(rounds)),
            ("plan", self.plan.to_json()),
            ("input_facet", Json::Num(self.input_facet as f64)),
        ])
    }
}

/// One executed round of the trace: the IS instance it induced.
#[derive(Clone, Debug)]
pub struct IisRoundTrace {
    /// `inputs[p]` is `Some(p)` iff `p` wrote to this round's memory.
    pub inputs: Vec<Option<usize>>,
    /// `views[p]` is the view `p` received, or `None` (crashed / absent).
    pub views: Vec<Option<Vec<(usize, usize)>>>,
}

/// The full recorded execution of one case.
#[derive(Clone, Debug)]
pub struct IisTrace {
    /// Number of processes.
    pub n: usize,
    /// Per-round IS instances, in execution order.
    pub rounds: Vec<IisRoundTrace>,
    /// `crashed_at[p]` is the round `p` crashed at, if it did.
    pub crashed_at: Vec<Option<usize>>,
}

/// Per-process probe: writes its pid, records every view, never decides.
struct Probe {
    pid: usize,
    views: Vec<(usize, Vec<(usize, usize)>)>,
}

impl IisMachine for Probe {
    type Value = usize;
    type Output = ();
    fn initial_value(&mut self) -> usize {
        self.pid
    }
    fn on_view(&mut self, round: usize, view: &[(usize, usize)]) -> MachineStep<usize, ()> {
        self.views.push((round, view.to_vec()));
        MachineStep::Continue(self.pid)
    }
}

/// Appends any active pid the partition omits as a final concurrency
/// class; returns `None` when nothing is active (skip the round).
fn repair(partition: &OrderedPartition, active: &[usize]) -> Option<OrderedPartition> {
    if active.is_empty() {
        return None;
    }
    let present: BTreeSet<usize> = partition.participants().into_iter().collect();
    let missing: Vec<usize> = active
        .iter()
        .copied()
        .filter(|p| !present.contains(p))
        .collect();
    let mut blocks: Vec<Vec<usize>> = partition
        .restrict(|p| active.contains(&p))
        .blocks()
        .to_vec();
    if !missing.is_empty() {
        blocks.push(missing);
    }
    Some(OrderedPartition::new(blocks).expect("repaired blocks are disjoint and non-empty"))
}

/// Executes `case` with probe machines and records the trace.
pub fn execute_iis(case: &IisCase) -> IisTrace {
    let mut runner = IisRunner::new(
        (0..case.n)
            .map(|pid| Probe {
                pid,
                views: Vec::new(),
            })
            .collect::<Vec<_>>(),
    );
    let mut crashed_at: Vec<Option<usize>> = vec![None; case.n];
    let mut executed: Vec<Vec<Option<usize>>> = Vec::new();
    for (round, scheduled) in case.schedule.rounds().iter().enumerate() {
        for v in case.plan.clean_at(round) {
            if !runner.is_crashed(v) {
                runner.crash(v);
                crashed_at[v] = Some(round);
            }
        }
        let Some(partition) = repair(scheduled, &runner.active()) else {
            executed.push(vec![None; case.n]);
            continue;
        };
        let inside: Vec<usize> = case
            .plan
            .inside_at(round)
            .into_iter()
            .filter(|&v| !runner.is_crashed(v))
            .collect();
        // who writes this round's memory: every then-active process (a
        // crash inside the WriteRead still leaves the write visible)
        let mut inputs = vec![None; case.n];
        for p in partition.participants() {
            inputs[p] = Some(p);
        }
        runner.step_round_with_failures(&partition, &inside);
        for v in inside {
            crashed_at[v] = Some(round);
        }
        executed.push(inputs);
    }
    let rounds = executed
        .into_iter()
        .enumerate()
        .map(|(round, inputs)| {
            let views = (0..case.n)
                .map(|p| {
                    runner
                        .machine(p)
                        .views
                        .iter()
                        .find(|(rd, _)| *rd == round)
                        .map(|(_, v)| v.clone())
                })
                .collect();
            IisRoundTrace { inputs, views }
        })
        .collect();
    IisTrace {
        n: case.n,
        rounds,
        crashed_at,
    }
}

/// Checks the recorded trace against the IS-layer oracles: per-round §3.5
/// axioms, no ghost writers, and no starved survivor.
pub fn check_iis_trace(trace: &IisTrace) -> Vec<OracleFailure> {
    let mut failures = Vec::new();
    for (round, rt) in trace.rounds.iter().enumerate() {
        if let Err(error) = validate_immediate_snapshot(&rt.inputs, &rt.views) {
            failures.push(OracleFailure::IsAxiom { round, error });
        }
        for p in 0..trace.n {
            let alive = trace.crashed_at[p].is_none_or(|c| c > round);
            let participated = rt.inputs[p].is_some();
            if alive && participated && rt.views[p].is_none() {
                failures.push(OracleFailure::MissingView { round, pid: p });
            }
            if let Some(view) = &rt.views[p] {
                for &(q, _) in view {
                    if let Some(c) = trace.crashed_at[q] {
                        if c < round {
                            failures.push(OracleFailure::GhostWriter {
                                round,
                                pid: q,
                                crashed_at: c,
                                seen_by: p,
                            });
                        }
                    }
                }
            }
        }
    }
    failures
}

/// The task-validity context: a solvable task, its decision-map witness,
/// and the per-process input labels drawn from one input facet.
pub struct TaskContext {
    task: Task,
    witness: Arc<DecisionMap>,
    inputs: Vec<(Color, Label)>,
    facet: Simplex,
}

impl TaskContext {
    /// Builds the context for `case.input_facet`, or `None` if the chosen
    /// facet does not cover all `n` colors (partial-participation facets
    /// are exercised through crash plans instead).
    pub fn for_case(task: &Task, witness: &Arc<DecisionMap>, case: &IisCase) -> Option<Self> {
        let input = task.input();
        let facets: Vec<&Simplex> = input.facets().collect();
        let facet = facets[case.input_facet % facets.len()].clone();
        let mut inputs: Vec<Option<(Color, Label)>> = vec![None; case.n];
        for &v in facet.vertices() {
            let c = input.color(v);
            let slot = inputs.get_mut(c.0 as usize)?;
            *slot = Some((c, input.label(v).clone()));
        }
        let inputs: Option<Vec<_>> = inputs.into_iter().collect();
        Some(TaskContext {
            task: task.clone(),
            witness: Arc::clone(witness),
            inputs: inputs?,
            facet,
        })
    }

    /// The round bound the witness promises: outputs within this many
    /// rounds (at least one round so round-0 maps still get a view).
    pub fn round_bound(&self) -> usize {
        self.witness.rounds().max(1)
    }
}

/// Replays `case` with `DecisionProtocol` machines for `ctx.round_bound()`
/// rounds and checks wait-freedom (every survivor outputs) and task
/// validity (outputs allowed by Δ of the participating set).
pub fn check_task_run(case: &IisCase, ctx: &TaskContext) -> Vec<OracleFailure> {
    let machines: Vec<DecisionProtocol> = ctx
        .inputs
        .iter()
        .map(|(c, l)| DecisionProtocol::new(*c, l.clone(), Arc::clone(&ctx.witness)))
        .collect();
    let mut runner = IisRunner::new(machines);
    let mut clean_round0: BTreeSet<usize> = BTreeSet::new();
    for round in 0..ctx.round_bound() {
        for v in case.plan.clean_at(round) {
            if !runner.is_crashed(v) && runner.output(v).is_none() {
                runner.crash(v);
                if round == 0 {
                    clean_round0.insert(v);
                }
            }
        }
        let scheduled = case
            .schedule
            .rounds()
            .get(round)
            .cloned()
            .unwrap_or_else(|| OrderedPartition::simultaneous(runner.active()));
        let Some(partition) = repair(&scheduled, &runner.active()) else {
            break;
        };
        let inside: Vec<usize> = case
            .plan
            .inside_at(round)
            .into_iter()
            .filter(|&v| !runner.is_crashed(v))
            .collect();
        runner.step_round_with_failures(&partition, &inside);
    }
    let mut failures = Vec::new();
    for p in 0..case.n {
        if !runner.is_crashed(p) && runner.output(p).is_none() {
            failures.push(OracleFailure::NotDecided { pid: p });
        }
    }
    // participants = everyone that wrote round 0 = all but clean round-0
    // victims; their input vertices span the carrier simplex for Δ
    let participants: Vec<usize> = (0..case.n).filter(|p| !clean_round0.contains(p)).collect();
    let outputs: BTreeSet<_> = runner.outputs().iter().flatten().copied().collect();
    if !outputs.is_empty() {
        let si_vertices: Vec<_> = ctx
            .facet
            .vertices()
            .iter()
            .copied()
            .filter(|&v| participants.contains(&(ctx.task.input().color(v).0 as usize)))
            .collect();
        let si = Simplex::new(si_vertices);
        let t = Simplex::new(outputs.iter().copied());
        if !ctx.task.allows(&si, &t) {
            failures.push(OracleFailure::InvalidDecision {
                participants,
                outputs: outputs.iter().map(|v| v.0 as usize).collect(),
            });
        }
    }
    failures
}

/// Executes `case` end to end: probe trace (optionally mutated — the
/// test-only fault hook), trace oracles, and the task oracles when `ctx`
/// is present. Deterministic: same case, same verdict, any thread count.
pub fn run_iis_case(
    case: &IisCase,
    ctx: Option<&TaskContext>,
    mutate: Option<&dyn Fn(&mut IisTrace)>,
) -> Vec<OracleFailure> {
    let mut trace = execute_iis(case);
    if let Some(m) = mutate {
        m(&mut trace);
    }
    let mut failures = check_iis_trace(&trace);
    if let Some(ctx) = ctx {
        failures.extend(check_task_run(case, ctx));
    }
    failures
}

/// One-step reductions of `case`, smallest-schedule first: drop a round
/// (shifting the plan), then drop a crash event.
pub fn iis_candidates(case: &IisCase) -> Vec<IisCase> {
    let mut out = Vec::new();
    let rounds = case.schedule.rounds();
    for r in (0..rounds.len()).rev() {
        let mut remaining: Vec<OrderedPartition> = rounds.to_vec();
        remaining.remove(r);
        out.push(IisCase {
            n: case.n,
            schedule: IisSchedule::from_rounds(remaining),
            plan: case.plan.without_round(r),
            input_facet: case.input_facet,
        });
    }
    for i in 0..case.plan.events.len() {
        out.push(IisCase {
            n: case.n,
            schedule: case.schedule.clone(),
            plan: case.plan.without_event(i),
            input_facet: case.input_facet,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CrashEvent, CrashMode};

    fn lockstep_case(n: usize, rounds: usize) -> IisCase {
        IisCase {
            n,
            schedule: IisSchedule::lockstep(n, rounds),
            plan: FaultPlan::none(),
            input_facet: 0,
        }
    }

    #[test]
    fn clean_runs_pass_all_trace_oracles() {
        let case = lockstep_case(3, 2);
        assert!(run_iis_case(&case, None, None).is_empty());
    }

    #[test]
    fn crashes_are_recorded_and_pass() {
        let mut case = lockstep_case(3, 3);
        case.plan.events.push(CrashEvent {
            at: 0,
            pid: 1,
            mode: CrashMode::Inside,
        });
        case.plan.events.push(CrashEvent {
            at: 1,
            pid: 2,
            mode: CrashMode::Clean,
        });
        let trace = execute_iis(&case);
        assert_eq!(trace.crashed_at, vec![None, Some(0), Some(1)]);
        // the victim of the inside crash wrote round 0 but got no view
        assert!(trace.rounds[0].inputs[1].is_some());
        assert!(trace.rounds[0].views[1].is_none());
        // the clean victim never wrote round 1
        assert!(trace.rounds[1].inputs[2].is_none());
        assert!(check_iis_trace(&trace).is_empty());
    }

    #[test]
    fn dropped_self_inclusion_is_caught() {
        let case = lockstep_case(3, 2);
        let mutate = |t: &mut IisTrace| {
            if let Some(view) = &mut t.rounds[0].views[0] {
                view.retain(|(q, _)| *q != 0);
            }
        };
        let failures = run_iis_case(&case, None, Some(&mutate));
        assert!(
            failures.iter().any(|f| f.kind() == "is_axiom"),
            "{failures:?}"
        );
    }

    #[test]
    fn candidates_shrink_rounds_and_crashes() {
        let mut case = lockstep_case(2, 2);
        case.plan.events.push(CrashEvent {
            at: 1,
            pid: 0,
            mode: CrashMode::Clean,
        });
        let cands = iis_candidates(&case);
        // 2 round-drops + 1 crash-drop
        assert_eq!(cands.len(), 3);
        assert_eq!(cands[0].schedule.rounds().len(), 1);
        assert!(cands[2].plan.is_empty());
        // every candidate still executes (repair keeps them well-formed)
        for c in &cands {
            let _ = run_iis_case(c, None, None);
        }
    }
}
