//! Greedy counterexample shrinking.
//!
//! A failing case is reduced by repeatedly trying one-step candidates
//! (drop a round/step — shifting later crash events down — then drop a
//! crash event) and keeping the first candidate that still fails, until no
//! candidate does. Every candidate execution is counted as one shrink step
//! in `fuzz.shrink_steps`.

/// Shrinks `case` greedily. `candidates` proposes one-step reductions in
/// preference order; `still_fails` re-executes a candidate through the
/// same oracle pipeline (including any test-only mutation) and reports
/// whether the failure persists. Returns the minimal case and the number
/// of candidate executions.
pub fn shrink_case<C: Clone>(
    case: C,
    candidates: impl Fn(&C) -> Vec<C>,
    still_fails: impl Fn(&C) -> bool,
) -> (C, usize) {
    let mut current = case;
    let mut steps = 0usize;
    loop {
        let mut progressed = false;
        for cand in candidates(&current) {
            steps += 1;
            iis_obs::metrics::add("fuzz.shrink_steps", 1);
            if still_fails(&cand) {
                current = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (current, steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_minimal_failing_suffix() {
        // a "case" is a vector; it fails iff it contains 7; candidates drop
        // one element — the minimum is exactly [7]
        let case = vec![1, 7, 3, 9];
        let (min, steps) = shrink_case(
            case,
            |c| {
                (0..c.len())
                    .map(|i| {
                        let mut v = c.clone();
                        v.remove(i);
                        v
                    })
                    .collect()
            },
            |c| c.contains(&7),
        );
        assert_eq!(min, vec![7]);
        assert!(steps >= 3);
    }
}
