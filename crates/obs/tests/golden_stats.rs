//! Golden-file coverage for `--stats` output and `Snapshot` serialization
//! (ISSUE 6 satellite): metric names appear in sorted order and the JSON
//! encoding is byte-stable, so downstream scrapers and diffs can rely on
//! the layout. The goldens live in `tests/golden/` — a deliberate schema
//! change must update them in the same commit.

use iis_obs::metrics::{Histogram, Snapshot};
use iis_obs::{report, Json, ToJson};
use std::collections::BTreeMap;

/// With `GOLDEN_REGEN=1`, rewrites the golden under `tests/golden/` and
/// returns `true` (the caller skips its comparison; rerun without the
/// variable to verify). Normal runs return `false`.
fn regenerating(name: &str, content: &str) -> bool {
    if std::env::var_os("GOLDEN_REGEN").is_none() {
        return false;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::write(path, content).unwrap();
    true
}

/// A fixed snapshot exercising every section: counters, gauges, and a
/// histogram with sparse buckets.
fn fixture() -> Snapshot {
    let mut counters = BTreeMap::new();
    counters.insert("solve.nodes".to_string(), 42u64);
    counters.insert("fuzz.cases".to_string(), 7);
    counters.insert("solve.prunes".to_string(), 5);
    let mut gauges = BTreeMap::new();
    gauges.insert("solve.budget_remaining".to_string(), 0i64);
    gauges.insert("solve.rounds".to_string(), 3);
    let mut histograms = BTreeMap::new();
    histograms.insert(
        "solve.search_ns".to_string(),
        Histogram {
            count: 4,
            sum: 70,
            max: 64,
            buckets: vec![(0, 1), (2, 2), (64, 1)],
        },
    );
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

#[test]
fn snapshot_json_matches_the_golden_file() {
    let golden = include_str!("golden/snapshot.json");
    let rendered = fixture().to_json().to_string_pretty();
    if regenerating("snapshot.json", &rendered) {
        return;
    }
    assert_eq!(
        rendered.trim(),
        golden.trim(),
        "Snapshot JSON drifted from tests/golden/snapshot.json — if the \
         schema change is deliberate, update the golden in this commit"
    );
    // and the golden parses back to the identical snapshot
    let back: Snapshot = Json::parse_as(golden).unwrap();
    assert_eq!(back, fixture());
}

#[test]
fn stats_table_matches_the_golden_file_in_sorted_order() {
    let golden = include_str!("golden/stats.txt");
    let rendered = report::render_table(&fixture());
    if regenerating("stats.txt", &rendered) {
        return;
    }
    assert_eq!(
        rendered.trim_end(),
        golden.trim_end(),
        "--stats table drifted from tests/golden/stats.txt"
    );
    // the table lists metric names in globally sorted order
    let names: Vec<&str> = rendered
        .lines()
        .skip(1) // header rule
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "metric names must be sorted:\n{rendered}");
    // zero-valued gauges are omitted by design — the fixture's
    // budget_remaining gauge must not appear
    assert!(!rendered.contains("budget_remaining"), "{rendered}");
}
