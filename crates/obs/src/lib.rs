//! `iis-obs` — the zero-dependency observability and support substrate of
//! the `iis` workspace.
//!
//! The build environment has no crates.io access, so this crate is
//! deliberately std-only and sits at the bottom of the workspace dependency
//! graph. It provides:
//!
//! - [`metrics`] — named monotonic counters, gauges and log2-bucketed
//!   duration histograms behind a global recorder that compiles down to a
//!   branch on a static `AtomicBool` when disabled;
//! - [`mod@span`] — lightweight RAII span timers feeding the histograms and the
//!   trace stream;
//! - [`trace`] — a JSON-lines event sink (`--trace FILE` in the CLI);
//! - [`json`] — a minimal JSON value type with parser and writer, used for
//!   the trace stream, the CLI's `--json` output, task files and bench
//!   reports (the workspace's stand-in for serde);
//! - [`rng`] — a small deterministic PRNG (the workspace's stand-in for
//!   `rand`), used by schedule fuzzers and adversaries;
//! - [`report`] — human-readable rendering of metric snapshots (`--stats`);
//! - [`profile`] — causal span profiling with collapsed-stack flamegraph
//!   export (`--profile FILE`);
//! - [`progress`] — the live progress registry behind `--progress` and
//!   the `/progress` endpoint;
//! - [`http`] — the std-only HTTP transport: built-in scrape routes
//!   (`/metrics` Prometheus text, `/progress`, `/snapshot` — the
//!   `--serve ADDR` flag) plus a [`http::Handler`] hook through which
//!   applications mount their own routes, e.g. the CLI's `iis serve`
//!   solve service (`POST /solve`, `GET /jobs`).
//!
//! # Metric naming
//!
//! Names are dotted lowercase paths, grouped by pipeline:
//! `solve.*` (the Proposition 3.1 CSP search), `sds.*` (the standard
//! chromatic subdivision tower), `iis.*`/`atomic.*` (the schedule runners),
//! `emu.*` (the §4 emulation), `bg.*` (the BG simulation). See the
//! repository README's "Observability" section for the full catalogue.
//!
//! # Overhead discipline
//!
//! Every recording call first checks [`metrics::enabled`] — a single
//! relaxed atomic load — and does nothing else when the recorder is off.
//! Hot loops should hold [`metrics::Counter`] handles (an `Arc<AtomicU64>`
//! lookup done once, outside the loop) rather than going through the
//! name-keyed registry per event.
//!
//! # Examples
//!
//! ```
//! use iis_obs::metrics;
//!
//! metrics::set_enabled(true);
//! metrics::reset();
//! let nodes = metrics::Counter::handle("solve.nodes");
//! for _ in 0..10 {
//!     nodes.incr();
//! }
//! {
//!     let _t = iis_obs::span::span("solve.search_ns");
//!     // ... timed work ...
//! }
//! let snap = metrics::snapshot();
//! assert_eq!(snap.counters["solve.nodes"], 10);
//! assert_eq!(snap.histograms["solve.search_ns"].count, 1);
//! metrics::set_enabled(false);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod report;
pub mod rng;
pub mod span;
pub mod trace;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use metrics::{enabled, set_enabled, snapshot, Counter, Gauge, Snapshot};
pub use rng::Rng;
pub use span::span;
