//! The live progress registry (the CLI's `--progress` line and the
//! `/progress` endpoint).
//!
//! A single process-global set of atomics tracks per-phase totals: the
//! solve round in flight, rounds decided, nodes expanded, the node budget
//! left in the current round, constraint-cache hit rate, parallel subtree
//! and worker counts, and fuzz cases/failures. Cold-path updates (round
//! and subtree boundaries, fuzz cases) record unconditionally; the
//! per-node hot path is gated on [`enabled`] exactly like the metric
//! recorder, so an idle registry costs one relaxed load per node.
//!
//! [`snapshot`] copies the registry and derives a sliding-window
//! throughput estimate (nodes + fuzz cases per second over the last ten
//! seconds) and an ETA for whichever of the two remaining-work quantities
//! is live. [`render_line`] formats a snapshot as the one-line stderr
//! report; [`ProgressSnapshot::to_json`] is the `/progress` wire format,
//! with keys in sorted order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::json::{Json, ToJson};
use crate::report::group_digits;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` iff the per-node hot path records (cold-path updates always do).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns hot-path recording on or off (off is the default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

static NODES: AtomicU64 = AtomicU64::new(0);
static ROUND: AtomicU64 = AtomicU64::new(0);
static ROUNDS_DONE: AtomicU64 = AtomicU64::new(0);
static ROUND_BUDGET: AtomicU64 = AtomicU64::new(0);
static NODES_AT_ROUND_START: AtomicU64 = AtomicU64::new(0);
static SUBTREES_TOTAL: AtomicU64 = AtomicU64::new(0);
static SUBTREES_DONE: AtomicU64 = AtomicU64::new(0);
static WORKERS: AtomicU64 = AtomicU64::new(1);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static FUZZ_TOTAL: AtomicU64 = AtomicU64::new(0);
static FUZZ_DONE: AtomicU64 = AtomicU64::new(0);
static FUZZ_FAILURES: AtomicU64 = AtomicU64::new(0);

fn task_label() -> &'static Mutex<String> {
    static LABEL: OnceLock<Mutex<String>> = OnceLock::new();
    LABEL.get_or_init(|| Mutex::new(String::new()))
}

/// The sliding window of `(when, nodes + fuzz cases)` observations used
/// for the rate estimate; fed by [`snapshot`].
fn window() -> &'static Mutex<VecDeque<(Instant, u64)>> {
    static WINDOW: OnceLock<Mutex<VecDeque<(Instant, u64)>>> = OnceLock::new();
    WINDOW.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Names the work in flight (shown first in the progress line).
pub fn set_task(label: &str) {
    let mut g = task_label().lock().unwrap_or_else(PoisonError::into_inner);
    g.clear();
    g.push_str(label);
}

/// Charges one search node (hot path; no-op unless [`enabled`]).
#[inline]
pub fn charge_node() {
    if enabled() {
        NODES.fetch_add(1, Ordering::Relaxed);
    }
}

/// A solve round `b` with node budget `budget` is starting.
pub fn solve_round_started(task: &str, b: u64, budget: u64) {
    set_task(task);
    ROUND.store(b, Ordering::Relaxed);
    ROUND_BUDGET.store(budget, Ordering::Relaxed);
    NODES_AT_ROUND_START.store(NODES.load(Ordering::Relaxed), Ordering::Relaxed);
    SUBTREES_TOTAL.store(0, Ordering::Relaxed);
    SUBTREES_DONE.store(0, Ordering::Relaxed);
}

/// The round in flight reached a verdict.
pub fn solve_round_finished() {
    ROUNDS_DONE.fetch_add(1, Ordering::Relaxed);
}

/// The round's search split into `total` parallel subtrees.
pub fn set_subtrees(total: u64) {
    SUBTREES_TOTAL.store(total, Ordering::Relaxed);
    SUBTREES_DONE.store(0, Ordering::Relaxed);
}

/// One subtree finished (searched to completion or cancelled).
pub fn subtree_done() {
    SUBTREES_DONE.fetch_add(1, Ordering::Relaxed);
}

/// The pool is running `n` worker threads.
pub fn set_workers(n: u64) {
    WORKERS.store(n, Ordering::Relaxed);
}

/// One constraint-cache lookup resolved (`hit` iff a compiled table was
/// reused).
pub fn cache_lookup(hit: bool) {
    let cell = if hit { &CACHE_HITS } else { &CACHE_MISSES };
    cell.fetch_add(1, Ordering::Relaxed);
}

/// A fuzz sweep of `total` cases is starting.
pub fn fuzz_started(task: &str, total: u64) {
    set_task(task);
    FUZZ_TOTAL.store(total, Ordering::Relaxed);
    FUZZ_DONE.store(0, Ordering::Relaxed);
    FUZZ_FAILURES.store(0, Ordering::Relaxed);
}

/// One fuzz case finished.
pub fn fuzz_case_done() {
    FUZZ_DONE.fetch_add(1, Ordering::Relaxed);
}

/// `n` oracle failures were recorded.
pub fn fuzz_failures_add(n: u64) {
    FUZZ_FAILURES.fetch_add(n, Ordering::Relaxed);
}

/// Zeroes the whole registry (a new CLI invocation starts clean).
pub fn reset() {
    for cell in [
        &NODES,
        &ROUND,
        &ROUNDS_DONE,
        &ROUND_BUDGET,
        &NODES_AT_ROUND_START,
        &SUBTREES_TOTAL,
        &SUBTREES_DONE,
        &CACHE_HITS,
        &CACHE_MISSES,
        &FUZZ_TOTAL,
        &FUZZ_DONE,
        &FUZZ_FAILURES,
    ] {
        cell.store(0, Ordering::Relaxed);
    }
    WORKERS.store(1, Ordering::Relaxed);
    set_task("");
    window()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// A point-in-time copy of the registry plus derived rate/ETA.
#[derive(Clone, Debug)]
pub struct ProgressSnapshot {
    /// Node budget left in the round in flight.
    pub budget_remaining: u64,
    /// Constraint-cache hit rate in `[0, 1]` (0 before any lookup).
    pub cache_hit_rate: f64,
    /// Estimated seconds to finish the round budget or fuzz sweep
    /// (`None` when no rate or no bounded work is live).
    pub eta_secs: Option<f64>,
    /// Fuzz cases finished.
    pub fuzz_cases: u64,
    /// Fuzz cases planned (0 outside a fuzz sweep).
    pub fuzz_cases_total: u64,
    /// Fuzz oracle failures so far.
    pub fuzz_failures: u64,
    /// Search nodes expanded since the registry was reset.
    pub nodes: u64,
    /// Sliding-window throughput (nodes + fuzz cases per second).
    pub per_sec: f64,
    /// The solve round (`b`) in flight.
    pub round: u64,
    /// Rounds decided so far.
    pub rounds_done: u64,
    /// Parallel subtrees finished in the round in flight.
    pub subtrees_done: u64,
    /// Parallel subtrees the round split into (0 when sequential).
    pub subtrees_total: u64,
    /// The task label.
    pub task: String,
    /// Worker threads in the pool.
    pub workers: u64,
}

impl ToJson for ProgressSnapshot {
    /// Keys are emitted in sorted order — the committed `/progress`
    /// schema (see `tests/golden/progress_keys.txt`).
    fn to_json(&self) -> Json {
        Json::obj([
            ("budget_remaining", Json::Num(self.budget_remaining as f64)),
            ("cache_hit_rate", Json::Num(self.cache_hit_rate)),
            ("eta_secs", self.eta_secs.map_or(Json::Null, Json::Num)),
            ("fuzz_cases", Json::Num(self.fuzz_cases as f64)),
            ("fuzz_cases_total", Json::Num(self.fuzz_cases_total as f64)),
            ("fuzz_failures", Json::Num(self.fuzz_failures as f64)),
            ("nodes", Json::Num(self.nodes as f64)),
            ("per_sec", Json::Num(self.per_sec)),
            ("round", Json::Num(self.round as f64)),
            ("rounds_done", Json::Num(self.rounds_done as f64)),
            ("subtrees_done", Json::Num(self.subtrees_done as f64)),
            ("subtrees_total", Json::Num(self.subtrees_total as f64)),
            ("task", Json::Str(self.task.clone())),
            ("workers", Json::Num(self.workers as f64)),
        ])
    }
}

/// How far back the rate window looks.
const WINDOW_SPAN: Duration = Duration::from_secs(10);

/// Copies the registry and updates the sliding-window rate estimate.
pub fn snapshot() -> ProgressSnapshot {
    let nodes = NODES.load(Ordering::Relaxed);
    let fuzz_done = FUZZ_DONE.load(Ordering::Relaxed);
    let fuzz_total = FUZZ_TOTAL.load(Ordering::Relaxed);
    let budget = ROUND_BUDGET.load(Ordering::Relaxed);
    let round_nodes = nodes.saturating_sub(NODES_AT_ROUND_START.load(Ordering::Relaxed));
    let budget_remaining = budget.saturating_sub(round_nodes);
    let hits = CACHE_HITS.load(Ordering::Relaxed);
    let lookups = hits + CACHE_MISSES.load(Ordering::Relaxed);
    let cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    // advance the rate window
    let now = Instant::now();
    let done = nodes + fuzz_done;
    let per_sec = {
        let mut w = window().lock().unwrap_or_else(PoisonError::into_inner);
        while let Some(&(t, _)) = w.front() {
            if now.duration_since(t) > WINDOW_SPAN && w.len() > 1 {
                w.pop_front();
            } else {
                break;
            }
        }
        let rate = match w.front() {
            Some(&(t0, d0)) if now > t0 && done >= d0 => {
                (done - d0) as f64 / now.duration_since(t0).as_secs_f64()
            }
            _ => 0.0,
        };
        w.push_back((now, done));
        rate
    };
    let remaining = if fuzz_total > 0 {
        fuzz_total.saturating_sub(fuzz_done)
    } else if budget > 0 && budget != u64::MAX {
        budget_remaining
    } else {
        0
    };
    let eta_secs = (per_sec > 0.0 && remaining > 0).then(|| remaining as f64 / per_sec);
    ProgressSnapshot {
        budget_remaining,
        cache_hit_rate,
        eta_secs,
        fuzz_cases: fuzz_done,
        fuzz_cases_total: fuzz_total,
        fuzz_failures: FUZZ_FAILURES.load(Ordering::Relaxed),
        nodes,
        per_sec,
        round: ROUND.load(Ordering::Relaxed),
        rounds_done: ROUNDS_DONE.load(Ordering::Relaxed),
        subtrees_done: SUBTREES_DONE.load(Ordering::Relaxed),
        subtrees_total: SUBTREES_TOTAL.load(Ordering::Relaxed),
        task: task_label()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone(),
        workers: WORKERS.load(Ordering::Relaxed),
    }
}

/// Formats a snapshot as the one-line stderr report.
pub fn render_line(snap: &ProgressSnapshot) -> String {
    let mut out = String::from("progress:");
    if !snap.task.is_empty() {
        out.push(' ');
        out.push_str(&snap.task);
    }
    if snap.fuzz_cases_total > 0 {
        out.push_str(&format!(
            " cases {}/{} failures {}",
            group_digits(snap.fuzz_cases),
            group_digits(snap.fuzz_cases_total),
            snap.fuzz_failures
        ));
    } else {
        out.push_str(&format!(
            " b={} done={} nodes={}",
            snap.round,
            snap.rounds_done,
            group_digits(snap.nodes)
        ));
        if snap.subtrees_total > 0 {
            out.push_str(&format!(
                " subtrees {}/{} workers {}",
                snap.subtrees_done, snap.subtrees_total, snap.workers
            ));
        }
        out.push_str(&format!(
            " budget_left={}",
            group_digits(snap.budget_remaining)
        ));
    }
    out.push_str(&format!(" rate={}/s", group_digits(snap.per_sec as u64)));
    if let Some(eta) = snap.eta_secs {
        out.push_str(&format!(" eta={}s", eta.ceil() as u64));
    }
    out
}

/// A background thread printing [`render_line`] to stderr periodically;
/// stops (and joins) on drop.
pub struct Ticker {
    stop: std::sync::Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Ticker {
    /// Starts a ticker emitting one progress line per `interval`.
    pub fn start(interval: Duration) -> Ticker {
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            // sleep in short slices so drop() never waits a full interval
            let slice = Duration::from_millis(25).min(interval);
            let mut slept = Duration::ZERO;
            while slept < interval {
                if stop2.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(slice);
                slept += slice;
            }
            eprintln!("{}", render_line(&snapshot()));
        });
        Ticker {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    // The registry is process-global, so all stateful assertions live in
    // this single test (obs unit tests run concurrently, but only this
    // one touches the progress registry).
    #[test]
    fn registry_snapshot_and_rendering() {
        reset();
        set_enabled(true);
        solve_round_started("kset:2:2", 2, 1000);
        for _ in 0..40 {
            charge_node();
        }
        set_subtrees(8);
        subtree_done();
        subtree_done();
        set_workers(4);
        cache_lookup(true);
        cache_lookup(true);
        cache_lookup(false);
        let snap = snapshot();
        assert_eq!(snap.task, "kset:2:2");
        assert_eq!(snap.round, 2);
        assert_eq!(snap.nodes, 40);
        assert_eq!(snap.budget_remaining, 960);
        assert_eq!((snap.subtrees_done, snap.subtrees_total), (2, 8));
        assert_eq!(snap.workers, 4);
        assert!((snap.cache_hit_rate - 2.0 / 3.0).abs() < 1e-9);
        solve_round_finished();
        assert_eq!(snapshot().rounds_done, 1);

        // rate window: a second snapshot after more work sees a positive
        // rate and an ETA for the remaining budget
        for _ in 0..100 {
            charge_node();
        }
        std::thread::sleep(Duration::from_millis(20));
        let snap = snapshot();
        assert!(snap.per_sec > 0.0, "rate should be positive: {snap:?}");
        assert!(snap.eta_secs.is_some());

        let line = render_line(&snap);
        assert!(line.contains("kset:2:2"), "{line}");
        assert!(line.contains("b=2"), "{line}");
        assert!(line.contains("subtrees 2/8"), "{line}");
        assert!(line.contains("rate="), "{line}");

        // fuzz phase takes over the line and the ETA target
        fuzz_started("fuzz iis", 200);
        for _ in 0..50 {
            fuzz_case_done();
        }
        fuzz_failures_add(2);
        let snap = snapshot();
        assert_eq!((snap.fuzz_cases, snap.fuzz_cases_total), (50, 200));
        assert_eq!(snap.fuzz_failures, 2);
        let line = render_line(&snap);
        assert!(line.contains("cases 50/200"), "{line}");
        assert!(line.contains("failures 2"), "{line}");

        // hot path is gated; cold path is not
        set_enabled(false);
        let before = snapshot().nodes;
        charge_node();
        assert_eq!(snapshot().nodes, before);

        // the JSON wire format has sorted keys (the committed schema)
        let json = snapshot().to_json();
        let keys: Vec<&str> = json
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "progress JSON keys must be sorted");
        let golden = include_str!("../tests/golden/progress_keys.txt");
        let golden_keys: Vec<&str> = golden.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(keys, golden_keys, "committed /progress schema drifted");
        reset();
    }

    #[test]
    fn ticker_starts_and_stops_cleanly() {
        let t = Ticker::start(Duration::from_secs(3600));
        drop(t); // must not hang waiting for the interval
    }
}
