//! A small deterministic PRNG — the workspace's stand-in for `rand`.
//!
//! The generator is SplitMix64: a 64-bit state advanced by a Weyl constant
//! and finalized with two xor-shift-multiply rounds. It is fast, passes
//! BigCrush on its output stream, and — crucially for schedule fuzzing and
//! adversary replay — is fully determined by its seed. The method names
//! (`seed_from_u64`, `random_range`, `random_bool`, `shuffle`) mirror the
//! `rand 0.9` API so call sites read the same.

use std::ops::Range;

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `range` (half-open; panics if empty).
    ///
    /// Uses Lemire-style rejection via 128-bit widening so the
    /// distribution is exactly uniform.
    pub fn random_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `u64` below `bound` (panics if `bound == 0`).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random_range on empty range");
        // Lemire's nearly-divisionless method with rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare 53 uniform mantissa bits against p.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice` (`None` if empty).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

/// Types samplable uniformly from a half-open range by [`Rng::random_range`].
pub trait RangeSample: Sized {
    /// A uniform sample from `range` (panics if the range is empty).
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range on empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + rng.below(span) as Self
            }
        }
    )*};
}

impl_range_sample!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_stays_in_bounds_and_hits_all_values() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.random_range(2usize..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should occur");
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..1000).filter(|_| rng.random_bool(0.5)).count();
        assert!((350..=650).contains(&hits), "p=0.5 gave {hits}/1000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(99);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng::seed_from_u64(3);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[5u8]), Some(&5));
    }
}
