//! A minimal JSON value type, parser and writer — the workspace's stand-in
//! for `serde_json`.
//!
//! Scope is deliberately small: everything the workspace serializes
//! (complexes, subdivisions, tasks, trace events, bench reports) is built
//! from objects, arrays, strings, numbers and booleans. Numbers are stored
//! as `f64`; integers round-trip exactly up to 2^53, far beyond anything a
//! simplicial complex produces. Parsing is recursive-descent with a depth
//! limit; writing offers compact and pretty forms.
//!
//! Conversions go through [`ToJson`] / [`FromJson`], the local analogue of
//! `Serialize` / `Deserialize`. `FromJson` impls are expected to
//! re-validate: a `Complex` parsed from JSON goes back through the same
//! invariant checks as one built programmatically.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error, with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Converts a value to its JSON representation.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Reconstructs (and re-validates) a value from its JSON representation.
pub trait FromJson: Sized {
    /// Parses `v` back into `Self`, re-checking invariants.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Parses a JSON document from `text`.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Parses and converts in one step.
    pub fn parse_as<T: FromJson>(text: &str) -> Result<T, JsonError> {
        T::from_json(&Json::parse(text)?)
    }

    /// Indented multi-line rendering (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Member `key` of an object (`None` for other variants or absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member `key`, or an error naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// An object built from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Compact single-line rendering (`to_string` gives the canonical wire form).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising degradation.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one full UTF-8 scalar from the (valid) source str.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---- ToJson / FromJson for primitives and containers --------------------

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| JsonError::new("expected unsigned integer"))?;
                <$t>::try_from(n)
                    .map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_i64()
            .ok_or_else(|| JsonError::new("expected signed integer"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::new("expected boolean")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::new("expected pair"))?;
        if items.len() != 2 {
            return Err(JsonError::new("expected 2-element array"));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_document() {
        let src = r#"{"name":"kset","input":[[0,1],[2,3]],"ok":true,"n":null,"x":-1.5}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.field("name").unwrap().as_str(), Some("kset"));
        assert_eq!(v.get("missing"), None);
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
        let reparsed_pretty = Json::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(v, reparsed_pretty);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("line\n\"quoted\"\t\\ \u{1F980} \u{7}".to_string());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // And escapes produced by other writers parse too.
        let parsed = Json::parse(r#""A🦀\/""#).unwrap();
        assert_eq!(parsed.as_str(), Some("A\u{1F980}/"));
    }

    #[test]
    fn integers_write_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "[1 2]",
            "tru",
            "01x",
            "\"abc",
            "{\"a\":1,}",
            "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn signed_integer_conversions() {
        assert_eq!(Json::Num(-42.0).as_i64(), Some(-42));
        assert_eq!(Json::Num(1.5).as_i64(), None);
        assert_eq!(i64::from_json(&Json::Num(-9.0)).unwrap(), -9);
        assert!(i64::from_json(&Json::Str("x".to_string())).is_err());
        assert_eq!((-3i64).to_json().to_string(), "-3");
    }

    #[test]
    fn primitive_conversions() {
        assert_eq!(u32::from_json(&Json::Num(7.0)).unwrap(), 7);
        assert!(u8::from_json(&Json::Num(300.0)).is_err());
        assert!(u32::from_json(&Json::Num(-1.0)).is_err());
        assert!(u32::from_json(&Json::Num(1.5)).is_err());
        let v: Vec<(u32, u32)> =
            FromJson::from_json(&Json::parse("[[1,2],[3,4]]").unwrap()).unwrap();
        assert_eq!(v, vec![(1, 2), (3, 4)]);
        assert_eq!(v.to_json().to_string(), "[[1,2],[3,4]]");
    }

    #[test]
    fn parse_as_combines_parse_and_convert() {
        let v: Vec<u64> = Json::parse_as("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(Json::parse_as::<Vec<u64>>("[1,\"x\"]").is_err());
    }
}
