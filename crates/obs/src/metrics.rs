//! The global metric recorder: counters, gauges, log2 histograms.
//!
//! All state lives in a process-global registry keyed by metric name.
//! Recording is gated on a static `AtomicBool`: with the recorder disabled
//! (the default) every recording call is a single relaxed load and a
//! not-taken branch, so instrumented hot paths cost nothing measurable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::json::{FromJson, Json, JsonError, ToJson};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` iff the recorder is currently collecting.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off (off is the default; when off, recording
/// calls are branch-on-static-bool no-ops).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Number of log2 buckets in a [`Histogram`] (covers the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 65;

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// A handle on a named monotonic counter.
///
/// Cheap to clone; obtain once ([`Counter::handle`]) and increment from the
/// hot path.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// The handle for `name`, registering the counter on first use.
    pub fn handle(name: &str) -> Counter {
        let mut g = registry()
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let cell = g
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell }
    }

    /// Adds `n` (no-op while the recorder is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while the recorder is disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (reads even while disabled).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One-shot counter add for cold paths (`Counter::handle(name).add(n)`).
pub fn add(name: &str, n: u64) {
    if enabled() {
        Counter::handle(name).cell.fetch_add(n, Ordering::Relaxed);
    }
}

/// A handle on a named gauge (a last-write-wins signed value).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// The handle for `name`, registering the gauge on first use.
    pub fn handle(name: &str) -> Gauge {
        let mut g = registry()
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let cell = g
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone();
        Gauge { cell }
    }

    /// Sets the gauge (no-op while the recorder is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One-shot gauge set for cold paths.
pub fn gauge_set(name: &str, v: i64) {
    if enabled() {
        Gauge::handle(name).cell.store(v, Ordering::Relaxed);
    }
}

struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// The log2 bucket index of `v`: 0 for 0, otherwise `⌊log2 v⌋ + 1`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The lower bound of bucket `i` (inclusive).
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A handle on a named log2-bucketed histogram of `u64` samples
/// (durations in nanoseconds, sizes, latencies, …).
#[derive(Clone)]
pub struct HistogramHandle {
    cells: Arc<HistogramCells>,
}

impl HistogramHandle {
    /// The handle for `name`, registering the histogram on first use.
    pub fn handle(name: &str) -> HistogramHandle {
        let mut g = registry()
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let cells = g
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCells::new()))
            .clone();
        HistogramHandle { cells }
    }

    /// Records one sample (no-op while the recorder is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.cells.record(v);
        }
    }
}

/// One-shot histogram record for cold paths.
pub fn record(name: &str, v: u64) {
    if enabled() {
        HistogramHandle::handle(name).cells.record(v);
    }
}

/// An immutable copy of one histogram's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// `(bucket_floor, count)` for every non-empty log2 bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl Histogram {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

impl ToJson for Histogram {
    /// Keys in sorted order (`buckets`, `count`, `max`, `sum`) so snapshot
    /// JSON diffs are stable.
    fn to_json(&self) -> Json {
        Json::obj([
            ("buckets", self.buckets.to_json()),
            ("count", self.count.to_json()),
            ("max", self.max.to_json()),
            ("sum", self.sum.to_json()),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Histogram {
            count: u64::from_json(v.field("count")?)?,
            sum: u64::from_json(v.field("sum")?)?,
            max: u64::from_json(v.field("max")?)?,
            buckets: Vec::from_json(v.field("buckets")?)?,
        })
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// `true` iff no metric has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.values().all(|&v| v == 0)
            && self.histograms.values().all(|h| h.count == 0)
    }

    /// Counter deltas `self − earlier` (counters are monotonic; absent
    /// earlier entries count as 0). Gauges and histogram aggregates are
    /// taken from `self`. Used by the bench harness to attribute work to
    /// one measured region.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

impl ToJson for Snapshot {
    /// Keys in sorted order at both levels (`counters`, `gauges`,
    /// `histograms`; metric names are BTreeMap-sorted) — the `/snapshot`
    /// wire format and the basis of the `--stats --json` golden test.
    fn to_json(&self) -> Json {
        Json::obj([
            ("counters", self.counters.to_json()),
            ("gauges", self.gauges.to_json()),
            ("histograms", self.histograms.to_json()),
        ])
    }
}

impl FromJson for Snapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Snapshot {
            counters: BTreeMap::from_json(v.field("counters")?)?,
            gauges: BTreeMap::from_json(v.field("gauges")?)?,
            histograms: BTreeMap::from_json(v.field("histograms")?)?,
        })
    }
}

/// Copies out every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, h)| {
            let buckets = h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let c = b.load(Ordering::Relaxed);
                    (c > 0).then(|| (bucket_floor(i), c))
                })
                .collect();
            (
                k.clone(),
                Histogram {
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    max: h.max.load(Ordering::Relaxed),
                    buckets,
                },
            )
        })
        .collect();
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered metric (handles stay valid).
pub fn reset() {
    let reg = registry();
    for v in reg
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
    {
        v.store(0, Ordering::Relaxed);
    }
    for v in reg
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
    {
        v.store(0, Ordering::Relaxed);
    }
    for h in reg
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
    {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so each
    // test uses its own metric names and asserts on handles, not snapshots
    // of the whole registry.

    #[test]
    fn disabled_recorder_records_nothing() {
        set_enabled(false);
        let c = Counter::handle("test.disabled.counter");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::handle("test.disabled.gauge");
        g.set(3);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        set_enabled(true);
        let c = Counter::handle("test.enabled.counter");
        let before = c.get();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        let g = Gauge::handle("test.enabled.gauge");
        g.set(-7);
        assert_eq!(g.get(), -7);
        set_enabled(false);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(4), 8);
    }

    #[test]
    fn bucket_edges_cover_the_u64_range() {
        // every power of two starts a new bucket whose floor is itself
        for i in 0..64u32 {
            let p = 1u64 << i;
            assert_eq!(bucket_of(p), i as usize + 1, "2^{i}");
            assert_eq!(bucket_floor(i as usize + 1), p, "floor of bucket {}", i + 1);
            if p > 1 {
                assert_eq!(bucket_of(p - 1), i as usize, "2^{i} - 1");
            }
        }
        // extremes: 0 and u64::MAX land in the first and last bucket
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_floor(HISTOGRAM_BUCKETS - 1), 1u64 << 63);
        // bucket_of and bucket_floor are mutually consistent everywhere
        for v in [0u64, 1, 2, 3, 1000, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v, "floor({b}) ≤ {v}");
            if b + 1 < HISTOGRAM_BUCKETS {
                assert!(v < bucket_floor(b + 1), "{v} < floor({})", b + 1);
            }
        }
    }

    #[test]
    fn delta_since_treats_absent_counters_as_zero() {
        let mut earlier = Snapshot::default();
        earlier.counters.insert("test.old".to_string(), 5);
        let mut later = Snapshot::default();
        later.counters.insert("test.old".to_string(), 9);
        later.counters.insert("test.new".to_string(), 3);
        let d = later.delta_since(&earlier);
        assert_eq!(d.counters["test.old"], 4);
        // the counter absent from `earlier` is attributed in full
        assert_eq!(d.counters["test.new"], 3);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
        };
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn snapshot_json_roundtrips_with_sorted_keys() {
        let mut snap = Snapshot::default();
        snap.counters.insert("z.last".to_string(), 2);
        snap.counters.insert("a.first".to_string(), 1);
        snap.gauges.insert("g.neg".to_string(), -4);
        snap.histograms.insert(
            "h.t".to_string(),
            Histogram {
                count: 2,
                sum: 6,
                max: 5,
                buckets: vec![(1, 1), (4, 1)],
            },
        );
        let json = snap.to_json();
        // top-level and per-section keys are sorted
        let top: Vec<&str> = json
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(top, ["counters", "gauges", "histograms"]);
        let counters: Vec<&str> = json
            .field("counters")
            .unwrap()
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(counters, ["a.first", "z.last"]);
        let back: Snapshot = Json::parse_as(&json.to_string()).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
    }

    #[test]
    fn histogram_aggregates() {
        set_enabled(true);
        let h = HistogramHandle::handle("test.histo");
        for v in [0u64, 1, 1, 5, 100] {
            h.record(v);
        }
        let snap = snapshot();
        let histo = &snap.histograms["test.histo"];
        assert_eq!(histo.count, 5);
        assert_eq!(histo.sum, 107);
        assert_eq!(histo.max, 100);
        assert_eq!(histo.mean(), 21);
        let total: u64 = histo.buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        set_enabled(false);
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        set_enabled(true);
        let c = Counter::handle("test.delta.counter");
        c.add(10);
        let s1 = snapshot();
        c.add(7);
        let s2 = snapshot();
        let d = s2.delta_since(&s1);
        assert_eq!(d.counters["test.delta.counter"], 7);
        set_enabled(false);
    }

    #[test]
    fn reset_zeroes_existing_handles() {
        set_enabled(true);
        let c = Counter::handle("test.reset.counter");
        c.add(3);
        reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(c.get(), 2);
        set_enabled(false);
    }
}
