//! A JSON-lines trace sink (the CLI's `--trace FILE`).
//!
//! Events are single-line JSON objects of the shape
//! `{"ts_us": <μs since trace start>, "kind": "...", "name": "...", ...}`
//! appended to a process-global writer. Tracing is independent of the
//! metric recorder: with no sink installed, [`event`] is a single relaxed
//! atomic load.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::json::Json;

static ACTIVE: AtomicBool = AtomicBool::new(false);

struct Sink {
    writer: Box<dyn Write + Send>,
    start: Instant,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// `true` iff a trace sink is installed.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs `path` as the trace sink (truncating it) and starts tracing.
pub fn set_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    set_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary writer as the trace sink (used by tests).
pub fn set_writer(writer: Box<dyn Write + Send>) {
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    *g = Some(Sink {
        writer,
        start: Instant::now(),
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Emits one event line: `kind` and `name` plus any extra `fields`.
///
/// No-op (one atomic load) when no sink is installed.
pub fn event(kind: &str, name: &str, fields: &[(&str, Json)]) {
    if !active() {
        return;
    }
    let mut members = vec![
        ("ts_us".to_string(), Json::Null),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("name".to_string(), Json::Str(name.to_string())),
    ];
    for (k, v) in fields {
        members.push((k.to_string(), v.clone()));
    }
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(s) = g.as_mut() {
        let ts_us = s.start.elapsed().as_micros() as u64;
        members[0].1 = Json::Num(ts_us as f64);
        let line = Json::Obj(members).to_string();
        let _ = writeln!(s.writer, "{line}");
    }
}

/// Flushes buffered events to the underlying file.
pub fn flush() {
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(s) = g.as_mut() {
        let _ = s.writer.flush();
    }
}

/// Terminates the stream with a final `{"kind":"close"}` record, flushes,
/// and removes the sink; subsequent events are dropped.
///
/// The close record marks the stream as complete: a consumer seeing a
/// trace without it knows the producer was killed mid-run.
pub fn close() {
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(mut s) = g.take() {
        let ts_us = s.start.elapsed().as_micros() as u64;
        let line = Json::Obj(vec![
            ("ts_us".to_string(), Json::Num(ts_us as f64)),
            ("kind".to_string(), Json::Str("close".to_string())),
            ("name".to_string(), Json::Str("trace".to_string())),
        ])
        .to_string();
        let _ = writeln!(s.writer, "{line}");
        let _ = s.writer.flush();
    }
    ACTIVE.store(false, Ordering::Relaxed);
}

/// An RAII guard that [`close`]s the trace stream on drop — including
/// during a panic unwind — so a `--trace FILE` stream is always flushed
/// and terminated with its close record even when a worker panics or a
/// solve times out.
#[must_use = "dropping the guard immediately closes the trace"]
pub struct TraceGuard {
    _private: (),
}

/// Installs `path` as the trace sink and returns a guard that closes the
/// stream when dropped.
///
/// # Errors
///
/// Propagates the file-creation error.
pub fn guard_file(path: &Path) -> io::Result<TraceGuard> {
    set_file(path)?;
    Ok(TraceGuard { _private: () })
}

/// Installs an arbitrary writer and returns the closing guard (tests).
pub fn guard_writer(writer: Box<dyn Write + Send>) -> TraceGuard {
    set_writer(writer);
    TraceGuard { _private: () }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Serializes the tests in this module: the sink is process-global,
    /// and the harness runs tests concurrently.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// A Write impl that appends into a shared buffer.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_are_parseable_jsonl() {
        let _serial = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
        let buf = Arc::new(Mutex::new(Vec::new()));
        set_writer(Box::new(SharedBuf(buf.clone())));
        event("span", "solve.search_ns", &[("dur_ns", Json::Num(1234.0))]);
        event("counter", "solve.nodes", &[("value", Json::Num(10.0))]);
        close();
        assert!(!active());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert!(v.field("ts_us").unwrap().as_u64().is_some());
            assert!(v.field("kind").unwrap().as_str().is_some());
            assert!(v.field("name").unwrap().as_str().is_some());
        }
        assert_eq!(
            Json::parse(lines[1])
                .unwrap()
                .field("value")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        // close() terminates the stream with the close record
        assert_eq!(
            Json::parse(lines[2])
                .unwrap()
                .field("kind")
                .unwrap()
                .as_str(),
            Some("close")
        );
        // After close, events are dropped silently.
        event("span", "ignored", &[]);
        assert_eq!(buf.lock().unwrap().len(), text.len());
    }

    #[test]
    fn guard_closes_even_on_panic() {
        let _serial = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let buf2 = buf.clone();
        let result = std::thread::spawn(move || {
            let _guard = guard_writer(Box::new(SharedBuf(buf2)));
            event("span", "before_panic", &[]);
            panic!("worker dies");
        })
        .join();
        assert!(result.is_err(), "the thread must have panicked");
        assert!(!active());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text:?}");
        let last = Json::parse(lines[1]).unwrap();
        assert_eq!(last.field("kind").unwrap().as_str(), Some("close"));
    }
}
