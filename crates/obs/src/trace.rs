//! A JSON-lines trace sink (the CLI's `--trace FILE`).
//!
//! Events are single-line JSON objects of the shape
//! `{"ts_us": <μs since trace start>, "kind": "...", "name": "...", ...}`
//! appended to a process-global writer. Tracing is independent of the
//! metric recorder: with no sink installed, [`event`] is a single relaxed
//! atomic load.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::json::Json;

static ACTIVE: AtomicBool = AtomicBool::new(false);

struct Sink {
    writer: Box<dyn Write + Send>,
    start: Instant,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// `true` iff a trace sink is installed.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs `path` as the trace sink (truncating it) and starts tracing.
pub fn set_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    set_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary writer as the trace sink (used by tests).
pub fn set_writer(writer: Box<dyn Write + Send>) {
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    *g = Some(Sink {
        writer,
        start: Instant::now(),
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Emits one event line: `kind` and `name` plus any extra `fields`.
///
/// No-op (one atomic load) when no sink is installed.
pub fn event(kind: &str, name: &str, fields: &[(&str, Json)]) {
    if !active() {
        return;
    }
    let mut members = vec![
        ("ts_us".to_string(), Json::Null),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("name".to_string(), Json::Str(name.to_string())),
    ];
    for (k, v) in fields {
        members.push((k.to_string(), v.clone()));
    }
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(s) = g.as_mut() {
        let ts_us = s.start.elapsed().as_micros() as u64;
        members[0].1 = Json::Num(ts_us as f64);
        let line = Json::Obj(members).to_string();
        let _ = writeln!(s.writer, "{line}");
    }
}

/// Flushes buffered events to the underlying file.
pub fn flush() {
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(s) = g.as_mut() {
        let _ = s.writer.flush();
    }
}

/// Flushes and removes the sink; subsequent events are dropped.
pub fn close() {
    let mut g = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(mut s) = g.take() {
        let _ = s.writer.flush();
    }
    ACTIVE.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Write impl that appends into a shared buffer.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_are_parseable_jsonl() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        set_writer(Box::new(SharedBuf(buf.clone())));
        event("span", "solve.search_ns", &[("dur_ns", Json::Num(1234.0))]);
        event("counter", "solve.nodes", &[("value", Json::Num(10.0))]);
        close();
        assert!(!active());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert!(v.field("ts_us").unwrap().as_u64().is_some());
            assert!(v.field("kind").unwrap().as_str().is_some());
            assert!(v.field("name").unwrap().as_str().is_some());
        }
        assert_eq!(
            Json::parse(lines[1])
                .unwrap()
                .field("value")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        // After close, events are dropped silently.
        event("span", "ignored", &[]);
        assert_eq!(buf.lock().unwrap().len(), text.len());
    }
}
