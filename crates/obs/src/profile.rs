//! Causal span profiling with collapsed-stack flamegraph export (the
//! CLI's `--profile FILE`).
//!
//! A *span* is a named node in a process-global tree: the solver registers
//! one span per round under the root, one per parallel subtree under its
//! round, and phase leaves (`compile`, `split`, `search`) under those.
//! Workers record `(worker, span, depth, nodes, ns)` samples into
//! lock-free per-worker ring buffers — parallel arrays of `AtomicU64`
//! slots with one writer per ring, so recording a sample is a handful of
//! relaxed stores and never takes a lock.
//!
//! [`fold`] aggregates the samples by root-to-leaf path and
//! [`to_collapsed`] renders them in collapsed-stack format
//! (`round:1;subtree:0;search 12345`, weight = nanoseconds), the input
//! format of `inferno-flamegraph` and speedscope.
//!
//! Profiling is observational only: it is gated on its own flag
//! (independent of [`crate::metrics::enabled`]), and no search decision
//! ever reads profiling state — verdicts, witnesses, and node accounting
//! are bit-identical with profiling on or off.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` iff the profiler is currently sampling.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns sampling on or off (off is the default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Maximum number of per-worker rings; worker ids wrap modulo this.
pub const MAX_WORKERS: usize = 64;

/// Samples each ring holds before wrapping (oldest overwritten first).
pub const RING_CAPACITY: usize = 4096;

/// An opaque span identifier; [`SpanId::ROOT`] is every top-level span's
/// parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The root of the span tree (label-less; never sampled directly).
    pub const ROOT: SpanId = SpanId(0);
}

/// The span registry: `spans[id] = (parent id, label)`; index 0 is the
/// root. Registration is cold-path (per round / per subtree), so a mutex
/// is fine here; the sample hot path never touches it.
fn spans() -> &'static Mutex<Vec<(u32, String)>> {
    static SPANS: OnceLock<Mutex<Vec<(u32, String)>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(vec![(0, String::new())]))
}

/// One per-worker ring: parallel `AtomicU64` arrays with a single writer
/// (the owning worker). `meta` packs `span << 16 | depth`.
struct Ring {
    head: AtomicUsize,
    meta: Vec<AtomicU64>,
    nodes: Vec<AtomicU64>,
    ns: Vec<AtomicU64>,
}

impl Ring {
    fn new() -> Ring {
        let zeros = || (0..RING_CAPACITY).map(|_| AtomicU64::new(0)).collect();
        Ring {
            head: AtomicUsize::new(0),
            meta: zeros(),
            nodes: zeros(),
            ns: zeros(),
        }
    }
}

fn rings() -> &'static Vec<Ring> {
    static RINGS: OnceLock<Vec<Ring>> = OnceLock::new();
    RINGS.get_or_init(|| (0..MAX_WORKERS).map(|_| Ring::new()).collect())
}

thread_local! {
    /// The stable worker id of this thread (0 for the main thread; the
    /// work-stealing pool assigns 0..workers to its threads).
    static WORKER: Cell<usize> = const { Cell::new(0) };
}

/// Assigns this thread's worker id (called by the pool when a worker
/// thread starts).
pub fn set_worker(id: usize) {
    WORKER.with(|w| w.set(id));
}

/// This thread's worker id.
pub fn worker() -> usize {
    WORKER.with(Cell::get)
}

/// Registers a span labelled `label` under `parent` and returns its id.
/// Returns [`SpanId::ROOT`] while the profiler is disabled (registering
/// is then a no-op).
pub fn register(parent: SpanId, label: &str) -> SpanId {
    if !enabled() {
        return SpanId::ROOT;
    }
    let mut g = spans().lock().unwrap_or_else(PoisonError::into_inner);
    // ids are u32 packed into 48 bits of sample meta; the registry is
    // bounded by rounds × subtrees, far below this
    let id = g.len() as u32;
    g.push((parent.0, label.to_string()));
    SpanId(id)
}

/// Records one `(worker, span, depth, nodes, ns)` sample into this
/// thread's ring. No-op while disabled. Wrapped (overwritten) samples are
/// counted in `profile.wrapped`.
pub fn sample(span: SpanId, depth: u16, nodes: u64, ns: u64) {
    if !enabled() {
        return;
    }
    let ring = &rings()[worker() % MAX_WORKERS];
    let i = ring.head.fetch_add(1, Ordering::Relaxed);
    if i >= RING_CAPACITY {
        crate::metrics::add("profile.wrapped", 1);
    }
    let slot = i % RING_CAPACITY;
    ring.meta[slot].store(
        (u64::from(span.0) << 16) | u64::from(depth),
        Ordering::Relaxed,
    );
    ring.nodes[slot].store(nodes, Ordering::Relaxed);
    ring.ns[slot].store(ns, Ordering::Relaxed);
}

/// Registers a child span under `parent` and samples it in one step —
/// the common leaf-phase pattern.
pub fn sample_under(parent: SpanId, label: &str, depth: u16, nodes: u64, ns: u64) {
    if !enabled() {
        return;
    }
    sample(register(parent, label), depth, nodes, ns);
}

/// Clears every ring and the span registry (back to the lone root).
pub fn reset() {
    let mut g = spans().lock().unwrap_or_else(PoisonError::into_inner);
    g.clear();
    g.push((0, String::new()));
    drop(g);
    for ring in rings() {
        ring.head.store(0, Ordering::Relaxed);
    }
}

/// Folds all recorded samples by root-to-leaf path: `path → (ns, nodes)`,
/// path frames joined by `;`. Paths sort lexicographically (BTreeMap), so
/// the collapsed output is stable run to run.
pub fn fold() -> BTreeMap<String, (u64, u64)> {
    let g = spans().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for ring in rings() {
        let len = ring.head.load(Ordering::Relaxed).min(RING_CAPACITY);
        for slot in 0..len {
            let meta = ring.meta[slot].load(Ordering::Relaxed);
            let span = (meta >> 16) as usize;
            if span == 0 || span >= g.len() {
                continue; // root or a sample racing a reset
            }
            // walk parent links up to the root to build the path
            let mut frames: Vec<&str> = Vec::new();
            let mut cur = span;
            while cur != 0 {
                let (parent, ref label) = g[cur];
                frames.push(label);
                cur = parent as usize;
            }
            frames.reverse();
            let path = frames.join(";");
            let e = out.entry(path).or_insert((0, 0));
            e.0 += ring.ns[slot].load(Ordering::Relaxed);
            e.1 += ring.nodes[slot].load(Ordering::Relaxed);
        }
    }
    out
}

/// Renders the folded samples in collapsed-stack format, one
/// `frame;frame;frame WEIGHT` line per path (weight = nanoseconds) —
/// loadable by `inferno-flamegraph` and speedscope.
pub fn to_collapsed() -> String {
    let mut out = String::new();
    for (path, (ns, _nodes)) in fold() {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses collapsed-stack text back into `(frames, weight)` rows — the
/// inverse of [`to_collapsed`], used by tests and tooling. Lines without
/// a trailing integer weight are rejected.
pub fn parse_collapsed(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let (path, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no weight in line: {line:?}"))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("bad weight in line: {line:?}"))?;
        if path.is_empty() {
            return Err(format!("empty path in line: {line:?}"));
        }
        rows.push((path.split(';').map(str::to_string).collect(), weight));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global, so all stateful assertions live in
    // this single test (obs unit tests run concurrently).
    #[test]
    fn register_sample_fold_roundtrip() {
        set_enabled(true);
        reset();
        let round = register(SpanId::ROOT, "round:1");
        let subtree = register(round, "subtree:0");
        sample(round, 1, 10, 1000);
        sample_under(subtree, "search", 3, 7, 500);
        sample_under(subtree, "search", 3, 3, 250);
        let folded = fold();
        assert_eq!(folded["round:1"], (1000, 10));
        assert_eq!(folded["round:1;subtree:0;search"], (750, 10));
        let text = to_collapsed();
        let rows = parse_collapsed(&text).unwrap();
        assert!(rows
            .iter()
            .any(|(frames, w)| frames.len() >= 3 && *w == 750));
        // worker ids are per-thread and stable
        assert_eq!(worker(), 0);
        std::thread::spawn(|| {
            set_worker(3);
            assert_eq!(worker(), 3);
            sample(SpanId(1), 1, 1, 1);
        })
        .join()
        .unwrap();
        // the other worker's ring folds into the same tree
        assert_eq!(fold()["round:1"], (1001, 11));
        // disabled: register and sample are no-ops
        set_enabled(false);
        assert_eq!(register(SpanId::ROOT, "ignored"), SpanId::ROOT);
        sample(SpanId(1), 1, 99, 99);
        assert_eq!(fold()["round:1"], (1001, 11));
        // ring wrap keeps only the newest RING_CAPACITY samples
        set_enabled(true);
        reset();
        let s = register(SpanId::ROOT, "wrap");
        for _ in 0..RING_CAPACITY + 5 {
            sample(s, 1, 1, 1);
        }
        assert_eq!(fold()["wrap"], (RING_CAPACITY as u64, RING_CAPACITY as u64));
        set_enabled(false);
        reset();
    }

    #[test]
    fn parse_collapsed_rejects_malformed_lines() {
        assert!(parse_collapsed("a;b 12\nc 3\n").is_ok());
        assert!(parse_collapsed("noweight\n").is_err());
        assert!(parse_collapsed("a;b x\n").is_err());
        assert!(parse_collapsed(" 12\n").is_err());
        assert_eq!(parse_collapsed("").unwrap(), Vec::new());
    }
}
