//! Human-readable rendering of metric snapshots (the CLI's `--stats`).

use crate::metrics::Snapshot;

/// Renders `snap` as an aligned plain-text table, one metric per line.
///
/// Counters print their value; gauges print signed values; histograms
/// print `count / mean / max` (with `*_ns` names humanized as durations).
/// Metrics that never recorded anything are omitted. Returns an empty
/// string when nothing recorded.
pub fn render_table(snap: &Snapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for (name, &v) in &snap.counters {
        if v > 0 {
            rows.push((name.clone(), group_digits(v)));
        }
    }
    for (name, &v) in &snap.gauges {
        if v != 0 {
            rows.push((name.clone(), format!("{v}")));
        }
    }
    for (name, h) in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        let (mean, max) = if name.ends_with("_ns") {
            (fmt_ns(h.mean()), fmt_ns(h.max))
        } else {
            (group_digits(h.mean()), group_digits(h.max))
        };
        rows.push((
            name.clone(),
            format!("n={} mean={} max={}", group_digits(h.count), mean, max),
        ));
    }
    if rows.is_empty() {
        return String::new();
    }
    rows.sort();
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::from("── stats ──────────────────────────────\n");
    for (name, value) in rows {
        out.push_str(&format!("{name:<width$}  {value}\n"));
    }
    out
}

/// `1234567` → `"1,234,567"`.
pub fn group_digits(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Humanizes a nanosecond quantity: `850ns`, `12.3µs`, `4.56ms`, `1.23s`.
pub fn fmt_ns(ns: u64) -> String {
    const UNITS: [(u64, &str); 3] = [(1_000_000_000, "s"), (1_000_000, "ms"), (1_000, "µs")];
    for (scale, unit) in UNITS {
        if ns >= scale {
            let whole = ns / scale;
            let frac = (ns % scale) * 100 / scale;
            return if whole >= 100 {
                format!("{whole}{unit}")
            } else {
                format!("{whole}.{frac:02}{unit}")
            };
        }
    }
    format!("{ns}ns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    #[test]
    fn nanosecond_humanization() {
        assert_eq!(fmt_ns(850), "850ns");
        assert_eq!(fmt_ns(12_300), "12.30µs");
        assert_eq!(fmt_ns(4_560_000), "4.56ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
        assert_eq!(fmt_ns(250_000_000_000), "250s");
    }

    #[test]
    fn table_includes_active_metrics_only() {
        let mut snap = Snapshot::default();
        snap.counters.insert("solve.nodes".to_string(), 1500);
        snap.counters.insert("solve.idle".to_string(), 0);
        snap.gauges.insert("solve.budget_remaining".to_string(), -3);
        snap.histograms.insert(
            "solve.search_ns".to_string(),
            Histogram {
                count: 2,
                sum: 3000,
                max: 2000,
                buckets: vec![(1024, 2)],
            },
        );
        let table = render_table(&snap);
        assert!(table.contains("solve.nodes"));
        assert!(table.contains("1,500"));
        assert!(!table.contains("solve.idle"));
        assert!(table.contains("solve.budget_remaining"));
        assert!(table.contains("mean=1.50µs"));
        assert!(render_table(&Snapshot::default()).is_empty());
    }
}
