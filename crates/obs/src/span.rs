//! RAII span timers.
//!
//! [`span`] returns a guard that, on drop, records the elapsed nanoseconds
//! into the histogram of the same name and — when a trace sink is
//! installed — emits a `span` trace event. When both the recorder and
//! tracing are off, constructing the guard does not even read the clock.

use std::time::Instant;

use crate::json::Json;
use crate::{metrics, trace};

/// A timer for one named region; records on drop.
#[must_use = "a span records when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts timing `name` (a histogram name, conventionally `*_ns`).
#[inline]
pub fn span(name: &'static str) -> Span {
    let start = if metrics::enabled() || trace::active() {
        Some(Instant::now())
    } else {
        None
    };
    Span { name, start }
}

impl Span {
    /// The elapsed nanoseconds so far (`None` while recording is off).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_nanos() as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            metrics::record(self.name, ns);
            trace::event("span", self.name, &[("dur_ns", Json::Num(ns as f64))]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_skips_the_clock() {
        metrics::set_enabled(false);
        let s = span("test.span.disabled_ns");
        assert!(s.elapsed_ns().is_none());
    }

    #[test]
    fn enabled_span_records_into_histogram() {
        metrics::set_enabled(true);
        {
            let _s = span("test.span.enabled_ns");
            std::hint::black_box(0u64);
        }
        let snap = metrics::snapshot();
        let h = &snap.histograms["test.span.enabled_ns"];
        assert!(h.count >= 1);
        metrics::set_enabled(false);
    }
}
