//! A tiny blocking HTTP server, std-only on `std::net::TcpListener` —
//! the scrape endpoint behind the CLI's `--serve ADDR` and the transport
//! under the `iis serve` solve service.
//!
//! Built-in routes (always available):
//!
//! - `GET /metrics` — every counter, gauge and histogram in Prometheus
//!   text exposition format (counters get a `_total` suffix, histograms
//!   emit cumulative `_bucket{le="…"}` series from the log2 buckets);
//! - `GET /progress` — the live [`crate::progress`] snapshot as JSON
//!   (sorted keys, the committed schema);
//! - `GET /snapshot` — the raw metric [`crate::metrics::Snapshot`] as
//!   JSON;
//! - `GET /` — a plain-text index of the routes.
//!
//! Application routes are layered on top through [`serve_with`]: the
//! handler sees every request (method, path, body) first and returns
//! `None` to fall through to the built-ins. This crate sits at the bottom
//! of the workspace dependency graph, so it knows nothing about tasks or
//! solving — the solve service in `iis-cli` plugs in here.
//!
//! Connections are handled by a **bounded worker pool** ([`Options::workers`],
//! default [`DEFAULT_WORKERS`]): the accept loop only enqueues sockets, so
//! a scrape still answers while a long `POST /solve` is being served, and a
//! flood of connections queues instead of spawning unbounded threads.
//! Shutdown is cooperative: [`Server::shutdown`] (or drop) raises a stop
//! flag and unblocks the `accept` loop with a loopback connection, then
//! joins every thread, so a completed solve never leaves a dangling
//! listener.
//!
//! Request reads are hardened: the whole head+body must arrive within
//! [`Options::read_deadline`] (anti-slowloris — a stalled client is
//! disconnected, never pinning a worker), bodies are capped at
//! [`Options::max_body`], and protocol violations (missing, malformed or
//! oversized `Content-Length`; a body shorter than declared) are answered
//! with a structured `400` rather than silently dropped. Wrong methods on
//! known routes get `405` with an `Allow` header; unknown routes stay
//! `404`.
//!
//! Connections are **keep-alive** by HTTP/1.1 default: a worker keeps
//! serving requests off one socket until the client sends
//! `Connection: close`, goes idle past the read deadline, or the server
//! starts shutting down. Protocol-violation `400`s always close.
//!
//! The client half lives here too: [`Client`] is a blocking HTTP/1.1
//! client with a per-host idle-connection pool, `Content-Length` framed
//! bodies, and a per-request wall-clock deadline — the transport under
//! `iis gateway`. A request on a pooled connection that turns out to be
//! stale (the server closed it between requests) is retried once on a
//! fresh socket; this is sound here because every service this client
//! talks to is idempotent (the solvability oracle is a pure function of
//! its question).
//!
//! Every request increments the `serve.requests` counter (when metrics are
//! enabled); rejected reads increment `serve.bad_requests`. Client-side
//! traffic is counted by `http.client_requests`, `http.client_reused` and
//! `http.client_retries`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::json::ToJson;
use crate::metrics::Snapshot;
use crate::{metrics, progress};

/// Default size of the connection-handler pool.
pub const DEFAULT_WORKERS: usize = 4;

/// Longest request head we bother reading before answering.
const MAX_HEAD: usize = 8 * 1024;

/// Default cap on request body size (a serialized task is a few KiB; a
/// megabyte is generous). Override with [`Options::max_body`].
pub const DEFAULT_MAX_BODY: usize = 1024 * 1024;

/// Default wall-clock budget for reading one full request (head + body).
/// A client that trickles bytes slower than this is disconnected, so a
/// slowloris cannot pin a worker. Override with [`Options::read_deadline`].
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(2);

/// A parsed HTTP request, as seen by a [`serve_with`] handler.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string included, undecoded.
    pub path: String,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, if it is valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// A response for a [`serve_with`] handler to return.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status line tail, e.g. `"200 OK"`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `Retry-After`, `Allow`), emitted after
    /// the standard ones.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Response {
        Response::json_status("200 OK", body)
    }

    /// A JSON response with an explicit status line (e.g. `"202 Accepted"`).
    pub fn json_status(status: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with an explicit status line.
    pub fn text(status: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a response header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// The stock `404 Not Found` response.
    pub fn not_found() -> Response {
        Response::text("404 Not Found", "not found\n")
    }

    /// The stock `405 Method Not Allowed` response, advertising the methods
    /// the route does accept via the `Allow` header.
    pub fn method_not_allowed(allow: &'static str) -> Response {
        Response::text("405 Method Not Allowed", "method not allowed\n").with_header("Allow", allow)
    }

    /// A `400 Bad Request` JSON error body: `{"error": msg}`.
    pub fn bad_request(msg: &str) -> Response {
        Response::json_status(
            "400 Bad Request",
            crate::json::Json::obj([("error", crate::json::Json::Str(msg.to_string()))])
                .to_string(),
        )
    }
}

/// An application route handler: inspect the request, return `Some`
/// response or `None` to fall through to the built-in scrape routes.
pub type Handler = dyn Fn(&Request) -> Option<Response> + Send + Sync;

/// Server construction options for [`serve_opts`].
#[derive(Clone)]
pub struct Options {
    /// Connection-handler threads (min 1; default [`DEFAULT_WORKERS`]).
    pub workers: usize,
    /// Application routes, consulted before the built-ins.
    pub handler: Option<Arc<Handler>>,
    /// Wall-clock budget for reading one request
    /// (default [`DEFAULT_READ_DEADLINE`]); slower clients are dropped.
    pub read_deadline: Duration,
    /// Largest accepted request body in bytes
    /// (default [`DEFAULT_MAX_BODY`]); larger `Content-Length` gets a 400.
    pub max_body: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workers: DEFAULT_WORKERS,
            handler: None,
            read_deadline: DEFAULT_READ_DEADLINE,
            max_body: DEFAULT_MAX_BODY,
        }
    }
}

/// A running server; shuts down on [`Server::shutdown`] or drop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// The accept-to-worker hand-off: a stop-aware blocking queue.
struct ConnQueue {
    conns: Mutex<std::collections::VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    fn push(&self, stream: TcpStream) {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(stream);
        self.ready.notify_one();
    }

    /// Blocks for the next connection; `None` once stopped and drained.
    fn pop(&self, stop: &AtomicBool) -> Option<TcpStream> {
        let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = conns.pop_front() {
                return Some(stream);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            conns = self
                .ready
                .wait(conns)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves the
/// built-in scrape routes on a background worker pool.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(addr: &str) -> std::io::Result<Server> {
    serve_opts(addr, Options::default())
}

/// [`serve`] with an application [`Handler`] layered over the built-ins.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_with(addr: &str, handler: Arc<Handler>) -> std::io::Result<Server> {
    serve_opts(
        addr,
        Options {
            handler: Some(handler),
            ..Options::default()
        },
    )
}

/// [`serve`] with full [`Options`] control.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_opts(addr: &str, opts: Options) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue {
        conns: Mutex::new(std::collections::VecDeque::new()),
        ready: Condvar::new(),
    });
    let mut threads = Vec::new();
    for _ in 0..opts.workers.max(1) {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        let handler = opts.handler.clone();
        let read_deadline = opts.read_deadline;
        let max_body = opts.max_body;
        threads.push(std::thread::spawn(move || {
            while let Some(stream) = queue.pop(&stop) {
                handle_connection(stream, handler.as_deref(), read_deadline, max_body, &stop);
            }
        }));
    }
    {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = stream {
                    queue.push(stream);
                }
            }
        }));
    }
    Ok(Server {
        addr,
        stop,
        queue,
        threads,
    })
}

impl Server {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the listener and workers, and joins every
    /// thread. Queued connections are still answered before the workers
    /// exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // unblock the accept loop; the connection itself is discarded
        let _ = TcpStream::connect(self.addr);
        // unblock every idle worker
        self.queue.ready.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Why [`read_request`] could not produce a [`Request`].
enum ReadFailure {
    /// The peer vanished, stalled past the deadline, or never sent a
    /// parseable head — close without answering.
    Disconnect,
    /// A protocol violation worth answering (a 400) before closing.
    Reject(Response),
}

/// Reads a chunk within the overall `deadline` measured from `start`;
/// `Ok(0)` means EOF, `Err` means the deadline passed or the socket died.
fn read_chunk(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    start: Instant,
    deadline: Duration,
) -> std::io::Result<usize> {
    let remaining = deadline
        .checked_sub(start.elapsed())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| std::io::Error::from(std::io::ErrorKind::TimedOut))?;
    let _ = stream.set_read_timeout(Some(remaining));
    stream.read(chunk)
}

/// Reads one request (head + `Content-Length` body) off `stream`.
///
/// The whole read — however slowly the peer trickles bytes — must fit in
/// `deadline`. Requests that violate the protocol (unparseable or missing
/// `Content-Length` on a method that carries a body, declared length over
/// `max_body`, body shorter than declared) are rejected with a structured
/// `400` instead of being silently dropped.
fn read_request(
    stream: &mut TcpStream,
    deadline: Duration,
    max_body: usize,
) -> Result<(Request, bool), ReadFailure> {
    let start = Instant::now();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() >= MAX_HEAD {
            return Err(ReadFailure::Reject(Response::bad_request(
                "request head too large",
            )));
        }
        match read_chunk(stream, &mut chunk, start, deadline) {
            Ok(0) | Err(_) => return Err(ReadFailure::Disconnect),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("").to_ascii_uppercase();
    let header = |name: &str| {
        head.lines().skip(1).find_map(|l| {
            let (n, value) = l.split_once(':')?;
            n.trim()
                .eq_ignore_ascii_case(name)
                .then(|| value.trim().to_string())
        })
    };
    // HTTP/1.1 defaults to keep-alive; an explicit Connection header wins
    let keep_alive = match header("connection").map(|v| v.to_ascii_lowercase()) {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };
    let declared = header("content-length");
    let content_length = match declared {
        Some(value) => match value.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(ReadFailure::Reject(Response::bad_request(
                    "malformed Content-Length",
                )))
            }
        },
        None if matches!(method.as_str(), "POST" | "PUT" | "PATCH") => {
            return Err(ReadFailure::Reject(Response::bad_request(
                "missing Content-Length",
            )))
        }
        None => 0,
    };
    if content_length > max_body {
        return Err(ReadFailure::Reject(Response::bad_request(
            "body exceeds maximum size",
        )));
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        match read_chunk(stream, &mut chunk, start, deadline) {
            Ok(0) | Err(_) => {
                return Err(ReadFailure::Reject(Response::bad_request(
                    "body shorter than Content-Length",
                )))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    Ok((Request { method, path, body }, keep_alive))
}

fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) {
    let mut reply = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n",
        response.status,
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        reply.push_str(name);
        reply.push_str(": ");
        reply.push_str(value);
        reply.push_str("\r\n");
    }
    reply.push_str("\r\n");
    reply.push_str(&response.body);
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(
    mut stream: TcpStream,
    handler: Option<&Handler>,
    read_deadline: Duration,
    max_body: usize,
    stop: &AtomicBool,
) {
    loop {
        let (request, client_keep_alive) = match read_request(&mut stream, read_deadline, max_body)
        {
            Ok(pair) => pair,
            Err(ReadFailure::Reject(response)) => {
                metrics::add("serve.bad_requests", 1);
                write_response(&mut stream, &response, false);
                return;
            }
            Err(ReadFailure::Disconnect) => return,
        };
        metrics::add("serve.requests", 1);
        // a shutting-down server finishes the in-flight request but
        // declines to hold the connection open past it
        let keep_alive = client_keep_alive && !stop.load(Ordering::Acquire);
        let response = route(&request, handler);
        write_response(&mut stream, &response, keep_alive);
        if !keep_alive {
            return;
        }
    }
}

/// The built-in routes, all GET-only.
const BUILTIN_ROUTES: [&str; 4] = ["/metrics", "/progress", "/snapshot", "/"];

fn route(request: &Request, handler: Option<&Handler>) -> Response {
    if let Some(handler) = handler {
        if let Some(response) = handler(request) {
            return response;
        }
    }
    if request.method != "GET" {
        // known route, wrong method → 405 with Allow; unknown route → 404
        return if BUILTIN_ROUTES.contains(&request.path.as_str()) {
            Response::method_not_allowed("GET")
        } else {
            Response::not_found()
        };
    }
    match request.path.as_str() {
        "/metrics" => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: prometheus_text(&metrics::snapshot()),
        },
        "/progress" => Response::json(progress::snapshot().to_json().to_string_pretty()),
        "/snapshot" => Response::json(metrics::snapshot().to_json().to_string_pretty()),
        "/" => Response::text(
            "200 OK",
            "iis scrape endpoint\nroutes: /metrics /progress /snapshot\n",
        ),
        _ => Response::not_found(),
    }
}

/// Mangles a dotted metric name into a Prometheus-legal one
/// (`solve.nodes` → `solve_nodes`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// Renders `snap` in Prometheus text exposition format (version 0.0.4).
///
/// Counters are suffixed `_total`; histograms emit cumulative
/// `_bucket{le="…"}` series with inclusive upper bounds derived from the
/// log2 buckets (`[2^{i-1}, 2^i)` ⇒ `le="2^i − 1"`), then `_sum` and
/// `_count`. Families appear in sorted-name order.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {v}\n"));
    }
    for (name, &v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for &(floor, count) in &h.buckets {
            cumulative += count;
            match bucket_le(floor) {
                Some(le) => {
                    out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                None => break, // the top bucket folds into +Inf below
            }
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// The inclusive upper bound of the log2 bucket whose floor is `floor`
/// (`None` for the top bucket, which only `+Inf` can bound).
fn bucket_le(floor: u64) -> Option<u64> {
    match floor {
        0 => Some(0),
        f if f >= 1 << 63 => None,
        f => Some(2 * f - 1),
    }
}

/// Default TCP connect timeout for [`Client`].
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Default per-request wall-clock deadline for [`Client`] (send the
/// request, receive the full response).
pub const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Idle connections kept pooled per backend address.
const MAX_IDLE_PER_HOST: usize = 4;

/// A response as seen by [`Client`]: the numeric status plus the body
/// bytes, exactly as framed by `Content-Length` (or read to EOF when the
/// server did not declare one).
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// The numeric status code (`200`, `503`, …).
    pub status: u16,
    /// The response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8, if it is valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the status is in the 2xx range.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A blocking HTTP/1.1 client with a per-host keep-alive connection pool
/// and per-request deadlines — the client half of this module, shaped for
/// many small JSON round-trips to a fixed set of backends.
///
/// Bodies are always `Content-Length` framed (no chunked encoding, which
/// the server half never emits). A request on a pooled connection that
/// fails — the server closed it while it sat idle — is retried once on a
/// fresh socket; errors on the fresh socket propagate to the caller.
pub struct Client {
    idle: Mutex<std::collections::HashMap<String, Vec<TcpStream>>>,
    connect_timeout: Duration,
    deadline: Duration,
}

impl Default for Client {
    fn default() -> Self {
        Client::new()
    }
}

impl Client {
    /// A client with the default connect timeout and request deadline.
    pub fn new() -> Client {
        Client {
            idle: Mutex::new(std::collections::HashMap::new()),
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            deadline: DEFAULT_REQUEST_DEADLINE,
        }
    }

    /// Sets the per-request wall-clock deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Client {
        self.deadline = deadline;
        self
    }

    /// Sets the TCP connect timeout (builder style).
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Client {
        self.connect_timeout = timeout;
        self
    }

    /// `GET {path}` against `addr` (a `host:port` string).
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and deadline expiry.
    pub fn get(&self, addr: &str, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", addr, path, None)
    }

    /// `POST {path}` with a JSON body against `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and deadline expiry.
    pub fn post_json(&self, addr: &str, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", addr, path, Some(body.as_bytes()))
    }

    /// One request/response round trip, reusing a pooled connection to
    /// `addr` when one is available.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and deadline expiry (a stale
    /// pooled connection is retried once on a fresh socket first).
    pub fn request(
        &self,
        method: &str,
        addr: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        metrics::add("http.client_requests", 1);
        if let Some(mut stream) = self.checkout(addr) {
            match self.round_trip(&mut stream, method, addr, path, body) {
                Ok((response, reusable)) => {
                    metrics::add("http.client_reused", 1);
                    if reusable {
                        self.checkin(addr, stream);
                    }
                    return Ok(response);
                }
                // the pooled socket was stale; fall through to a fresh one
                Err(_) => metrics::add("http.client_retries", 1),
            }
        }
        let mut stream = self.connect(addr)?;
        let (response, reusable) = self.round_trip(&mut stream, method, addr, path, body)?;
        if reusable {
            self.checkin(addr, stream);
        }
        Ok(response)
    }

    /// How many idle connections are pooled for `addr` right now.
    pub fn pooled(&self, addr: &str) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(addr)
            .map_or(0, Vec::len)
    }

    fn connect(&self, addr: &str) -> std::io::Result<TcpStream> {
        use std::net::ToSocketAddrs as _;
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("cannot resolve {addr}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&sock, self.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn checkout(&self, addr: &str) -> Option<TcpStream> {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_mut(addr)?
            .pop()
    }

    fn checkin(&self, addr: &str, stream: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        let conns = idle.entry(addr.to_string()).or_default();
        if conns.len() < MAX_IDLE_PER_HOST {
            conns.push(stream);
        }
    }

    fn round_trip(
        &self,
        stream: &mut TcpStream,
        method: &str,
        addr: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<(ClientResponse, bool)> {
        let start = Instant::now();
        let mut head =
            format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: keep-alive\r\n");
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        } else if matches!(method, "POST" | "PUT" | "PATCH") {
            head.push_str("Content-Length: 0\r\n");
        }
        head.push_str("\r\n");
        let _ = stream.set_write_timeout(Some(self.deadline));
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        read_client_response(stream, start, self.deadline)
    }
}

/// Reads one response off `stream` within `deadline` (measured from
/// `start`, which covers the request write too). Returns the response and
/// whether the connection may be reused for another request.
fn read_client_response(
    stream: &mut TcpStream,
    start: Instant,
    deadline: Duration,
) -> std::io::Result<(ClientResponse, bool)> {
    use std::io::{Error, ErrorKind};
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() >= MAX_HEAD {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "response head too large",
            ));
        }
        match read_chunk(stream, &mut chunk, start, deadline)? {
            0 => {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed before the response head",
                ))
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            Error::new(
                ErrorKind::InvalidData,
                format!("bad status line: {status_line}"),
            )
        })?;
    let header = |name: &str| {
        head.lines().skip(1).find_map(|l| {
            let (n, value) = l.split_once(':')?;
            n.trim()
                .eq_ignore_ascii_case(name)
                .then(|| value.trim().to_string())
        })
    };
    let keep_alive = !header("connection")
        .map(|v| v.to_ascii_lowercase())
        .is_some_and(|v| v.contains("close"));
    let mut body = buf[head_end..].to_vec();
    match header("content-length") {
        Some(declared) => {
            let len: usize = declared
                .parse()
                .map_err(|_| Error::new(ErrorKind::InvalidData, "malformed Content-Length"))?;
            while body.len() < len {
                match read_chunk(stream, &mut chunk, start, deadline)? {
                    0 => {
                        return Err(Error::new(
                            ErrorKind::UnexpectedEof,
                            "connection closed mid-body",
                        ))
                    }
                    n => body.extend_from_slice(&chunk[..n]),
                }
            }
            body.truncate(len);
            Ok((ClientResponse { status, body }, keep_alive))
        }
        None => {
            // no declared length: the body runs to EOF; not reusable
            loop {
                match read_chunk(stream, &mut chunk, start, deadline)? {
                    0 => break,
                    n => body.extend_from_slice(&chunk[..n]),
                }
            }
            Ok((ClientResponse { status, body }, false))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::metrics::Histogram;
    use std::collections::BTreeMap;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a blank line");
        (head.to_string(), body.to_string())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a blank line");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn prometheus_rendering() {
        let mut snap = Snapshot::default();
        snap.counters.insert("solve.nodes".to_string(), 1234);
        snap.gauges.insert("solve.budget_remaining".to_string(), -5);
        snap.histograms.insert(
            "solve.search_ns".to_string(),
            Histogram {
                count: 4,
                sum: 70,
                max: 40,
                buckets: vec![(0, 1), (2, 2), (32, 1)],
            },
        );
        let text = prometheus_text(&snap);
        assert!(
            text.contains("# TYPE solve_nodes_total counter\n"),
            "{text}"
        );
        assert!(text.contains("solve_nodes_total 1234\n"), "{text}");
        assert!(text.contains("solve_budget_remaining -5\n"), "{text}");
        assert!(
            text.contains("solve_search_ns_bucket{le=\"0\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("solve_search_ns_bucket{le=\"3\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("solve_search_ns_bucket{le=\"63\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("solve_search_ns_bucket{le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("solve_search_ns_sum 70\n"), "{text}");
        assert!(text.contains("solve_search_ns_count 4\n"), "{text}");
        // every non-comment line is `name[{labels}] value`
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name value");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad metric name: {name}"
            );
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        }
        // the top log2 bucket has no finite upper bound
        assert_eq!(bucket_le(1 << 63), None);
        assert_eq!(bucket_le(4), Some(7));
    }

    #[test]
    fn server_serves_and_shuts_down() {
        metrics::set_enabled(true);
        metrics::Counter::handle("solve.nodes").add(3);
        metrics::set_enabled(false);
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("solve_nodes_total"), "{body}");

        let (head, body) = get(addr, "/progress");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let v = Json::parse(&body).unwrap();
        assert!(v.get("nodes").is_some(), "{body}");
        assert!(v.get("task").is_some(), "{body}");

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let snap: Snapshot = Json::parse_as(&body).unwrap();
        assert!(snap.counters.contains_key("solve.nodes"), "{body}");

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let (head, _) = post(addr, "/metrics", "");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        assert!(head.contains("Allow: GET"), "{head}");

        // wrong method on an unknown route is a 404, not a 405
        let (head, _) = post(addr, "/nope", "");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        // the port stops answering once shutdown returns
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        let mut b = [0u8; 1];
                        s.write_all(b"GET / HTTP/1.1\r\n\r\n")?;
                        let n = s.read(&mut b)?;
                        Ok(n == 0)
                    })
                    .unwrap_or(true),
            "listener must be gone after shutdown"
        );
    }

    #[test]
    fn handler_sees_posts_and_falls_through() {
        let handler: Arc<Handler> = Arc::new(|req: &Request| match req.path.as_str() {
            "/echo" => Some(Response::json(format!(
                "{{\"method\": \"{}\", \"body\": \"{}\"}}",
                req.method,
                req.body_utf8().unwrap_or("")
            ))),
            "/accepted" => Some(Response::json_status("202 Accepted", "{}")),
            _ => None,
        });
        let server = serve_with("127.0.0.1:0", handler).unwrap();
        let addr = server.addr();

        let (head, body) = post(addr, "/echo", "payload");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(v.get("body").unwrap().as_str(), Some("payload"));

        let (head, _) = post(addr, "/accepted", "");
        assert!(head.starts_with("HTTP/1.1 202"), "{head}");

        // built-ins still answer under a handler
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("# TYPE") || body.is_empty(), "{body}");

        // and unknown routes still 404
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_answered_while_one_blocks() {
        // one request parks inside the handler; a scrape on a second
        // connection must still answer — the point of the worker pool
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let handler: Arc<Handler> = Arc::new(move |req: &Request| {
            if req.path == "/block" {
                let (lock, cv) = &*gate2;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                return Some(Response::text("200 OK", "unblocked\n"));
            }
            None
        });
        let server = serve_with("127.0.0.1:0", handler).unwrap();
        let addr = server.addr();
        let blocked = std::thread::spawn(move || get(addr, "/block"));
        // the scrape completes while /block is still parked
        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let (head, body) = blocked.join().unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "unblocked\n");
        server.shutdown();
    }

    /// Sends `raw` bytes verbatim and returns the full response text.
    fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    #[test]
    fn protocol_violations_get_structured_400s() {
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.addr();

        // POST without Content-Length
        let resp = raw_roundtrip(
            addr,
            b"POST /solve HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("missing Content-Length"), "{resp}");

        // unparseable Content-Length
        let resp = raw_roundtrip(
            addr,
            b"POST /solve HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("malformed Content-Length"), "{resp}");

        // body shorter than declared (peer closes early)
        let resp = raw_roundtrip(
            addr,
            b"POST /solve HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("shorter than Content-Length"), "{resp}");

        server.shutdown();
    }

    #[test]
    fn oversized_bodies_are_rejected_up_front() {
        let server = serve_opts(
            "127.0.0.1:0",
            Options {
                max_body: 64,
                ..Options::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // the declared length alone triggers the reject — no body sent
        let resp = raw_roundtrip(
            addr,
            b"POST /solve HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("exceeds maximum size"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn slow_clients_are_dropped_at_the_read_deadline() {
        let server = serve_opts(
            "127.0.0.1:0",
            Options {
                read_deadline: Duration::from_millis(150),
                ..Options::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        // a slowloris: opens the connection, sends half a head, stalls
        let start = Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /metrics HTT").unwrap();
        let mut buf = [0u8; 64];
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let n = stream.read(&mut buf).unwrap_or(0);
        // the server hangs up (EOF, no response) within the deadline
        assert_eq!(n, 0, "stalled request must not be answered");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "worker must not stay pinned: {:?}",
            start.elapsed()
        );
        // and the worker is free again for a real request
        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        server.shutdown();
    }

    #[test]
    fn extra_response_headers_are_emitted() {
        let handler: Arc<Handler> = Arc::new(|req: &Request| {
            (req.path == "/busy").then(|| {
                Response::json_status("503 Service Unavailable", "{}")
                    .with_header("Retry-After", "1")
            })
        });
        let server = serve_with("127.0.0.1:0", handler).unwrap();
        let addr = server.addr();
        let (head, _) = get(addr, "/busy");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(head.contains("Retry-After: 1"), "{head}");
        server.shutdown();
    }

    /// Reads exactly one `Content-Length`-framed response off a raw socket
    /// (leaving the connection open for the next one).
    fn read_one_response(stream: &mut TcpStream) -> (String, String) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed before the response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let len: usize = head
            .lines()
            .find_map(|l| {
                let (n, v) = l.split_once(':')?;
                n.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())
                    .flatten()
            })
            .expect("response declares Content-Length");
        let mut body = buf[head_end..].to_vec();
        while body.len() < len {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(len);
        (head, String::from_utf8_lossy(&body).to_string())
    }

    #[test]
    fn server_keeps_http11_connections_alive_across_requests() {
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        // three requests down one socket — a 404 in the middle must not
        // poison the connection
        for (path, want) in [("/", "200"), ("/nope", "404"), ("/metrics", "200")] {
            write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let (head, _) = read_one_response(&mut stream);
            assert!(head.starts_with(&format!("HTTP/1.1 {want}")), "{head}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
        }
        // Connection: close is honored
        write!(
            stream,
            "GET / HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "server must close after Connection: close");
        server.shutdown();
    }

    #[test]
    fn client_reuses_pooled_connections_even_after_a_4xx() {
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let client = Client::new();
        assert_eq!(client.pooled(&addr), 0);
        let ok = client.get(&addr, "/metrics").unwrap();
        assert_eq!(ok.status, 200);
        assert_eq!(client.pooled(&addr), 1, "keep-alive socket is pooled");
        // a 404 goes back to the pool too: the connection is still healthy
        let missing = client.get(&addr, "/nope").unwrap();
        assert_eq!(missing.status, 404);
        assert_eq!(client.pooled(&addr), 1);
        let again = client.get(&addr, "/").unwrap();
        assert_eq!(again.status, 200);
        assert!(again.body_utf8().unwrap().contains("/metrics"));
        server.shutdown();
    }

    #[test]
    fn client_surfaces_a_backend_closing_mid_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            // declare 100 bytes, send 5, slam the connection shut
            let _ = s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhello");
        });
        let client = Client::new().with_deadline(Duration::from_secs(2));
        let err = client.get(&addr, "/").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
        assert_eq!(client.pooled(&addr), 0, "a dead socket must not pool");
        t.join().unwrap();
    }

    #[test]
    fn stale_pooled_connection_is_retried_on_a_fresh_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 1024];
                let _ = s.read(&mut buf);
                // advertise keep-alive but close anyway: the client's
                // pooled socket goes stale between requests
                let _ = s.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
                );
            }
        });
        let client = Client::new().with_deadline(Duration::from_secs(2));
        assert_eq!(client.get(&addr, "/").unwrap().status, 200);
        assert_eq!(client.pooled(&addr), 1);
        let second = client.get(&addr, "/").unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(second.body, b"ok");
        t.join().unwrap();
    }

    #[test]
    fn client_post_round_trips_a_body() {
        let handler: Arc<Handler> = Arc::new(|req: &Request| {
            (req.path == "/echo")
                .then(|| Response::json(format!("{{\"len\": {}}}", req.body.len())))
        });
        let server = serve_with("127.0.0.1:0", handler).unwrap();
        let addr = server.addr().to_string();
        let client = Client::new();
        let resp = client.post_json(&addr, "/echo", "{\"x\": 1}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_utf8(), Some("{\"len\": 8}"));
        server.shutdown();
    }

    #[test]
    fn mangled_names_are_prometheus_legal() {
        let mut snap = Snapshot::default();
        let mut counters = BTreeMap::new();
        counters.insert("Fuzz.oracle-failures".to_string(), 1);
        snap.counters = counters;
        let text = prometheus_text(&snap);
        assert!(text.contains("fuzz_oracle_failures_total 1"), "{text}");
    }
}
