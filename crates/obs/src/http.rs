//! A tiny blocking HTTP scrape endpoint (the CLI's `--serve ADDR`),
//! std-only on `std::net::TcpListener`.
//!
//! Routes:
//!
//! - `GET /metrics` — every counter, gauge and histogram in Prometheus
//!   text exposition format (counters get a `_total` suffix, histograms
//!   emit cumulative `_bucket{le="…"}` series from the log2 buckets);
//! - `GET /progress` — the live [`crate::progress`] snapshot as JSON
//!   (sorted keys, the committed schema);
//! - `GET /snapshot` — the raw metric [`crate::metrics::Snapshot`] as
//!   JSON;
//! - `GET /` — a plain-text index of the routes.
//!
//! The server runs one request at a time on a single background thread —
//! scrapes are rare and tiny, so there is nothing to pool. Shutdown is
//! cooperative: [`Server::shutdown`] (or drop) raises a stop flag and
//! unblocks the `accept` loop with a loopback connection, then joins the
//! thread, so a completed solve never leaves a dangling listener.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::json::ToJson;
use crate::metrics::Snapshot;
use crate::{metrics, progress};

/// A running scrape server; shuts down on [`Server::shutdown`] or drop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// scrapes on a background thread.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(addr: &str) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop2.load(Ordering::Acquire) {
                break;
            }
            if let Ok(stream) = stream {
                handle_connection(stream);
            }
        }
    });
    Ok(Server {
        addr,
        stop,
        handle: Some(handle),
    })
}

impl Server {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the listener, and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // unblock the accept loop; the connection itself is discarded
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Longest request head we bother reading before answering.
const MAX_REQUEST: usize = 8 * 1024;

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    // read until the end of the request head (we never accept bodies)
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < MAX_REQUEST {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = route(method, path);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(&metrics::snapshot()),
        ),
        "/progress" => (
            "200 OK",
            "application/json",
            progress::snapshot().to_json().to_string_pretty(),
        ),
        "/snapshot" => (
            "200 OK",
            "application/json",
            metrics::snapshot().to_json().to_string_pretty(),
        ),
        "/" => (
            "200 OK",
            "text/plain; charset=utf-8",
            "iis scrape endpoint\nroutes: /metrics /progress /snapshot\n".to_string(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

/// Mangles a dotted metric name into a Prometheus-legal one
/// (`solve.nodes` → `solve_nodes`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// Renders `snap` in Prometheus text exposition format (version 0.0.4).
///
/// Counters are suffixed `_total`; histograms emit cumulative
/// `_bucket{le="…"}` series with inclusive upper bounds derived from the
/// log2 buckets (`[2^{i-1}, 2^i)` ⇒ `le="2^i − 1"`), then `_sum` and
/// `_count`. Families appear in sorted-name order.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {v}\n"));
    }
    for (name, &v) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for &(floor, count) in &h.buckets {
            cumulative += count;
            match bucket_le(floor) {
                Some(le) => {
                    out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                None => break, // the top bucket folds into +Inf below
            }
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// The inclusive upper bound of the log2 bucket whose floor is `floor`
/// (`None` for the top bucket, which only `+Inf` can bound).
fn bucket_le(floor: u64) -> Option<u64> {
    match floor {
        0 => Some(0),
        f if f >= 1 << 63 => None,
        f => Some(2 * f - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::metrics::Histogram;
    use std::collections::BTreeMap;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a blank line");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn prometheus_rendering() {
        let mut snap = Snapshot::default();
        snap.counters.insert("solve.nodes".to_string(), 1234);
        snap.gauges.insert("solve.budget_remaining".to_string(), -5);
        snap.histograms.insert(
            "solve.search_ns".to_string(),
            Histogram {
                count: 4,
                sum: 70,
                max: 40,
                buckets: vec![(0, 1), (2, 2), (32, 1)],
            },
        );
        let text = prometheus_text(&snap);
        assert!(
            text.contains("# TYPE solve_nodes_total counter\n"),
            "{text}"
        );
        assert!(text.contains("solve_nodes_total 1234\n"), "{text}");
        assert!(text.contains("solve_budget_remaining -5\n"), "{text}");
        assert!(
            text.contains("solve_search_ns_bucket{le=\"0\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("solve_search_ns_bucket{le=\"3\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("solve_search_ns_bucket{le=\"63\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("solve_search_ns_bucket{le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("solve_search_ns_sum 70\n"), "{text}");
        assert!(text.contains("solve_search_ns_count 4\n"), "{text}");
        // every non-comment line is `name[{labels}] value`
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name value");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad metric name: {name}"
            );
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        }
        // the top log2 bucket has no finite upper bound
        assert_eq!(bucket_le(1 << 63), None);
        assert_eq!(bucket_le(4), Some(7));
    }

    #[test]
    fn server_serves_and_shuts_down() {
        metrics::set_enabled(true);
        metrics::Counter::handle("solve.nodes").add(3);
        metrics::set_enabled(false);
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("solve_nodes_total"), "{body}");

        let (head, body) = get(addr, "/progress");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let v = Json::parse(&body).unwrap();
        assert!(v.get("nodes").is_some(), "{body}");
        assert!(v.get("task").is_some(), "{body}");

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let snap: Snapshot = Json::parse_as(&body).unwrap();
        assert!(snap.counters.contains_key("solve.nodes"), "{body}");

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        // the port stops answering once shutdown returns
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        let mut b = [0u8; 1];
                        s.write_all(b"GET / HTTP/1.1\r\n\r\n")?;
                        let n = s.read(&mut b)?;
                        Ok(n == 0)
                    })
                    .unwrap_or(true),
            "listener must be gone after shutdown"
        );
    }

    #[test]
    fn mangled_names_are_prometheus_legal() {
        let mut snap = Snapshot::default();
        let mut counters = BTreeMap::new();
        counters.insert("Fuzz.oracle-failures".to_string(), 1);
        snap.counters = counters;
        let text = prometheus_text(&snap);
        assert!(text.contains("fuzz_oracle_failures_total 1"), "{text}");
    }
}
