//! The `iis` binary: argument I/O around [`iis_cli::dispatch`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match iis_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
