//! Implementation of the `iis` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to an output
//! string, so the whole surface is unit-testable; `main.rs` only does I/O.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use iis_adversary::{fuzz, FuzzConfig, Layer};
use iis_core::bg::BgSimulation;
use iis_core::protocol_complex::{check_lemma_3_2, check_lemma_3_3};
use iis_core::solvability::{BoundedOutcome, Kernel, SolveOptions, Solver};
use iis_core::EmulatorMachine;
use iis_obs::ToJson as _;
use iis_sched::{AtomicMachine, IisRunner, IisSchedule};
use iis_tasks::library;
use iis_tasks::Task;
use iis_topology::embedding::{embed_sds_tower, to_svg};
use iis_topology::homology::Homology;
use iis_topology::homology_z::IntegerHomology;
use iis_topology::manifold::pseudomanifold_report;
use iis_topology::{sds, Complex, Subdivision};
use std::fmt::Write as _;

/// A CLI usage or execution error, formatted for the terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

pub(crate) fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

mod serve;
pub use serve::cmd_serve;

mod gateway;
pub use gateway::cmd_gateway;

/// Top-level usage text.
pub const USAGE: &str = "\
iis — wait-free computability toolbox (Borowsky–Gafni PODC'97)

USAGE:
  iis sds <n> <b> [--json] [--svg FILE]   build SDS^b(s^n); print stats
  iis homology <n> <b>                    Z2 Betti numbers of SDS^b(s^n)
  iis check-lemmas <n> <b>                verify Lemmas 3.2/3.3 by enumeration
  iis solve <TASK> [--max-rounds B] [--budget NODES] [--jobs N] [--kernel K]
            [--timeout-secs T] [--store DIR]
                                          decide wait-free solvability
                                          (timeout ⇒ inconclusive, not unsolvable;
                                          --store answers from / fills a
                                          persistent witness cache)
  iis serve [--addr A] [--store DIR] [--workers N] [--queue N]
            [--timeout-secs T] [--drain-secs S]
                                          HTTP solve service: POST /solve,
                                          GET /jobs[/<id>], GET /healthz,
                                          GET /readyz, POST /shutdown,
                                          plus /metrics /progress /snapshot
                                          (default --addr 127.0.0.1:0; the
                                          bound address goes to stderr;
                                          --queue bounds admission ⇒ 503,
                                          --timeout-secs bounds a waited
                                          solve ⇒ 504, --drain-secs bounds
                                          the graceful drain on shutdown)
  iis gateway --backends A,B[,…] [--replicas R] [--addr A] [--workers N]
              [--probe-ms MS] [--timeout-secs T]
                                          front a fleet of iis serve shards:
                                          rendezvous-routed POST /solve
                                          (single or {\"questions\": […]}
                                          batch), failover to replicas,
                                          GET /cluster, aggregated
                                          GET /metrics, POST /shutdown
  iis store repair <DIR>                  re-encode surviving records from
                                          a store's quarantined segments
                                          into a fresh segment and lift the
                                          read-only degradation
  iis emulate <n> <k> [--adversary A] [--seed S]
                                          emulate the k-shot protocol on IIS
  iis bg <n_sim> <k> <m> [--crash SIM@STEP]
                                          run the BG simulation
  iis fuzz --layer iis|atomic|emulation|bg|store|gateway [--task SPEC] [--seed S]
           [--cases N] [--crashes K] [--n N] [--rounds B] [--shrink]
           [--exhaustive]                 adversarial sweep with fault
                                          injection; replay a failure from
                                          its (seed, case_index) report

TASK:
  trivial:N | consensus:N | kset:N:K | renaming:N:M | eps:N:GRID | oneshot:N
  (N = index, i.e. N+1 processes) or @FILE.json (a serialized task)

ADVERSARY: lockstep | sequential | rotating | laggard | random (default)

GLOBAL FLAGS (any command):
  --stats            append a table of counters/histograms for this run
  --trace FILE       write JSON-lines trace events to FILE (stream ends
                     with a {\"kind\":\"close\"} record, even on panic)
  --profile FILE     write a collapsed-stack span profile to FILE
                     (round;subtree;phase NS — speedscope/inferno input)
  --progress         print a live progress line to stderr once per second
  --serve ADDR       serve GET /metrics (Prometheus text), /progress and
                     /snapshot (JSON) on ADDR while the command runs
                     (e.g. --serve 127.0.0.1:0; the bound address is
                     printed to stderr)
";

/// Parses a task specifier (see [`USAGE`]).
///
/// # Errors
///
/// Returns a [`CliError`] describing the malformed specifier.
pub fn parse_task(spec: &str) -> Result<Task, CliError> {
    if let Some(path) = spec.strip_prefix('@') {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        return iis_obs::Json::parse_as::<Task>(&text)
            .map_err(|e| err(format!("bad task file: {e}")));
    }
    library::parse_spec(spec).map_err(err)
}

fn parse_dims(args: &[String]) -> Result<(usize, usize), CliError> {
    let n: usize = args
        .first()
        .ok_or_else(|| err("missing <n>"))?
        .parse()
        .map_err(|_| err("bad <n>"))?;
    let b: usize = args
        .get(1)
        .ok_or_else(|| err("missing <b>"))?
        .parse()
        .map_err(|_| err("bad <b>"))?;
    if n > 3 || b > 3 || (n >= 2 && b >= 3) || (n == 3 && b >= 2) {
        return Err(err("keep n ≤ 3, b ≤ 3 and n·b small — counts explode"));
    }
    Ok((n, b))
}

/// Looks up `--flag VALUE` or `--flag=VALUE` in `args`.
///
/// # Errors
///
/// Returns a [`CliError`] if the flag appears as the last argument with no
/// value following it.
pub(crate) fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, CliError> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.as_str())),
                None => Err(err(format!("{flag} requires a value"))),
            };
        }
        if let Some(v) = a.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            return Ok(Some(v));
        }
    }
    Ok(None)
}

fn build_tower(n: usize, b: usize) -> (Complex, Vec<Subdivision>, Subdivision) {
    let base = Complex::standard_simplex(n);
    let mut levels = Vec::new();
    let mut acc = Subdivision::identity(base.clone());
    for _ in 0..b {
        let next = sds(acc.complex());
        levels.push(next.clone());
        acc = acc.compose(&next);
    }
    (base, levels, acc)
}

/// `iis sds <n> <b> [--json] [--svg FILE]`
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments or I/O failure.
pub fn cmd_sds(args: &[String]) -> Result<String, CliError> {
    let (n, b) = parse_dims(args)?;
    let (base, levels, acc) = build_tower(n, b);
    acc.validate().map_err(|e| err(e.to_string()))?;
    if args.iter().any(|a| a == "--json") {
        return Ok(acc.to_json().to_string_pretty());
    }
    let mut out = String::new();
    let c = acc.complex();
    let _ = writeln!(out, "SDS^{b}(s^{n})");
    let _ = writeln!(out, "  facets:   {}", c.num_facets());
    let _ = writeln!(out, "  vertices: {}", c.num_vertices());
    let _ = writeln!(out, "  f-vector: {:?}", c.f_vector());
    let _ = writeln!(
        out,
        "  chromatic: {} · pure: {}",
        c.is_chromatic(),
        c.is_pure()
    );
    let report = pseudomanifold_report(c);
    let _ = writeln!(
        out,
        "  pseudomanifold with boundary: {} ({} boundary / {} interior ridges)",
        report.is_pseudomanifold(),
        report.boundary_ridges,
        report.interior_ridges
    );
    if let Some(path) = flag_value(args, "--svg")? {
        if n != 2 {
            return Err(err("--svg needs n = 2"));
        }
        let emb = embed_sds_tower(&base, &levels);
        std::fs::write(path, to_svg(&acc, &emb, 600.0))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  svg written to {path}");
    }
    Ok(out)
}

/// `iis homology <n> <b>`
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments.
pub fn cmd_homology(args: &[String]) -> Result<String, CliError> {
    let (n, b) = parse_dims(args)?;
    let (_, _, acc) = build_tower(n, b);
    let h = Homology::of(acc.complex());
    let hz = IntegerHomology::of(acc.complex());
    let hb = Homology::of(&acc.complex().boundary());
    Ok(format!(
        "SDS^{b}(s^{n}): Z2 Betti {:?} (hole-free: {})\n\
         integral:   Betti {:?} (torsion-free: {})\n\
         boundary:   Z2 Betti {:?}\n",
        h.betti_numbers(),
        h.is_hole_free_up_to(n),
        hz.betti_numbers(),
        hz.is_torsion_free(),
        hb.betti_numbers()
    ))
}

/// `iis check-lemmas <n> <b>`
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments.
pub fn cmd_check_lemmas(args: &[String]) -> Result<String, CliError> {
    let (n, b) = parse_dims(args)?;
    let base = Complex::standard_simplex(n);
    let mut out = String::new();
    let (e32, _) = check_lemma_3_2(&base);
    let _ = writeln!(
        out,
        "Lemma 3.2 ✓ one-shot IS complex = SDS(s^{n}) ({} facets)",
        e32.complex().num_facets()
    );
    if b >= 1 {
        let (e33, _) = check_lemma_3_3(&base, b);
        let _ = writeln!(
            out,
            "Lemma 3.3 ✓ {b}-shot complex = SDS^{b}(s^{n}) ({} facets)",
            e33.complex().num_facets()
        );
    }
    Ok(out)
}

/// Parses a `--kernel` / `"kernel"` value (`compiled|reference`).
///
/// # Errors
///
/// Returns a [`CliError`] naming the accepted engines.
pub(crate) fn parse_kernel(s: &str) -> Result<Kernel, CliError> {
    match s {
        "compiled" => Ok(Kernel::Compiled),
        "reference" => Ok(Kernel::Reference),
        other => Err(err(format!("bad --kernel: {other} (compiled|reference)"))),
    }
}

/// `iis solve <TASK> [--max-rounds B] [--budget NODES] [--jobs N]
/// [--kernel K] [--timeout-secs T] [--store DIR]`
///
/// The round sweep is incremental (`SDS^{b+1}` extends `SDS^b`) and
/// `--jobs N` spreads each round's search over `N` worker threads without
/// changing any verdict or witness. `--kernel compiled|reference` selects
/// the CSP engine (the flat bitset kernel by default; `reference` is the
/// slower oracle engine, kept as an escape hatch) — verdicts and witnesses
/// are identical either way. `--timeout-secs T` bounds each round's search
/// by wall-clock time; a timed-out round is reported as **inconclusive**
/// (like a spent `--budget`), never as unsolvable.
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments.
pub fn cmd_solve(args: &[String]) -> Result<String, CliError> {
    let spec = args.first().ok_or_else(|| err("missing <TASK>"))?;
    let task = parse_task(spec)?;
    let max_rounds: usize = flag_value(args, "--max-rounds")?
        .unwrap_or("2")
        .parse()
        .map_err(|_| err("bad --max-rounds"))?;
    let budget: u64 = flag_value(args, "--budget")?
        .unwrap_or("1000000")
        .parse()
        .map_err(|_| err("bad --budget"))?;
    let jobs: usize = flag_value(args, "--jobs")?
        .unwrap_or("1")
        .parse()
        .map_err(|_| err("bad --jobs"))?;
    let kernel = parse_kernel(flag_value(args, "--kernel")?.unwrap_or("compiled"))?;
    let timeout_secs: Option<u64> = match flag_value(args, "--timeout-secs")? {
        Some(t) => Some(t.parse().map_err(|_| err("bad --timeout-secs"))?),
        None => None,
    };
    let mut out = String::new();
    let _ = writeln!(out, "task: {task}");
    let mut opts = SolveOptions::new().budget(budget).jobs(jobs).kernel(kernel);
    if let Some(t) = timeout_secs {
        opts = opts.timeout(std::time::Duration::from_secs(t));
    }
    if let Some(dir) = flag_value(args, "--store")? {
        // cache-aware path: answer from the persistent store when the
        // (task, max_rounds) record exists, persist a decided sweep
        let mut store = iis_store::Store::open(dir)
            .map_err(|e| err(format!("cannot open store {dir}: {e}")))?;
        let cached = iis_core::cache::solve_up_to_cached(&task, max_rounds, &opts, &mut store);
        for &(b, ok) in cached.report.results() {
            if ok {
                let m = cached.report.witness().expect("solvable has a witness");
                let _ = writeln!(
                    out,
                    "b = {b}: SOLVABLE — decision map on {} vertices",
                    m.map().len()
                );
            } else {
                let _ = writeln!(out, "b = {b}: no decision map (exact)");
            }
        }
        if cached.report.witness().is_none() {
            if cached.report.results().len() == max_rounds + 1 {
                let _ = writeln!(out, "no decision map found up to b = {max_rounds}");
            } else {
                let _ = writeln!(
                    out,
                    "b = {}: undecided within the budget — inconclusive, not stored",
                    cached.report.results().len()
                );
            }
        }
        let _ = writeln!(
            out,
            "store: {} (key {:016x}, {} records in {dir})",
            if cached.hit {
                "hit"
            } else {
                "miss — computed and saved"
            },
            cached.key,
            store.len()
        );
        return Ok(out);
    }
    let mut solver = Solver::new(&task, opts);
    for b in 0..=max_rounds {
        match solver.step() {
            BoundedOutcome::Solvable(m) => {
                let _ = writeln!(
                    out,
                    "b = {b}: SOLVABLE — decision map on {} vertices",
                    m.map().len()
                );
                return Ok(out);
            }
            BoundedOutcome::Unsolvable => {
                let _ = writeln!(out, "b = {b}: no decision map (exact)");
            }
            BoundedOutcome::Exhausted => {
                let _ = writeln!(out, "b = {b}: undecided within {budget} nodes");
            }
            BoundedOutcome::TimedOut => {
                let t = timeout_secs.unwrap_or(0);
                let _ = writeln!(
                    out,
                    "b = {b}: TIMED OUT after {t}s — inconclusive (not unsolvable); \
                     partial stats are in --stats"
                );
                let _ = writeln!(out, "stopped at b = {b}: timeout verdicts decide nothing");
                return Ok(out);
            }
        }
    }
    let _ = writeln!(out, "no decision map found up to b = {max_rounds}");
    Ok(out)
}

/// The k-shot census machine used by `iis emulate`.
struct Census {
    pid: usize,
    k: usize,
    done: usize,
}

impl AtomicMachine for Census {
    type Value = (usize, usize);
    type Output = usize;
    fn next_write(&mut self) -> (usize, usize) {
        (self.pid, self.done + 1)
    }
    fn on_snapshot(&mut self, snap: &[Option<(usize, usize)>]) -> Option<usize> {
        self.done += 1;
        if self.done == self.k {
            Some(snap.iter().flatten().count())
        } else {
            None
        }
    }
}

/// `iis emulate <n> <k> [--adversary A] [--seed S]`
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments or if the schedule generator is
/// unknown.
pub fn cmd_emulate(args: &[String]) -> Result<String, CliError> {
    let n: usize = args
        .first()
        .ok_or_else(|| err("missing <n>"))?
        .parse()
        .map_err(|_| err("bad <n>"))?;
    let k: usize = args
        .get(1)
        .ok_or_else(|| err("missing <k>"))?
        .parse()
        .map_err(|_| err("bad <k>"))?;
    if n == 0 || n > 8 || k == 0 || k > 64 {
        return Err(err("need 1 ≤ n ≤ 8, 1 ≤ k ≤ 64"));
    }
    let adversary = flag_value(args, "--adversary")?.unwrap_or("random");
    let seed: u64 = flag_value(args, "--seed")?
        .unwrap_or("42")
        .parse()
        .map_err(|_| err("bad --seed"))?;
    let budget = 64 * n * k + 64;
    let schedule = match adversary {
        "lockstep" => IisSchedule::lockstep(n, budget),
        "sequential" => IisSchedule::sequential(n, budget),
        "rotating" => IisSchedule::rotating_leader(n, budget),
        "laggard" => IisSchedule::laggard(n, budget),
        "random" => {
            let mut rng = iis_obs::Rng::seed_from_u64(seed);
            IisSchedule::random(n, budget, &mut rng)
        }
        other => return Err(err(format!("unknown adversary: {other}"))),
    };
    let machines: Vec<EmulatorMachine<Census>> = (0..n)
        .map(|pid| EmulatorMachine::new(pid, n, Census { pid, k, done: 0 }))
        .collect();
    let mut runner = IisRunner::new(machines);
    let rounds = runner.run(schedule);
    if !runner.is_quiescent() {
        return Err(err("emulation did not finish within the schedule budget"));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "emulated {k}-shot atomic snapshot protocol, {n} processes, adversary = {adversary}"
    );
    let _ = writeln!(out, "completed in {rounds} IIS memories");
    for p in 0..n {
        let _ = writeln!(
            out,
            "  P{p} saw {} processes",
            runner.output(p).expect("quiescent")
        );
    }
    Ok(out)
}

/// `iis bg <n_sim> <k> <m> [--crash SIM@STEP]`
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments.
pub fn cmd_bg(args: &[String]) -> Result<String, CliError> {
    let get = |i: usize, name: &str| -> Result<usize, CliError> {
        args.get(i)
            .ok_or_else(|| err(format!("missing <{name}>")))?
            .parse()
            .map_err(|_| err(format!("bad <{name}>")))
    };
    let (n_sim, k, m) = (get(0, "n_sim")?, get(1, "k")?, get(2, "m")?);
    if n_sim == 0 || n_sim > 8 || k == 0 || k > 8 || m == 0 || m > 8 {
        return Err(err("need 1 ≤ n_sim, k, m ≤ 8"));
    }
    let crash: Option<(usize, u64)> = match flag_value(args, "--crash")? {
        None => None,
        Some(spec) => {
            let (s, at) = spec
                .split_once('@')
                .ok_or_else(|| err("--crash wants SIM@STEP"))?;
            Some((
                s.parse().map_err(|_| err("bad simulator id"))?,
                at.parse().map_err(|_| err("bad step"))?,
            ))
        }
    };
    let mut bg = BgSimulation::new(n_sim, k, m);
    let mut i = 0u64;
    while !bg.all_done() && i < 1_000_000 {
        if let Some((s, at)) = crash {
            if i == at {
                bg.crash(s);
            }
        }
        bg.step((i % m as u64) as usize);
        i += 1;
        if let Some((_, at)) = crash {
            // after a crash the blocked process may never finish; stop once
            // everyone else has decided
            if i > at && bg.decisions().iter().filter(|d| d.is_some()).count() >= n_sim - 1 {
                break;
            }
        }
    }
    let st = bg.stats();
    let done = bg.decisions().iter().filter(|d| d.is_some()).count();
    Ok(format!(
        "BG simulation: {n_sim} simulated × {k}-shot on {m} simulators\n\
         decided: {done}/{n_sim} · steps: {} · proposals: {} · backoffs: {} · blocked: {}\n",
        st.steps,
        st.proposals,
        st.backoffs,
        bg.blocked_processes()
    ))
}

/// `iis fuzz --layer L [--task SPEC] [--seed S] [--cases N] [--crashes K]
/// [--n N] [--rounds B] [--shrink] [--exhaustive]`
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments, an unsolvable `--task`, or —
/// the point of the exercise — any oracle failure, with the replayable
/// JSON report(s) in the message.
pub fn cmd_fuzz(args: &[String]) -> Result<String, CliError> {
    let layer = match flag_value(args, "--layer")? {
        Some(l) => Layer::parse(l).ok_or_else(|| {
            err(format!(
                "bad --layer: {l} (iis|atomic|emulation|bg|store|gateway)"
            ))
        })?,
        None => {
            return Err(err(
                "fuzz requires --layer iis|atomic|emulation|bg|store|gateway",
            ))
        }
    };
    let num = |flag: &str, default: usize| -> Result<usize, CliError> {
        match flag_value(args, flag)? {
            Some(v) => v.parse().map_err(|_| err(format!("bad {flag}: {v}"))),
            None => Ok(default),
        }
    };
    let mut cfg = FuzzConfig::new(layer);
    cfg.seed = match flag_value(args, "--seed")? {
        Some(v) => v.parse().map_err(|_| err(format!("bad --seed: {v}")))?,
        None => 0,
    };
    cfg.cases = num("--cases", 100)?;
    cfg.max_crashes = num("--crashes", 1)?;
    cfg.n = num("--n", 3)?;
    cfg.rounds = num("--rounds", 2)?;
    cfg.shrink = args.iter().any(|a| a == "--shrink");
    cfg.exhaustive = args.iter().any(|a| a == "--exhaustive");
    if cfg.n == 0 || cfg.n > 6 {
        return Err(err("need 1 ≤ --n ≤ 6"));
    }
    if cfg.exhaustive && (layer != Layer::Iis || cfg.n > 3 || cfg.rounds > 2) {
        return Err(err("--exhaustive needs --layer iis with n ≤ 3, rounds ≤ 2"));
    }
    let task = match flag_value(args, "--task")? {
        Some(spec) => {
            if layer != Layer::Iis {
                return Err(err("--task applies to --layer iis only"));
            }
            let task = parse_task(spec)?;
            let n = task.input().colors().len();
            if iis_core::solvability::solve_up_to(&task, cfg.rounds)
                .witness()
                .is_none()
            {
                return Err(err(format!(
                    "--task {spec} is not solvable within {} rounds — the \
                     wait-freedom oracle needs a witness round bound \
                     (raise --rounds)",
                    cfg.rounds
                )));
            }
            cfg.n = n;
            Some(task)
        }
        None => None,
    };
    cfg.task = task.as_ref();
    let out = fuzz(&cfg);
    let crashes = cfg.max_crashes;
    let mode = if cfg.exhaustive {
        "exhaustive".to_string()
    } else {
        format!("seed {}", cfg.seed)
    };
    if out.ok() {
        return Ok(format!(
            "fuzz --layer {}: {} cases ({mode}, ≤ {crashes} crashes/case) — \
             all oracles passed\n",
            layer.name(),
            out.cases,
        ));
    }
    let mut msg = format!(
        "fuzz --layer {}: {}/{} cases FAILED an oracle ({mode})\n",
        layer.name(),
        out.failures.len(),
        out.cases,
    );
    for failure in out.failures.iter().take(3) {
        let _ = writeln!(
            msg,
            "case {}: {}",
            failure.case_index,
            failure
                .failures
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        let _ = writeln!(msg, "{}", failure.report.to_string_pretty());
    }
    if out.failures.len() > 3 {
        let _ = writeln!(msg, "… and {} more failing cases", out.failures.len() - 3);
    }
    Err(err(msg))
}

/// `iis store repair <DIR>` — see [`USAGE`].
///
/// Opens the store at `DIR` (running normal recovery, which may quarantine
/// further corruption it finds), re-encodes every surviving quarantined
/// record into a fresh checksummed segment, deletes the quarantined files,
/// and lifts the sticky read-only degradation — so the next `iis serve
/// --store DIR` comes up writable with zero record loss.
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments or if the store cannot be
/// opened or rewritten.
pub fn cmd_store(args: &[String]) -> Result<String, CliError> {
    match args.split_first() {
        Some((op, rest)) if op == "repair" => {
            let [dir] = rest else {
                return Err(err("usage: iis store repair <DIR>"));
            };
            let mut store = iis_store::Store::open(dir)
                .map_err(|e| err(format!("cannot open store {dir}: {e}")))?;
            let was_degraded = store.degraded();
            let rec = store.recovery();
            let stats = store
                .repair()
                .map_err(|e| err(format!("repair failed: {e}")))?;
            if !was_degraded && stats == iis_store::RepairStats::default() {
                return Ok(format!(
                    "store {dir}: healthy ({} records), nothing to repair\n",
                    store.len()
                ));
            }
            Ok(format!(
                "store {dir}: re-encoded {} records out of {} quarantined files \
                 ({} checksum failures dropped), {} records total, writable again\n",
                stats.repaired_records,
                stats.removed_files,
                rec.checksum_failures,
                store.len()
            ))
        }
        Some((op, _)) => Err(err(format!("unknown store operation: {op} (try: repair)"))),
        None => Err(err("usage: iis store repair <DIR>")),
    }
}

/// Global observability flags, accepted anywhere on the command line.
#[derive(Debug, Default, PartialEq, Eq)]
struct ObsFlags {
    stats: bool,
    trace: Option<String>,
    profile: Option<String>,
    progress: bool,
    serve: Option<String>,
}

/// Removes the global observability flags (`--stats`, `--trace FILE`,
/// `--profile FILE`, `--progress`, `--serve ADDR`; valued flags also in
/// `--flag=VALUE` form) from `args`.
fn strip_obs_flags(args: &[String]) -> Result<(ObsFlags, Vec<String>), CliError> {
    let mut flags = ObsFlags::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut valued = |slot: &mut Option<String>, name: &str| -> Result<bool, CliError> {
            if a == name {
                match it.next() {
                    Some(v) => *slot = Some(v.clone()),
                    None => return Err(err(format!("{name} requires a value"))),
                }
                return Ok(true);
            }
            if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
                *slot = Some(v.to_string());
                return Ok(true);
            }
            Ok(false)
        };
        if a == "--stats" {
            flags.stats = true;
        } else if a == "--progress" {
            flags.progress = true;
        } else if valued(&mut flags.trace, "--trace")?
            || valued(&mut flags.profile, "--profile")?
            || valued(&mut flags.serve, "--serve")?
        {
            // consumed
        } else {
            rest.push(a.clone());
        }
    }
    Ok((flags, rest))
}

/// Dispatches a full argument vector (without the binary name).
///
/// The global flags `--stats` (append a counter/histogram summary table)
/// and `--trace FILE` (write JSON-lines trace events to `FILE`) may appear
/// anywhere and apply to every subcommand.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands or any command failure.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let (obs, args) = strip_obs_flags(args)?;
    // Held across the command (and any unwind) so the trace stream always
    // ends with its close record — see `iis_obs::trace::TraceGuard`.
    let _trace_guard = match &obs.trace {
        Some(path) => Some(
            iis_obs::trace::guard_file(std::path::Path::new(path))
                .map_err(|e| err(format!("cannot open trace file {path}: {e}")))?,
        ),
        None => None,
    };
    if obs.stats || obs.trace.is_some() || obs.serve.is_some() {
        iis_obs::set_enabled(true);
    }
    if obs.profile.is_some() {
        iis_obs::profile::reset();
        iis_obs::profile::set_enabled(true);
    }
    if obs.progress || obs.serve.is_some() {
        iis_obs::progress::reset();
        iis_obs::progress::set_enabled(true);
    }
    let _ticker = obs
        .progress
        .then(|| iis_obs::progress::Ticker::start(std::time::Duration::from_secs(1)));
    let server = match &obs.serve {
        Some(addr) => {
            let server =
                iis_obs::http::serve(addr).map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
            eprintln!("serving on http://{}", server.addr());
            Some(server)
        }
        None => None,
    };
    let before = iis_obs::snapshot();
    let (cmd, rest) = args.split_first().ok_or_else(|| err(USAGE))?;
    let result = match cmd.as_str() {
        "sds" => cmd_sds(rest),
        "homology" => cmd_homology(rest),
        "check-lemmas" => cmd_check_lemmas(rest),
        "solve" => cmd_solve(rest),
        "serve" => cmd_serve(rest),
        "gateway" => cmd_gateway(rest),
        "store" => cmd_store(rest),
        "emulate" => cmd_emulate(rest),
        "bg" => cmd_bg(rest),
        "fuzz" => cmd_fuzz(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command: {other}\n\n{USAGE}"))),
    };
    if let Some(path) = &obs.profile {
        let collapsed = iis_obs::profile::to_collapsed();
        iis_obs::profile::set_enabled(false);
        if let Err(e) = std::fs::write(path, collapsed) {
            if result.is_ok() {
                return Err(err(format!("cannot write profile {path}: {e}")));
            }
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    match result {
        Ok(mut out) => {
            if obs.stats {
                let delta = iis_obs::snapshot().delta_since(&before);
                let table = iis_obs::report::render_table(&delta);
                if !table.is_empty() {
                    out.push_str(&table);
                }
            }
            Ok(out)
        }
        e => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn sds_stats() {
        let out = cmd_sds(&argv("2 1")).unwrap();
        assert!(out.contains("facets:   13"));
        assert!(out.contains("pseudomanifold with boundary: true"));
    }

    #[test]
    fn sds_json_parses_back() {
        let out = cmd_sds(&argv("1 2 --json")).unwrap();
        let sub: iis_topology::Subdivision = iis_obs::Json::parse_as(&out).unwrap();
        assert_eq!(sub.complex().num_facets(), 9);
    }

    #[test]
    fn sds_svg_writes_file() {
        let path = std::env::temp_dir().join("iis_cli_test.svg");
        let mut args = argv("2 1 --svg");
        args.push(path.to_str().unwrap().to_string());
        let out = cmd_sds(&args).unwrap();
        assert!(out.contains("svg written"));
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dims_guard() {
        assert!(cmd_sds(&argv("3 3")).is_err());
        assert!(cmd_sds(&argv("2")).is_err());
        assert!(cmd_sds(&argv("x 1")).is_err());
    }

    #[test]
    fn homology_output() {
        let out = cmd_homology(&argv("2 1")).unwrap();
        assert!(out.contains("hole-free: true"));
        assert!(out.contains("torsion-free: true"));
        assert!(out.contains("[1, 1]"));
    }

    #[test]
    fn check_lemmas_output() {
        let out = cmd_check_lemmas(&argv("2 1")).unwrap();
        assert!(out.contains("Lemma 3.2 ✓"));
        assert!(out.contains("Lemma 3.3 ✓"));
    }

    #[test]
    fn solve_consensus_refuted() {
        let out = cmd_solve(&argv("consensus:1 --max-rounds 2")).unwrap();
        assert!(out.contains("b = 2: no decision map (exact)"));
        assert!(out.contains("no decision map found"));
    }

    #[test]
    fn solve_eps_solvable() {
        let out = cmd_solve(&argv("eps:1:3")).unwrap();
        assert!(out.contains("b = 1: SOLVABLE"));
    }

    #[test]
    fn solve_jobs_flag_does_not_change_output() {
        let seq = cmd_solve(&argv("consensus:1 --max-rounds 2")).unwrap();
        for jobs in ["2", "4"] {
            let par =
                cmd_solve(&argv(&format!("consensus:1 --max-rounds 2 --jobs {jobs}"))).unwrap();
            assert_eq!(seq, par, "--jobs {jobs} must not change verdicts");
        }
        let par = cmd_solve(&argv("eps:1:3 --jobs=3")).unwrap();
        assert!(par.contains("b = 1: SOLVABLE"));
        assert!(cmd_solve(&argv("consensus:1 --jobs nope")).is_err());
    }

    #[test]
    fn solve_kernel_flag_does_not_change_output() {
        let compiled = cmd_solve(&argv("consensus:1 --max-rounds 2 --kernel compiled")).unwrap();
        let reference = cmd_solve(&argv("consensus:1 --max-rounds 2 --kernel reference")).unwrap();
        let default = cmd_solve(&argv("consensus:1 --max-rounds 2")).unwrap();
        assert_eq!(compiled, reference, "--kernel must not change verdicts");
        assert_eq!(compiled, default, "compiled is the default kernel");
        let reference = cmd_solve(&argv("eps:1:3 --kernel=reference")).unwrap();
        assert!(reference.contains("b = 1: SOLVABLE"));
        assert!(cmd_solve(&argv("consensus:1 --kernel turbo")).is_err());
    }

    #[test]
    fn solve_timeout_flag() {
        // a generous timeout changes nothing
        let plain = cmd_solve(&argv("consensus:1 --max-rounds 2")).unwrap();
        let timed = cmd_solve(&argv("consensus:1 --max-rounds 2 --timeout-secs 3600")).unwrap();
        assert_eq!(plain, timed, "an unfired timeout must not change verdicts");
        // a zero timeout on a search that charges nodes reports inconclusive
        let out = cmd_solve(&argv("oneshot:1 --timeout-secs 0")).unwrap();
        assert!(out.contains("TIMED OUT"), "got: {out}");
        assert!(out.contains("inconclusive"), "got: {out}");
        assert!(!out.contains("no decision map found"), "got: {out}");
        assert!(cmd_solve(&argv("consensus:1 --timeout-secs nope")).is_err());
    }

    #[test]
    fn solve_store_flag_cold_then_warm() {
        let dir = std::env::temp_dir().join(format!("iis_cli_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut args = argv("eps:1:3 --max-rounds 2 --store");
        args.push(dir.to_str().unwrap().to_string());
        let cold = cmd_solve(&args).unwrap();
        assert!(cold.contains("b = 1: SOLVABLE"), "{cold}");
        assert!(cold.contains("store: miss — computed and saved"), "{cold}");
        let warm = cmd_solve(&args).unwrap();
        assert!(warm.contains("b = 1: SOLVABLE"), "{warm}");
        assert!(warm.contains("store: hit"), "{warm}");
        // verdict lines agree between the computed and replayed runs
        assert_eq!(
            cold.lines().take(3).collect::<Vec<_>>(),
            warm.lines().take(3).collect::<Vec<_>>()
        );
        // refutations are cached too
        let mut args = argv("consensus:1 --max-rounds 2 --store");
        args.push(dir.to_str().unwrap().to_string());
        let cold = cmd_solve(&args).unwrap();
        assert!(cold.contains("no decision map found up to b = 2"), "{cold}");
        let warm = cmd_solve(&args).unwrap();
        assert!(warm.contains("store: hit"), "{warm}");
        assert!(cmd_solve(&argv("eps:1:3 --store /dev/null/nope")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn solve_task_from_file() {
        let path = std::env::temp_dir().join("iis_cli_task.json");
        let task = iis_tasks::library::trivial(1);
        std::fs::write(&path, task.to_json().to_string()).unwrap();
        let out = cmd_solve(&[format!("@{}", path.display())]).unwrap();
        assert!(out.contains("b = 0: SOLVABLE"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_repair_round_trip() {
        let dir = std::env::temp_dir().join(format!("iis_cli_repair_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        // healthy store: nothing to repair
        {
            let mut store = iis_store::Store::open(&dir).unwrap();
            store.put(1, "alpha").unwrap();
            store.put(2, "beta").unwrap();
        }
        let out = cmd_store(&["repair".into(), dir_s.clone()]).unwrap();
        assert!(out.contains("nothing to repair"), "{out}");
        // corrupt the segment mid-file → quarantine on open → repair
        let seg = dir.join("seg-00000.jsonl");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        let out = dispatch(&["store".into(), "repair".into(), dir_s.clone()]).unwrap();
        assert!(out.contains("writable again"), "{out}");
        // the repaired store reopens healthy and writable
        let mut store = iis_store::Store::open(&dir).unwrap();
        assert!(!store.degraded());
        assert_eq!(store.recovery().quarantined_segments, 0);
        assert!(store.put(3, "gamma").unwrap());
        // flag errors
        assert!(cmd_store(&[]).is_err());
        assert!(cmd_store(&["defrag".into()]).is_err());
        assert!(cmd_store(&["repair".into()]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_task_errors() {
        assert!(parse_task("nope").is_err());
        assert!(parse_task("kset:x:1").is_err());
        assert!(parse_task("@/definitely/missing.json").is_err());
    }

    #[test]
    fn fuzz_sweeps_every_layer() {
        for layer in ["iis", "atomic", "emulation", "bg", "store", "gateway"] {
            let out = cmd_fuzz(&argv(&format!(
                "--layer {layer} --cases 10 --seed 7 --crashes 2 --shrink"
            )))
            .unwrap_or_else(|e| panic!("{layer}: {e}"));
            assert!(out.contains("all oracles passed"), "{layer}: {out}");
            assert!(out.contains("10 cases"), "{layer}: {out}");
        }
    }

    #[test]
    fn fuzz_exhaustive_and_task_modes() {
        let out = cmd_fuzz(&argv("--layer iis --rounds 1 --exhaustive")).unwrap();
        assert!(out.contains("351 cases"), "{out}");
        assert!(out.contains("exhaustive"), "{out}");
        let out = cmd_fuzz(&argv(
            "--layer iis --task oneshot:2 --rounds 1 --cases 15 --crashes 2",
        ))
        .unwrap();
        assert!(out.contains("all oracles passed"), "{out}");
    }

    #[test]
    fn fuzz_flag_errors() {
        assert!(cmd_fuzz(&argv("--cases 5")).is_err());
        assert!(cmd_fuzz(&argv("--layer warp")).is_err());
        assert!(cmd_fuzz(&argv("--layer bg --task oneshot:2")).is_err());
        assert!(cmd_fuzz(&argv("--layer atomic --exhaustive")).is_err());
        assert!(cmd_fuzz(&argv("--layer iis --seed nope")).is_err());
        // an unsolvable task cannot anchor the wait-freedom oracle
        assert!(cmd_fuzz(&argv("--layer iis --task consensus:2 --rounds 1")).is_err());
    }

    #[test]
    fn fuzz_stats_expose_counters() {
        let out = dispatch(&argv("fuzz --layer iis --cases 5 --crashes 1 --stats")).unwrap();
        assert!(out.contains("fuzz.cases"), "{out}");
    }

    #[test]
    fn emulate_all_adversaries() {
        for adv in ["lockstep", "sequential", "rotating", "laggard", "random"] {
            let out = cmd_emulate(&argv(&format!("3 2 --adversary {adv}"))).unwrap();
            assert!(out.contains("completed in"), "{adv}: {out}");
        }
        assert!(cmd_emulate(&argv("3 2 --adversary bogus")).is_err());
        assert!(cmd_emulate(&argv("0 2")).is_err());
    }

    #[test]
    fn bg_runs_and_crashes() {
        let out = cmd_bg(&argv("3 1 2")).unwrap();
        assert!(out.contains("decided: 3/3"));
        let out = cmd_bg(&argv("3 1 2 --crash 0@1")).unwrap();
        assert!(out.contains("decided:"));
        assert!(cmd_bg(&argv("3 1")).is_err());
        assert!(cmd_bg(&argv("3 1 2 --crash zz")).is_err());
    }

    #[test]
    fn flag_value_accepts_equals_form() {
        let args = argv("solve consensus:1 --max-rounds=3");
        assert_eq!(flag_value(&args, "--max-rounds").unwrap(), Some("3"));
        assert_eq!(flag_value(&args, "--budget").unwrap(), None);
    }

    #[test]
    fn flag_value_rejects_trailing_flag() {
        let args = argv("solve consensus:1 --max-rounds");
        let e = flag_value(&args, "--max-rounds").unwrap_err();
        assert!(e.0.contains("--max-rounds requires a value"), "{e}");
        assert!(cmd_solve(&argv("consensus:1 --budget")).is_err());
    }

    #[test]
    fn stats_flag_appends_table() {
        let out = dispatch(&argv("solve kset:2:1 --stats")).unwrap();
        assert!(out.contains("stats"), "{out}");
        // kset:2:1 is refuted by propagation alone, so the nonzero search
        // counters are the propagation ones
        assert!(out.contains("solve.propagations"), "{out}");
        assert!(out.contains("solve.prunes"), "{out}");
        assert!(out.contains("sds.facets"), "{out}");
    }

    #[test]
    fn trace_flag_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join("iis_cli_trace.jsonl");
        let out = dispatch(&[
            "solve".into(),
            "eps:1:3".into(),
            format!("--trace={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("SOLVABLE"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty(), "trace file must not be empty");
        for line in text.lines() {
            let j = iis_obs::Json::parse(line).unwrap();
            assert!(j.get("ts_us").is_some());
            assert!(j.get("kind").is_some());
            assert!(j.get("name").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strip_obs_flags_extracts_globals() {
        let (f, rest) = strip_obs_flags(&argv("sds 2 1 --stats --trace t.jsonl")).unwrap();
        assert!(f.stats);
        assert_eq!(f.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(rest, argv("sds 2 1"));
        assert!(strip_obs_flags(&argv("sds --trace")).is_err());
        let (f, rest) = strip_obs_flags(&argv(
            "solve eps:1:3 --profile p.txt --progress --serve=127.0.0.1:0",
        ))
        .unwrap();
        assert_eq!(f.profile.as_deref(), Some("p.txt"));
        assert!(f.progress);
        assert_eq!(f.serve.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(rest, argv("solve eps:1:3"));
        assert!(strip_obs_flags(&argv("solve --profile")).is_err());
        assert!(strip_obs_flags(&argv("solve --serve")).is_err());
    }

    #[test]
    fn profile_flag_writes_a_parseable_span_tree() {
        let path = std::env::temp_dir().join("iis_cli_profile.folded");
        let out = dispatch(&[
            "solve".into(),
            "eps:1:3".into(),
            "--jobs".into(),
            "2".into(),
            format!("--profile={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("SOLVABLE"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let folded = iis_obs::profile::parse_collapsed(&text).unwrap();
        assert!(!folded.is_empty(), "profile must contain samples:\n{text}");
        // the span tree is at least two levels deep: a round frame with a
        // search/compile/split phase nested under it
        assert!(
            folded.iter().any(|(stack, _)| stack.len() >= 2),
            "expected a nested frame in:\n{text}"
        );
        assert!(
            folded
                .iter()
                .any(|(stack, _)| stack[0].starts_with("round:")),
            "expected a round root frame in:\n{text}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_flag_runs_the_command_with_a_live_endpoint() {
        // 127.0.0.1:0 picks a free port; the server is torn down before
        // dispatch returns, so the command output is unaffected
        let out = dispatch(&argv("solve eps:1:3 --serve 127.0.0.1:0")).unwrap();
        assert!(out.contains("SOLVABLE"), "{out}");
    }

    #[test]
    fn progress_flag_is_accepted() {
        let out = dispatch(&argv("solve eps:1:3 --progress")).unwrap();
        assert!(out.contains("SOLVABLE"), "{out}");
    }

    #[test]
    fn dispatch_routes() {
        assert!(dispatch(&argv("help")).unwrap().contains("USAGE"));
        assert!(dispatch(&argv("nonsense")).is_err());
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&argv("homology 1 1")).is_ok());
    }
}
