//! The `iis serve` solve service: HTTP in front of the solver and the
//! persistent witness store.
//!
//! The transport is `iis_obs::http` (this module only supplies a
//! [`Handler`]); the cache logic is `iis_core::cache`; the persistence is
//! `iis_store::Store`. What lives here is the **service glue**: request
//! parsing, the job registry, request coalescing, and a bounded pool of
//! solve workers so concurrent requests make progress without unbounded
//! thread spawns.
//!
//! Routes:
//!
//! - `POST /solve` — body `{"spec": "consensus:2" | "task": {…},
//!   "max_rounds": B, "budget": N, "jobs": J, "kernel": "compiled",
//!   "wait": true}` (everything but the task optional). Answers from the
//!   store when the record exists (`"cached": true`, counted by
//!   `serve.cache_hits`); otherwise runs the sweep on the worker pool.
//!   With `"wait": false` replies `202 Accepted` with a job id instead of
//!   blocking. A second request for a key already being solved joins the
//!   in-flight job (`serve.coalesced`) rather than solving twice.
//! - `GET /jobs/<id>` — job status plus the result record when done.
//! - `GET /jobs` — every job this process has accepted.
//! - `POST /shutdown` — stop accepting, drain, exit `iis serve`.
//! - the built-ins `GET /metrics`, `/progress`, `/snapshot` stay live.
//!
//! Identical questions get bit-identical answers: records are canonical
//! (see `iis_core::cache`), the store is first-write-wins, and cached
//! replies replay the stored bytes — across restarts too, when `--store`
//! points at the same directory.

use crate::{err, flag_value, parse_kernel, parse_task, CliError};
use iis_core::cache::{cache_key, report_from_json, solve_up_to_cached, SolveCache};
use iis_core::solvability::SolveOptions;
use iis_obs::http::{serve_with, Handler, Request, Response};
use iis_obs::json::FromJson as _;
use iis_obs::{Json, ToJson as _};
use iis_store::Store;
use iis_tasks::Task;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// One accepted solve question and its lifecycle.
struct Job {
    spec: String,
    task: Task,
    max_rounds: usize,
    opts: SolveOptions,
    status: Status,
}

/// Job lifecycle states.
enum Status {
    Queued,
    Running,
    /// `result` is the canonical record; `cached` is whether the worker
    /// found it already stored (e.g. written by a coalesced sibling).
    Done {
        result: Json,
        cached: bool,
    },
    Failed(String),
}

impl Status {
    fn name(&self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Done { .. } => "done",
            Status::Failed(_) => "failed",
        }
    }
}

/// Registry + queue, under one lock; `changed` signals any transition.
struct State {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    /// cache key → id of the queued/running job answering it.
    inflight: HashMap<u64, u64>,
    next_id: u64,
    active: i64,
    shutdown: bool,
}

/// The solve service shared by the HTTP handler and the worker pool.
pub(crate) struct SolveService {
    state: Mutex<State>,
    changed: Condvar,
    store: Mutex<Box<dyn SolveCache + Send>>,
    stop_workers: AtomicBool,
}

/// Locks a `SolveService` store only for the duration of each `get`/`put`,
/// so two workers can solve *different* keys concurrently (the same key is
/// never solved twice — coalescing guarantees that).
struct SharedCache<'a>(&'a Mutex<Box<dyn SolveCache + Send>>);

impl SolveCache for SharedCache<'_> {
    fn get(&mut self, key: u64) -> Option<String> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
    }

    fn put(&mut self, key: u64, value: &str) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .put(key, value);
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The parsed body of a `POST /solve`.
struct SolveRequest {
    spec: String,
    task: Task,
    max_rounds: usize,
    opts: SolveOptions,
    wait: bool,
}

fn parse_solve_request(body: &str) -> Result<SolveRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("bad JSON body: {e}"))?;
    let (spec, task) = match (v.get("spec"), v.get("task")) {
        (Some(s), None) => {
            let s = s.as_str().ok_or("\"spec\" must be a string")?;
            let task = parse_task(s).map_err(|e| e.to_string())?;
            (s.to_string(), task)
        }
        (None, Some(t)) => {
            let task = Task::from_json(t).map_err(|e| format!("bad \"task\": {e}"))?;
            (format!("@inline:{}", task.name()), task)
        }
        (Some(_), Some(_)) => return Err("give \"spec\" or \"task\", not both".to_string()),
        (None, None) => return Err("body needs a \"spec\" or a \"task\"".to_string()),
    };
    let num = |key: &str, default: f64| -> Result<f64, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(default),
            Some(j) => j
                .as_f64()
                .ok_or_else(|| format!("\"{key}\" must be a number")),
        }
    };
    let max_rounds = num("max_rounds", 2.0)? as usize;
    let mut opts = SolveOptions::new()
        .budget(num("budget", 1_000_000.0)? as u64)
        .jobs(num("jobs", 1.0)? as usize);
    if let Some(k) = v.get("kernel") {
        let k = k.as_str().ok_or("\"kernel\" must be a string")?;
        opts = opts.kernel(parse_kernel(k).map_err(|e| e.to_string())?);
    }
    let wait = match v.get("wait") {
        None | Some(Json::Null) => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("\"wait\" must be a boolean".to_string()),
    };
    if max_rounds > 6 {
        return Err("max_rounds > 6 would build an astronomically large complex".to_string());
    }
    Ok(SolveRequest {
        spec,
        task,
        max_rounds,
        opts,
        wait,
    })
}

fn key_hex(key: u64) -> Json {
    Json::Str(format!("{key:016x}"))
}

impl SolveService {
    fn new(store: Box<dyn SolveCache + Send>) -> SolveService {
        SolveService {
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                next_id: 1,
                active: 0,
                shutdown: false,
            }),
            changed: Condvar::new(),
            store: Mutex::new(store),
            stop_workers: AtomicBool::new(false),
        }
    }

    /// The worker-pool loop: pop a queued job, solve it through the store,
    /// publish the result. Exits when `stop_workers` is raised and the
    /// queue is drained.
    fn worker_loop(&self) {
        loop {
            let (id, task, max_rounds, opts) = {
                let mut st = lock(&self.state);
                loop {
                    if let Some(id) = st.queue.pop_front() {
                        let info = {
                            let job = st.jobs.get_mut(&id).expect("queued job exists");
                            job.status = Status::Running;
                            (id, job.task.clone(), job.max_rounds, job.opts)
                        };
                        st.active += 1;
                        iis_obs::metrics::gauge_set("serve.jobs_active", st.active);
                        self.changed.notify_all();
                        break info;
                    }
                    if self.stop_workers.load(Ordering::Acquire) {
                        return;
                    }
                    st = self
                        .changed
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let out = solve_up_to_cached(&task, max_rounds, &opts, &mut SharedCache(&self.store));
            let status =
                if out.report.witness().is_some() || out.report.results().len() == max_rounds + 1 {
                    Status::Done {
                        result: iis_core::cache::report_to_json(&out.report),
                        cached: out.hit,
                    }
                } else {
                    // budget/timeout ran out: inconclusive, nothing stored
                    Status::Failed(format!(
                        "inconclusive: search exhausted at b = {} (raise \"budget\")",
                        out.report.results().len()
                    ))
                };
            let mut st = lock(&self.state);
            let key = cache_key(&task, max_rounds);
            st.inflight.remove(&key);
            if let Some(job) = st.jobs.get_mut(&id) {
                job.status = status;
            }
            st.active -= 1;
            iis_obs::metrics::gauge_set("serve.jobs_active", st.active);
            self.changed.notify_all();
        }
    }

    /// Blocks until job `id` is done or failed, then renders its response.
    fn wait_for(&self, id: u64, key: u64, coalesced: bool) -> Response {
        let mut st = lock(&self.state);
        loop {
            match st.jobs.get(&id).map(|j| &j.status) {
                Some(Status::Done { result, cached }) => {
                    let mut fields = vec![
                        ("cached", Json::Bool(*cached)),
                        ("job", Json::Num(id as f64)),
                        ("key", key_hex(key)),
                        ("result", result.clone()),
                    ];
                    if coalesced {
                        fields.insert(0, ("coalesced", Json::Bool(true)));
                    }
                    return Response::json(Json::obj(fields).to_string());
                }
                Some(Status::Failed(e)) => {
                    return Response::json_status(
                        "500 Internal Server Error",
                        Json::obj([
                            ("error", Json::Str(e.clone())),
                            ("job", Json::Num(id as f64)),
                            ("key", key_hex(key)),
                        ])
                        .to_string(),
                    );
                }
                Some(_) => {
                    st = self
                        .changed
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => return Response::bad_request("job vanished"),
            }
        }
    }

    /// `POST /solve`.
    fn handle_solve(&self, body: &str) -> Response {
        let req = match parse_solve_request(body) {
            Ok(r) => r,
            Err(e) => return Response::bad_request(&e),
        };
        let key = cache_key(&req.task, req.max_rounds);
        // fast path: the store already holds a validated record
        if let Some(text) = SharedCache(&self.store).get(key) {
            if let Ok(json) = Json::parse(&text) {
                if report_from_json(&req.task, &json).is_ok() {
                    iis_obs::metrics::add("serve.cache_hits", 1);
                    return Response::json(
                        Json::obj([
                            ("cached", Json::Bool(true)),
                            ("key", key_hex(key)),
                            ("result", json),
                        ])
                        .to_string(),
                    );
                }
            }
        }
        // coalesce onto an in-flight job for the same key, or enqueue
        let (id, coalesced) = {
            let mut st = lock(&self.state);
            if let Some(&id) = st.inflight.get(&key) {
                iis_obs::metrics::add("serve.coalesced", 1);
                (id, true)
            } else {
                let id = st.next_id;
                st.next_id += 1;
                st.jobs.insert(
                    id,
                    Job {
                        spec: req.spec.clone(),
                        task: req.task.clone(),
                        max_rounds: req.max_rounds,
                        opts: req.opts,
                        status: Status::Queued,
                    },
                );
                st.inflight.insert(key, id);
                st.queue.push_back(id);
                self.changed.notify_all();
                (id, false)
            }
        };
        if req.wait {
            return self.wait_for(id, key, coalesced);
        }
        let st = lock(&self.state);
        let status = st.jobs.get(&id).map_or("queued", |j| j.status.name());
        let mut fields = vec![
            ("job", Json::Num(id as f64)),
            ("status", Json::Str(status.to_string())),
            ("key", key_hex(key)),
        ];
        if coalesced {
            fields.insert(0, ("coalesced", Json::Bool(true)));
        }
        Response::json_status("202 Accepted", Json::obj(fields).to_string())
    }

    fn job_json(id: u64, job: &Job) -> Json {
        let mut fields = vec![
            ("job", Json::Num(id as f64)),
            ("spec", Json::Str(job.spec.clone())),
            ("max_rounds", job.max_rounds.to_json()),
            ("status", Json::Str(job.status.name().to_string())),
        ];
        match &job.status {
            Status::Done { result, cached } => {
                fields.push(("cached", Json::Bool(*cached)));
                fields.push(("result", result.clone()));
            }
            Status::Failed(e) => fields.push(("error", Json::Str(e.clone()))),
            _ => {}
        }
        Json::obj(fields)
    }

    /// `GET /jobs` and `GET /jobs/<id>`.
    fn handle_jobs(&self, path: &str) -> Response {
        let st = lock(&self.state);
        if path == "/jobs" {
            let jobs: Vec<Json> = st
                .jobs
                .iter()
                .map(|(&id, job)| Self::job_json(id, job))
                .collect();
            return Response::json(Json::obj([("jobs", Json::Arr(jobs))]).to_string());
        }
        let id = path.strip_prefix("/jobs/").and_then(|s| s.parse().ok());
        match id.and_then(|id: u64| st.jobs.get(&id).map(|j| (id, j))) {
            Some((id, job)) => Response::json(Self::job_json(id, job).to_string()),
            None => Response::not_found(),
        }
    }

    fn request_shutdown(&self) {
        lock(&self.state).shutdown = true;
        self.changed.notify_all();
    }

    fn handle(&self, req: &Request) -> Option<Response> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/solve") => Some(match req.body_utf8() {
                Some(body) => self.handle_solve(body),
                None => Response::bad_request("body must be UTF-8"),
            }),
            ("POST", "/shutdown") => {
                self.request_shutdown();
                Some(Response::json("{\"ok\": true}".to_string()))
            }
            ("GET", p) if p == "/jobs" || p.starts_with("/jobs/") => Some(self.handle_jobs(p)),
            _ => None,
        }
    }
}

/// `iis serve [--addr A] [--store DIR] [--workers N]` — see [`crate::USAGE`].
///
/// Binds `--addr` (default `127.0.0.1:0`; the bound address is printed to
/// stderr as `serving on http://…`), serves until `POST /shutdown`, then
/// drains and reports a one-line summary.
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments, an unbindable address, or an
/// unopenable store directory.
pub fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let addr = flag_value(args, "--addr")?
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let workers: usize = flag_value(args, "--workers")?
        .unwrap_or("2")
        .parse()
        .map_err(|_| err("bad --workers"))?;
    if workers == 0 || workers > 64 {
        return Err(err("need 1 ≤ --workers ≤ 64"));
    }
    let store_dir = flag_value(args, "--store")?.map(String::from);
    // a service is always observable: /metrics must carry the serve.*
    // counters without requiring a global --stats/--serve flag
    iis_obs::set_enabled(true);
    let store: Box<dyn SolveCache + Send> = match &store_dir {
        Some(dir) => {
            let store =
                Store::open(dir).map_err(|e| err(format!("cannot open store {dir}: {e}")))?;
            let rec = store.recovery();
            if rec.torn_bytes > 0 {
                eprintln!(
                    "store {dir}: recovered {} records, truncated {} torn bytes",
                    rec.records, rec.torn_bytes
                );
            }
            Box::new(store)
        }
        None => Box::new(HashMap::new()),
    };
    // Pay the one-time subdivision-template construction now, not inside
    // the first request (library tasks top out at 3 processes; prewarming a
    // few widths beyond that is microseconds).
    iis_topology::template::prewarm(5);
    let service = Arc::new(SolveService::new(store));
    let mut pool = Vec::new();
    for _ in 0..workers {
        let svc = Arc::clone(&service);
        pool.push(std::thread::spawn(move || svc.worker_loop()));
    }
    let handler: Arc<Handler> = {
        let svc = Arc::clone(&service);
        Arc::new(move |req: &Request| svc.handle(req))
    };
    let server = serve_with(&addr, handler).map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
    eprintln!("serving on http://{}", server.addr());
    // park until POST /shutdown
    {
        let mut st = lock(&service.state);
        while !st.shutdown {
            st = service
                .changed
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    // stop the transport first (in-flight waits still have live workers),
    // then drain and stop the solve pool
    server.shutdown();
    service.stop_workers.store(true, Ordering::Release);
    service.changed.notify_all();
    for t in pool {
        let _ = t.join();
    }
    let st = lock(&service.state);
    let done = st
        .jobs
        .values()
        .filter(|j| matches!(j.status, Status::Done { .. }))
        .count();
    Ok(format!(
        "serve: {} jobs accepted, {done} completed, store = {}\n",
        st.jobs.len(),
        store_dir.as_deref().unwrap_or("(in-memory)")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    /// Runs `iis serve` on a background thread, returns (addr, join).
    fn start(
        extra: &[&str],
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<Result<String, CliError>>,
    ) {
        // capture the bound address via a pre-bound port-0 listener trick:
        // bind a throwaway listener, free its port, reuse the address.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let mut args: Vec<String> = vec!["--addr".into(), addr.to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let handle = std::thread::spawn(move || cmd_serve(&args));
        // wait for the listener to come up
        for _ in 0..200 {
            if TcpStream::connect(addr).is_ok() {
                return (addr, handle);
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("serve did not come up on {addr}");
    }

    fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, Json) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let json = Json::parse(body).unwrap_or(Json::Null);
        (head.to_string(), json)
    }

    fn shutdown(
        addr: std::net::SocketAddr,
        handle: std::thread::JoinHandle<Result<String, CliError>>,
    ) -> String {
        let (head, _) = request(addr, "POST", "/shutdown", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        handle.join().unwrap().unwrap()
    }

    #[test]
    fn solve_twice_second_is_a_cache_hit_with_identical_witness() {
        let (addr, handle) = start(&[]);
        let body = r#"{"spec": "eps:1:3", "max_rounds": 2}"#;
        let (head, first) = request(addr, "POST", "/solve", body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)), "{first:?}");
        let (head, second) = request(addr, "POST", "/solve", body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second:?}");
        // the replayed record is bit-identical, witness included
        assert_eq!(
            first.get("result").unwrap().to_string(),
            second.get("result").unwrap().to_string()
        );
        assert!(first
            .get("result")
            .unwrap()
            .get("witness")
            .is_some_and(|w| *w != Json::Null));
        let summary = shutdown(addr, handle);
        assert!(summary.contains("1 jobs accepted"), "{summary}");
    }

    #[test]
    fn async_jobs_and_coalescing() {
        let (addr, handle) = start(&["--workers", "1"]);
        // park the single worker on a slow-ish solve, then coalesce onto it
        let body = r#"{"spec": "consensus:2", "max_rounds": 1, "wait": false}"#;
        let (head, first) = request(addr, "POST", "/solve", body);
        assert!(head.starts_with("HTTP/1.1 202"), "{head}");
        let id = first.get("job").unwrap().as_f64().unwrap() as u64;
        let (_, again) = request(addr, "POST", "/solve", body);
        // either it coalesced onto the in-flight job, or the job already
        // finished and the store answered
        let coalesced = again.get("coalesced") == Some(&Json::Bool(true));
        let cached = again.get("cached") == Some(&Json::Bool(true));
        assert!(coalesced || cached, "{again:?}");
        if coalesced {
            assert_eq!(again.get("job").unwrap().as_f64().unwrap() as u64, id);
        }
        // poll the job to completion
        let mut done = false;
        for _ in 0..600 {
            let (_, job) = request(addr, "GET", &format!("/jobs/{id}"), "");
            match job.get("status").and_then(|s| s.as_str()) {
                Some("done") => {
                    // consensus among 3 is unsolvable at every round
                    let results = job.get("result").unwrap().get("results").unwrap();
                    assert!(matches!(results, Json::Arr(_)));
                    assert_eq!(job.get("result").unwrap().get("witness"), Some(&Json::Null));
                    done = true;
                    break;
                }
                Some("queued") | Some("running") => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                other => panic!("unexpected status {other:?}: {job:?}"),
            }
        }
        assert!(done, "job never finished");
        let (_, list) = request(addr, "GET", "/jobs", "");
        assert!(matches!(list.get("jobs"), Some(Json::Arr(v)) if !v.is_empty()));
        shutdown(addr, handle);
    }

    #[test]
    fn store_survives_a_restart_with_identical_bytes() {
        let dir = std::env::temp_dir().join(format!("iis_serve_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let body = r#"{"spec": "eps:1:3", "max_rounds": 2}"#;

        let (addr, handle) = start(&["--store", &dir_s]);
        let (_, first) = request(addr, "POST", "/solve", body);
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)), "{first:?}");
        shutdown(addr, handle);

        // a fresh process (same store dir) answers from disk
        let (addr, handle) = start(&["--store", &dir_s]);
        let (_, second) = request(addr, "POST", "/solve", body);
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second:?}");
        assert_eq!(
            first.get("result").unwrap().to_string(),
            second.get("result").unwrap().to_string(),
            "restart must replay bit-identical bytes"
        );
        let summary = shutdown(addr, handle);
        assert!(summary.contains("0 jobs accepted"), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_requests_are_400s() {
        let (addr, handle) = start(&[]);
        for body in [
            "not json",
            "{}",
            r#"{"spec": "nope:9"}"#,
            r#"{"spec": "eps:1:3", "task": {}}"#,
            r#"{"spec": "eps:1:3", "wait": "yes"}"#,
            r#"{"spec": "eps:1:3", "max_rounds": 99}"#,
        ] {
            let (head, _) = request(addr, "POST", "/solve", body);
            assert!(head.starts_with("HTTP/1.1 400"), "{body}: {head}");
        }
        // unknown job
        let (head, _) = request(addr, "GET", "/jobs/999", "");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        // built-ins still answer
        let (head, _) = request(addr, "GET", "/metrics", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        shutdown(addr, handle);
    }

    #[test]
    fn inline_task_bodies_are_accepted() {
        let (addr, handle) = start(&[]);
        let task = iis_tasks::library::trivial(1);
        let body =
            Json::obj([("task", task.to_json()), ("max_rounds", Json::Num(1.0))]).to_string();
        let (head, reply) = request(addr, "POST", "/solve", &body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let results = reply.get("result").unwrap().get("results").unwrap();
        assert_eq!(results.to_string(), "[[0,true]]");
        // the same task by spec hits the same record: content addressing
        let (_, by_spec) = request(
            addr,
            "POST",
            "/solve",
            r#"{"spec": "trivial:1", "max_rounds": 1}"#,
        );
        assert_eq!(
            by_spec.get("cached"),
            Some(&Json::Bool(true)),
            "{by_spec:?}"
        );
        assert_eq!(reply.get("key"), by_spec.get("key"));
        shutdown(addr, handle);
    }

    #[test]
    fn cmd_serve_flag_errors() {
        assert!(cmd_serve(&["--workers".into(), "0".into()]).is_err());
        assert!(cmd_serve(&["--workers".into(), "nope".into()]).is_err());
        assert!(cmd_serve(&["--addr".into(), "256.0.0.1:99999".into()]).is_err());
    }
}
