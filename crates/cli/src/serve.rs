//! The `iis serve` solve service: HTTP in front of the solver and the
//! persistent witness store.
//!
//! The transport is `iis_obs::http` (this module only supplies a
//! [`Handler`]); the cache logic is `iis_core::cache`; the persistence is
//! `iis_store::Store`. What lives here is the **service glue**: request
//! parsing, the job registry, request coalescing, and a bounded pool of
//! solve workers so concurrent requests make progress without unbounded
//! thread spawns.
//!
//! Routes:
//!
//! - `POST /solve` — body `{"spec": "consensus:2" | "task": {…},
//!   "max_rounds": B, "budget": N, "jobs": J, "kernel": "compiled",
//!   "wait": true}` (everything but the task optional). Answers from the
//!   store when the record exists (`"cached": true`, counted by
//!   `serve.cache_hits`); otherwise runs the sweep on the worker pool.
//!   With `"wait": false` replies `202 Accepted` with a job id instead of
//!   blocking. A second request for a key already being solved joins the
//!   in-flight job (`serve.coalesced`) rather than solving twice.
//! - `POST /solve` with `{"questions": [q, …]}` — the **batch** form
//!   (`serve.batch_requests`): every element is a single-question body as
//!   above. All questions are admitted up front (so the worker pool runs
//!   them in parallel and duplicate keys coalesce), then answered in
//!   order as `{"answers": [{"status": N, "body": {…}}, …]}` where each
//!   `body` is exactly the single-question response. The envelope is
//!   `200` even when individual questions fail — per-question statuses
//!   live inside, so one bad question cannot mask five good answers.
//!   This is the route the gateway coalesces same-shard questions onto.
//! - `GET /jobs/<id>` — job status plus the result record when done.
//! - `GET /jobs` — every job this process has accepted.
//! - `GET /healthz` — liveness: `200` while the process answers at all.
//! - `GET /readyz` — readiness: `200` only with live workers, a writable
//!   store, and no shutdown in progress; otherwise `503` with the reasons
//!   (a quarantine-degraded store reports `"degraded": "read-only"` but
//!   keeps `/solve` answering — results are recomputed, not stored).
//! - `POST /shutdown` — stop accepting, drain, exit `iis serve`.
//! - the built-ins `GET /metrics`, `/progress`, `/snapshot` stay live.
//!
//! **Overload and deadlines.** Admission is bounded: at most `--queue N`
//! jobs wait for a worker; past that, `POST /solve` answers `503` with a
//! `Retry-After` header (`serve.rejected`). With `--timeout-secs T`, a
//! waiting `POST /solve` that cannot be answered within `T` seconds gets a
//! structured `504` (`serve.timeouts`) — the job keeps running and can be
//! polled at `/jobs/<id>`; a solve the search itself abandons at the
//! deadline is marked `timed_out`.
//!
//! **Drain.** `POST /shutdown` stops admission (new solves get `503`),
//! lets in-flight and queued jobs finish up to `--drain-secs`, fails
//! whatever is still queued past the deadline, flushes the store, and only
//! then tears the transport down — so an accepted `wait: true` request is
//! answered, not reset.
//!
//! Identical questions get bit-identical answers: records are canonical
//! (see `iis_core::cache`), the store is first-write-wins, and cached
//! replies replay the stored bytes — across restarts too, when `--store`
//! points at the same directory.

use crate::{err, flag_value, parse_kernel, parse_task, CliError};
use iis_core::cache::{cache_key, report_from_json, solve_up_to_cached, SolveCache};
use iis_core::solvability::SolveOptions;
use iis_obs::http::{serve_with, Handler, Request, Response};
use iis_obs::json::FromJson as _;
use iis_obs::{Json, ToJson as _};
use iis_store::Store;
use iis_tasks::Task;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// One accepted solve question and its lifecycle.
struct Job {
    spec: String,
    task: Task,
    max_rounds: usize,
    opts: SolveOptions,
    status: Status,
}

/// Job lifecycle states.
enum Status {
    Queued,
    Running,
    /// `result` is the canonical record; `cached` is whether the worker
    /// found it already stored (e.g. written by a coalesced sibling).
    Done {
        result: Json,
        cached: bool,
    },
    Failed(String),
    /// The search itself gave up at the per-request deadline
    /// (`--timeout-secs`) — distinct from `Failed` so waiters can answer
    /// `504` rather than `500`.
    TimedOut(String),
}

impl Status {
    fn name(&self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Done { .. } => "done",
            Status::Failed(_) => "failed",
            Status::TimedOut(_) => "timed_out",
        }
    }
}

/// Registry + queue, under one lock; `changed` signals any transition.
struct State {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    /// cache key → id of the queued/running job answering it.
    inflight: HashMap<u64, u64>,
    next_id: u64,
    active: i64,
    shutdown: bool,
}

/// The solve service shared by the HTTP handler and the worker pool.
pub(crate) struct SolveService {
    state: Mutex<State>,
    changed: Condvar,
    store: Mutex<Box<dyn SolveCache + Send>>,
    stop_workers: AtomicBool,
    /// Most jobs allowed to *wait* for a worker; past this, `POST /solve`
    /// answers `503` + `Retry-After` instead of queueing unboundedly.
    max_queue: usize,
    /// Per-request solve deadline: bounds both the search wall-clock and
    /// how long a `wait: true` request blocks before a `504`.
    timeout: Option<Duration>,
    /// The store's sticky read-only flag (`None` for the in-memory map,
    /// which cannot degrade) — drives `/readyz`.
    degraded: Option<Arc<AtomicBool>>,
    /// Live solve workers; a panicked worker decrements on unwind, so
    /// `/readyz` notices a dead pool.
    workers_alive: Arc<AtomicUsize>,
}

/// Panic-safe worker liveness: decrements on drop, unwind included.
struct AliveGuard(Arc<AtomicUsize>);

impl AliveGuard {
    fn enroll(counter: &Arc<AtomicUsize>) -> AliveGuard {
        counter.fetch_add(1, Ordering::AcqRel);
        AliveGuard(Arc::clone(counter))
    }
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Locks a `SolveService` store only for the duration of each `get`/`put`,
/// so two workers can solve *different* keys concurrently (the same key is
/// never solved twice — coalescing guarantees that).
struct SharedCache<'a>(&'a Mutex<Box<dyn SolveCache + Send>>);

impl SolveCache for SharedCache<'_> {
    fn get(&mut self, key: u64) -> Option<String> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
    }

    fn put(&mut self, key: u64, value: &str) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .put(key, value);
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The parsed body of a `POST /solve`.
struct SolveRequest {
    spec: String,
    task: Task,
    max_rounds: usize,
    opts: SolveOptions,
    wait: bool,
}

fn parse_solve_request(body: &str) -> Result<SolveRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("bad JSON body: {e}"))?;
    solve_request_from_json(&v)
}

/// [`parse_solve_request`] on an already-parsed value — the batch route
/// hands each array element here directly instead of re-serializing it.
fn solve_request_from_json(v: &Json) -> Result<SolveRequest, String> {
    let (spec, task) = match (v.get("spec"), v.get("task")) {
        (Some(s), None) => {
            let s = s.as_str().ok_or("\"spec\" must be a string")?;
            let task = parse_task(s).map_err(|e| e.to_string())?;
            (s.to_string(), task)
        }
        (None, Some(t)) => {
            let task = Task::from_json(t).map_err(|e| format!("bad \"task\": {e}"))?;
            (format!("@inline:{}", task.name()), task)
        }
        (Some(_), Some(_)) => return Err("give \"spec\" or \"task\", not both".to_string()),
        (None, None) => return Err("body needs a \"spec\" or a \"task\"".to_string()),
    };
    let num = |key: &str, default: f64| -> Result<f64, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(default),
            Some(j) => j
                .as_f64()
                .ok_or_else(|| format!("\"{key}\" must be a number")),
        }
    };
    let max_rounds = num("max_rounds", 2.0)? as usize;
    let mut opts = SolveOptions::new()
        .budget(num("budget", 1_000_000.0)? as u64)
        .jobs(num("jobs", 1.0)? as usize);
    if let Some(k) = v.get("kernel") {
        let k = k.as_str().ok_or("\"kernel\" must be a string")?;
        opts = opts.kernel(parse_kernel(k).map_err(|e| e.to_string())?);
    }
    let wait = match v.get("wait") {
        None | Some(Json::Null) => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("\"wait\" must be a boolean".to_string()),
    };
    if max_rounds > 6 {
        return Err("max_rounds > 6 would build an astronomically large complex".to_string());
    }
    Ok(SolveRequest {
        spec,
        task,
        max_rounds,
        opts,
        wait,
    })
}

fn key_hex(key: u64) -> Json {
    Json::Str(format!("{key:016x}"))
}

/// Most questions accepted in one batch body. Past this the request is
/// malformed rather than shed: a well-behaved client splits its sweep.
const MAX_BATCH: usize = 256;

/// The outcome of admitting one question (without blocking on it).
enum Admission {
    /// Answered on the spot: cache hit, shed load, or a drain 503.
    Ready(Response),
    /// Queued or coalesced; settle it with [`SolveService::respond`].
    Pending { id: u64, key: u64, coalesced: bool },
}

/// One batch-envelope element: the response a question would have gotten
/// standalone, as `{"status": N, "body": {…}}`.
fn answer_json(resp: &Response) -> Json {
    let status: u16 = resp
        .status
        .split(' ')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let body = Json::parse(&resp.body).unwrap_or_else(|_| Json::Str(resp.body.clone()));
    Json::obj([("status", Json::Num(f64::from(status))), ("body", body)])
}

impl SolveService {
    fn new(
        store: Box<dyn SolveCache + Send>,
        max_queue: usize,
        timeout: Option<Duration>,
        degraded: Option<Arc<AtomicBool>>,
    ) -> SolveService {
        // register at zero so the serve counters scrape before first use
        for name in ["serve.rejected", "serve.timeouts", "serve.batch_requests"] {
            iis_obs::metrics::Counter::handle(name);
        }
        SolveService {
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                next_id: 1,
                active: 0,
                shutdown: false,
            }),
            changed: Condvar::new(),
            store: Mutex::new(store),
            stop_workers: AtomicBool::new(false),
            max_queue,
            timeout,
            degraded,
            workers_alive: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The worker-pool loop: pop a queued job, solve it through the store,
    /// publish the result. Exits once `stop_workers` is raised — the drain
    /// phase in [`cmd_serve`] empties the queue *before* raising it, so a
    /// late stop abandons the backlog (which is then failed) rather than
    /// stretching the drain deadline.
    fn worker_loop(&self) {
        let _alive = AliveGuard::enroll(&self.workers_alive);
        loop {
            let (id, task, max_rounds, opts) = {
                let mut st = lock(&self.state);
                loop {
                    if self.stop_workers.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(id) = st.queue.pop_front() {
                        let info = {
                            let job = st.jobs.get_mut(&id).expect("queued job exists");
                            job.status = Status::Running;
                            (id, job.task.clone(), job.max_rounds, job.opts)
                        };
                        st.active += 1;
                        iis_obs::metrics::gauge_set("serve.jobs_active", st.active);
                        self.changed.notify_all();
                        break info;
                    }
                    st = self
                        .changed
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let started = Instant::now();
            let out = solve_up_to_cached(&task, max_rounds, &opts, &mut SharedCache(&self.store));
            let status =
                if out.report.witness().is_some() || out.report.results().len() == max_rounds + 1 {
                    Status::Done {
                        result: iis_core::cache::report_to_json(&out.report),
                        cached: out.hit,
                    }
                } else if self
                    .timeout
                    .is_some_and(|deadline| started.elapsed() >= deadline)
                {
                    // the search abandoned the sweep at the request deadline
                    iis_obs::metrics::add("serve.timeouts", 1);
                    Status::TimedOut(format!(
                        "deadline exceeded: search stopped at b = {} after {:?}",
                        out.report.results().len(),
                        self.timeout.unwrap_or_default()
                    ))
                } else {
                    // budget ran out: inconclusive, nothing stored
                    Status::Failed(format!(
                        "inconclusive: search exhausted at b = {} (raise \"budget\")",
                        out.report.results().len()
                    ))
                };
            let mut st = lock(&self.state);
            let key = cache_key(&task, max_rounds);
            st.inflight.remove(&key);
            if let Some(job) = st.jobs.get_mut(&id) {
                job.status = status;
            }
            st.active -= 1;
            iis_obs::metrics::gauge_set("serve.jobs_active", st.active);
            self.changed.notify_all();
        }
    }

    /// Blocks until job `id` settles, then renders its response. With a
    /// service deadline configured, a job that is still queued or running
    /// when it expires gets a structured `504` — the job itself keeps its
    /// worker and stays pollable at `/jobs/<id>`.
    fn wait_for(&self, id: u64, key: u64, coalesced: bool) -> Response {
        let started = Instant::now();
        let mut st = lock(&self.state);
        loop {
            match st.jobs.get(&id).map(|j| &j.status) {
                Some(Status::Done { result, cached }) => {
                    let mut fields = vec![
                        ("cached", Json::Bool(*cached)),
                        ("job", Json::Num(id as f64)),
                        ("key", key_hex(key)),
                        ("result", result.clone()),
                    ];
                    if coalesced {
                        fields.insert(0, ("coalesced", Json::Bool(true)));
                    }
                    return Response::json(Json::obj(fields).to_string());
                }
                Some(Status::Failed(e)) => {
                    return Response::json_status(
                        "500 Internal Server Error",
                        Json::obj([
                            ("error", Json::Str(e.clone())),
                            ("job", Json::Num(id as f64)),
                            ("key", key_hex(key)),
                        ])
                        .to_string(),
                    );
                }
                Some(Status::TimedOut(e)) => {
                    return Self::gateway_timeout(id, key, e.clone(), "timed_out");
                }
                Some(status) => {
                    let remaining = match self.timeout {
                        None => None,
                        Some(deadline) => match deadline.checked_sub(started.elapsed()) {
                            Some(rem) if !rem.is_zero() => Some(rem),
                            _ => {
                                iis_obs::metrics::add("serve.timeouts", 1);
                                let detail = format!(
                                    "deadline exceeded after {:?}; poll /jobs/{id}",
                                    deadline
                                );
                                return Self::gateway_timeout(id, key, detail, status.name());
                            }
                        },
                    };
                    st = match remaining {
                        None => self
                            .changed
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner),
                        Some(rem) => {
                            self.changed
                                .wait_timeout(st, rem)
                                .unwrap_or_else(PoisonError::into_inner)
                                .0
                        }
                    };
                }
                None => return Response::bad_request("job vanished"),
            }
        }
    }

    fn gateway_timeout(id: u64, key: u64, error: String, status: &str) -> Response {
        Response::json_status(
            "504 Gateway Timeout",
            Json::obj([
                ("error", Json::Str(error)),
                ("job", Json::Num(id as f64)),
                ("key", key_hex(key)),
                ("status", Json::Str(status.to_string())),
            ])
            .to_string(),
        )
    }

    /// Parses one question body, applying the service-wide deadline.
    fn prepare(&self, body: &str) -> Result<SolveRequest, Response> {
        let req = parse_solve_request(body).map_err(|e| Response::bad_request(&e))?;
        Ok(self.apply_deadline(req))
    }

    fn apply_deadline(&self, mut req: SolveRequest) -> SolveRequest {
        if let Some(deadline) = self.timeout {
            // the search honors the request deadline too, so a worker is
            // never pinned long past the 504 its waiter already received
            req.opts = req.opts.timeout(deadline);
        }
        req
    }

    /// Admits one parsed question: answers immediately from the store,
    /// joins an in-flight job, or enqueues a new one. Never blocks — the
    /// batch route admits *everything* before waiting on *anything*, so a
    /// batch keeps the whole worker pool busy.
    fn admit(&self, req: &SolveRequest) -> Admission {
        let key = cache_key(&req.task, req.max_rounds);
        // fast path: the store already holds a validated record
        if let Some(text) = SharedCache(&self.store).get(key) {
            if let Ok(json) = Json::parse(&text) {
                if report_from_json(&req.task, &json).is_ok() {
                    iis_obs::metrics::add("serve.cache_hits", 1);
                    return Admission::Ready(Response::json(
                        Json::obj([
                            ("cached", Json::Bool(true)),
                            ("key", key_hex(key)),
                            ("result", json),
                        ])
                        .to_string(),
                    ));
                }
            }
        }
        // coalesce onto an in-flight job for the same key, or enqueue
        let mut st = lock(&self.state);
        if st.shutdown {
            return Admission::Ready(Response::json_status(
                "503 Service Unavailable",
                Json::obj([("error", Json::Str("shutting down".to_string()))]).to_string(),
            ));
        }
        if let Some(&id) = st.inflight.get(&key) {
            iis_obs::metrics::add("serve.coalesced", 1);
            return Admission::Pending {
                id,
                key,
                coalesced: true,
            };
        }
        if st.queue.len() >= self.max_queue {
            // bounded admission: shed load instead of queueing
            // unboundedly; the client is told when to come back
            iis_obs::metrics::add("serve.rejected", 1);
            return Admission::Ready(
                Response::json_status(
                    "503 Service Unavailable",
                    Json::obj([
                        ("error", Json::Str("queue full".to_string())),
                        ("queue", self.max_queue.to_json()),
                    ])
                    .to_string(),
                )
                .with_header("Retry-After", "1"),
            );
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            Job {
                spec: req.spec.clone(),
                task: req.task.clone(),
                max_rounds: req.max_rounds,
                opts: req.opts,
                status: Status::Queued,
            },
        );
        st.inflight.insert(key, id);
        st.queue.push_back(id);
        self.changed.notify_all();
        Admission::Pending {
            id,
            key,
            coalesced: false,
        }
    }

    /// Settles an admitted question into its response: block on the job
    /// (`wait: true`, the default) or acknowledge with a `202`.
    fn respond(&self, wait: bool, id: u64, key: u64, coalesced: bool) -> Response {
        if wait {
            return self.wait_for(id, key, coalesced);
        }
        let st = lock(&self.state);
        let status = st.jobs.get(&id).map_or("queued", |j| j.status.name());
        let mut fields = vec![
            ("job", Json::Num(id as f64)),
            ("status", Json::Str(status.to_string())),
            ("key", key_hex(key)),
        ];
        if coalesced {
            fields.insert(0, ("coalesced", Json::Bool(true)));
        }
        Response::json_status("202 Accepted", Json::obj(fields).to_string())
    }

    /// `POST /solve`: the batch form when the body carries `"questions"`,
    /// the single-question form otherwise.
    fn handle_solve(&self, body: &str) -> Response {
        if let Ok(v) = Json::parse(body) {
            match v.get("questions") {
                Some(Json::Arr(questions)) => return self.handle_batch(questions),
                Some(_) => return Response::bad_request("\"questions\" must be an array"),
                None => {}
            }
        }
        match self.prepare(body) {
            Err(resp) => resp,
            Ok(req) => match self.admit(&req) {
                Admission::Ready(resp) => resp,
                Admission::Pending { id, key, coalesced } => {
                    self.respond(req.wait, id, key, coalesced)
                }
            },
        }
    }

    /// The batch form: admit every question first (pass 1), so the worker
    /// pool solves them in parallel and duplicate keys coalesce, then
    /// settle them in order (pass 2). One answer per question, in the
    /// question's position; the envelope itself is always `200`.
    fn handle_batch(&self, questions: &[Json]) -> Response {
        if questions.len() > MAX_BATCH {
            return Response::bad_request(&format!(
                "batch of {} questions exceeds the {MAX_BATCH}-question cap",
                questions.len()
            ));
        }
        iis_obs::metrics::add("serve.batch_requests", 1);
        let admitted: Vec<(bool, Admission)> = questions
            .iter()
            .map(|q| {
                let prepared = solve_request_from_json(q)
                    .map_err(|e| Response::bad_request(&e))
                    .map(|req| self.apply_deadline(req));
                match prepared {
                    Ok(req) => {
                        let wait = req.wait;
                        (wait, self.admit(&req))
                    }
                    Err(resp) => (true, Admission::Ready(resp)),
                }
            })
            .collect();
        let answers: Vec<Json> = admitted
            .into_iter()
            .map(|(wait, adm)| {
                let resp = match adm {
                    Admission::Ready(resp) => resp,
                    Admission::Pending { id, key, coalesced } => {
                        self.respond(wait, id, key, coalesced)
                    }
                };
                answer_json(&resp)
            })
            .collect();
        Response::json(Json::obj([("answers", Json::Arr(answers))]).to_string())
    }

    fn job_json(id: u64, job: &Job) -> Json {
        let mut fields = vec![
            ("job", Json::Num(id as f64)),
            ("spec", Json::Str(job.spec.clone())),
            ("max_rounds", job.max_rounds.to_json()),
            ("status", Json::Str(job.status.name().to_string())),
        ];
        match &job.status {
            Status::Done { result, cached } => {
                fields.push(("cached", Json::Bool(*cached)));
                fields.push(("result", result.clone()));
            }
            Status::Failed(e) | Status::TimedOut(e) => {
                fields.push(("error", Json::Str(e.clone())));
            }
            _ => {}
        }
        Json::obj(fields)
    }

    /// `GET /jobs` and `GET /jobs/<id>`.
    fn handle_jobs(&self, path: &str) -> Response {
        let st = lock(&self.state);
        if path == "/jobs" {
            let jobs: Vec<Json> = st
                .jobs
                .iter()
                .map(|(&id, job)| Self::job_json(id, job))
                .collect();
            return Response::json(Json::obj([("jobs", Json::Arr(jobs))]).to_string());
        }
        let id = path.strip_prefix("/jobs/").and_then(|s| s.parse().ok());
        match id.and_then(|id: u64| st.jobs.get(&id).map(|j| (id, j))) {
            Some((id, job)) => Response::json(Self::job_json(id, job).to_string()),
            None => Response::not_found(),
        }
    }

    fn request_shutdown(&self) {
        lock(&self.state).shutdown = true;
        self.changed.notify_all();
    }

    /// `GET /readyz`: `200` only when the service can actually take work —
    /// live workers, a writable store, no drain in progress. The body says
    /// why not, so a load balancer's probe log is diagnosable.
    fn handle_ready(&self) -> Response {
        let workers = self.workers_alive.load(Ordering::Acquire);
        let degraded = self
            .degraded
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Acquire));
        let (draining, queued) = {
            let st = lock(&self.state);
            (st.shutdown, st.queue.len())
        };
        let ready = workers > 0 && !degraded && !draining;
        let mut fields = vec![
            ("ready", Json::Bool(ready)),
            ("workers", workers.to_json()),
            ("queued", queued.to_json()),
        ];
        if degraded {
            fields.push(("degraded", Json::Str("read-only".to_string())));
        }
        if draining {
            fields.push(("draining", Json::Bool(true)));
        }
        let body = Json::obj(fields).to_string();
        if ready {
            Response::json(body)
        } else {
            Response::json_status("503 Service Unavailable", body)
        }
    }

    fn handle(&self, req: &Request) -> Option<Response> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/solve") => Some(match req.body_utf8() {
                Some(body) => self.handle_solve(body),
                None => Response::bad_request("body must be UTF-8"),
            }),
            ("POST", "/shutdown") => {
                self.request_shutdown();
                Some(Response::json("{\"ok\": true}".to_string()))
            }
            ("GET", "/healthz") => Some(Response::json("{\"ok\": true}".to_string())),
            ("GET", "/readyz") => Some(self.handle_ready()),
            ("GET", p) if p == "/jobs" || p.starts_with("/jobs/") => Some(self.handle_jobs(p)),
            // wrong method on a route this service does own: 405 + Allow
            (_, "/solve") | (_, "/shutdown") => Some(Response::method_not_allowed("POST")),
            (_, "/healthz") | (_, "/readyz") => Some(Response::method_not_allowed("GET")),
            (_, p) if p == "/jobs" || p.starts_with("/jobs/") => {
                Some(Response::method_not_allowed("GET"))
            }
            _ => None,
        }
    }
}

/// `iis serve [--addr A] [--store DIR] [--workers N] [--queue N]
/// [--timeout-secs T] [--drain-secs S]` — see [`crate::USAGE`].
///
/// Binds `--addr` (default `127.0.0.1:0`; the bound address is printed to
/// stderr as `serving on http://…`), serves until `POST /shutdown`, then
/// drains gracefully (admission stops, in-flight and queued jobs get up to
/// `--drain-secs` to finish, the store is flushed, the transport goes down
/// last) and reports a one-line summary.
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments, an unbindable address, or an
/// unopenable store directory.
pub fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let addr = flag_value(args, "--addr")?
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let workers: usize = flag_value(args, "--workers")?
        .unwrap_or("2")
        .parse()
        .map_err(|_| err("bad --workers"))?;
    if workers == 0 || workers > 64 {
        return Err(err("need 1 ≤ --workers ≤ 64"));
    }
    let max_queue: usize = flag_value(args, "--queue")?
        .unwrap_or("64")
        .parse()
        .map_err(|_| err("bad --queue"))?;
    if max_queue == 0 || max_queue > 4096 {
        return Err(err("need 1 ≤ --queue ≤ 4096"));
    }
    let timeout: Option<Duration> = match flag_value(args, "--timeout-secs")? {
        Some(t) => Some(Duration::from_secs(
            t.parse().map_err(|_| err("bad --timeout-secs"))?,
        )),
        None => None,
    };
    let drain: Duration = Duration::from_secs(
        flag_value(args, "--drain-secs")?
            .unwrap_or("10")
            .parse()
            .map_err(|_| err("bad --drain-secs"))?,
    );
    let store_dir = flag_value(args, "--store")?.map(String::from);
    // a service is always observable: /metrics must carry the serve.*
    // counters without requiring a global --stats/--serve flag
    iis_obs::set_enabled(true);
    let mut degraded = None;
    let store: Box<dyn SolveCache + Send> = match &store_dir {
        Some(dir) => {
            let store =
                Store::open(dir).map_err(|e| err(format!("cannot open store {dir}: {e}")))?;
            let rec = store.recovery();
            if rec.torn_bytes > 0 {
                eprintln!(
                    "store {dir}: recovered {} records, truncated {} torn bytes",
                    rec.records, rec.torn_bytes
                );
            }
            if rec.quarantined_segments > 0 {
                eprintln!(
                    "store {dir}: {} corrupt segments quarantined ({} checksum failures, \
                     {} records recovered) — serving read-only; /readyz reports degraded",
                    rec.quarantined_segments, rec.checksum_failures, rec.recovered_records
                );
            }
            degraded = Some(store.degraded_flag());
            Box::new(store)
        }
        None => Box::new(HashMap::new()),
    };
    // Pay the one-time subdivision-template construction now, not inside
    // the first request (library tasks top out at 3 processes; prewarming a
    // few widths beyond that is microseconds).
    iis_topology::template::prewarm(5);
    let service = Arc::new(SolveService::new(store, max_queue, timeout, degraded));
    let mut pool = Vec::new();
    for _ in 0..workers {
        let svc = Arc::clone(&service);
        pool.push(std::thread::spawn(move || svc.worker_loop()));
    }
    let handler: Arc<Handler> = {
        let svc = Arc::clone(&service);
        Arc::new(move |req: &Request| svc.handle(req))
    };
    let server = serve_with(&addr, handler).map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
    eprintln!("serving on http://{}", server.addr());
    // park until POST /shutdown
    {
        let mut st = lock(&service.state);
        while !st.shutdown {
            st = service
                .changed
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    // Graceful drain. Admission already answers 503 (handle_solve checks
    // `shutdown`); give in-flight and queued jobs up to the drain deadline
    // to settle while the transport stays up, so accepted `wait: true`
    // requests are answered rather than reset.
    let drain_started = Instant::now();
    {
        let mut st = lock(&service.state);
        while !st.queue.is_empty() || st.active > 0 {
            let Some(remaining) = drain.checked_sub(drain_started.elapsed()) else {
                break;
            };
            st = service
                .changed
                .wait_timeout(st, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
    // Stop the pool (a worker mid-solve finishes its current job), fail
    // whatever is still queued past the deadline so its waiters unblock,
    // flush the store, and only then tear the transport down.
    service.stop_workers.store(true, Ordering::Release);
    service.changed.notify_all();
    for t in pool {
        let _ = t.join();
    }
    {
        let mut st = lock(&service.state);
        let abandoned: Vec<u64> = st.queue.drain(..).collect();
        for id in abandoned {
            if let Some(job) = st.jobs.get_mut(&id) {
                job.status =
                    Status::Failed("server shut down before the job could run".to_string());
            }
        }
        st.inflight.clear();
        service.changed.notify_all();
    }
    lock(&service.store).flush();
    server.shutdown();
    let st = lock(&service.state);
    let done = st
        .jobs
        .values()
        .filter(|j| matches!(j.status, Status::Done { .. }))
        .count();
    Ok(format!(
        "serve: {} jobs accepted, {done} completed, store = {}\n",
        st.jobs.len(),
        store_dir.as_deref().unwrap_or("(in-memory)")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    /// Runs `iis serve` on a background thread, returns (addr, join).
    fn start(
        extra: &[&str],
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<Result<String, CliError>>,
    ) {
        // capture the bound address via a pre-bound port-0 listener trick:
        // bind a throwaway listener, free its port, reuse the address.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let mut args: Vec<String> = vec!["--addr".into(), addr.to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let handle = std::thread::spawn(move || cmd_serve(&args));
        // wait for the listener to come up
        for _ in 0..200 {
            if TcpStream::connect(addr).is_ok() {
                return (addr, handle);
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("serve did not come up on {addr}");
    }

    fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, Json) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let json = Json::parse(body).unwrap_or(Json::Null);
        (head.to_string(), json)
    }

    fn shutdown(
        addr: std::net::SocketAddr,
        handle: std::thread::JoinHandle<Result<String, CliError>>,
    ) -> String {
        let (head, _) = request(addr, "POST", "/shutdown", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        handle.join().unwrap().unwrap()
    }

    #[test]
    fn solve_twice_second_is_a_cache_hit_with_identical_witness() {
        let (addr, handle) = start(&[]);
        let body = r#"{"spec": "eps:1:3", "max_rounds": 2}"#;
        let (head, first) = request(addr, "POST", "/solve", body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)), "{first:?}");
        let (head, second) = request(addr, "POST", "/solve", body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second:?}");
        // the replayed record is bit-identical, witness included
        assert_eq!(
            first.get("result").unwrap().to_string(),
            second.get("result").unwrap().to_string()
        );
        assert!(first
            .get("result")
            .unwrap()
            .get("witness")
            .is_some_and(|w| *w != Json::Null));
        let summary = shutdown(addr, handle);
        assert!(summary.contains("1 jobs accepted"), "{summary}");
    }

    #[test]
    fn async_jobs_and_coalescing() {
        let (addr, handle) = start(&["--workers", "1"]);
        // park the single worker on a slow-ish solve, then coalesce onto it
        let body = r#"{"spec": "consensus:2", "max_rounds": 1, "wait": false}"#;
        let (head, first) = request(addr, "POST", "/solve", body);
        assert!(head.starts_with("HTTP/1.1 202"), "{head}");
        let id = first.get("job").unwrap().as_f64().unwrap() as u64;
        let (_, again) = request(addr, "POST", "/solve", body);
        // either it coalesced onto the in-flight job, or the job already
        // finished and the store answered
        let coalesced = again.get("coalesced") == Some(&Json::Bool(true));
        let cached = again.get("cached") == Some(&Json::Bool(true));
        assert!(coalesced || cached, "{again:?}");
        if coalesced {
            assert_eq!(again.get("job").unwrap().as_f64().unwrap() as u64, id);
        }
        // poll the job to completion
        let mut done = false;
        for _ in 0..600 {
            let (_, job) = request(addr, "GET", &format!("/jobs/{id}"), "");
            match job.get("status").and_then(|s| s.as_str()) {
                Some("done") => {
                    // consensus among 3 is unsolvable at every round
                    let results = job.get("result").unwrap().get("results").unwrap();
                    assert!(matches!(results, Json::Arr(_)));
                    assert_eq!(job.get("result").unwrap().get("witness"), Some(&Json::Null));
                    done = true;
                    break;
                }
                Some("queued") | Some("running") => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                other => panic!("unexpected status {other:?}: {job:?}"),
            }
        }
        assert!(done, "job never finished");
        let (_, list) = request(addr, "GET", "/jobs", "");
        assert!(matches!(list.get("jobs"), Some(Json::Arr(v)) if !v.is_empty()));
        shutdown(addr, handle);
    }

    #[test]
    fn store_survives_a_restart_with_identical_bytes() {
        let dir = std::env::temp_dir().join(format!("iis_serve_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let body = r#"{"spec": "eps:1:3", "max_rounds": 2}"#;

        let (addr, handle) = start(&["--store", &dir_s]);
        let (_, first) = request(addr, "POST", "/solve", body);
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)), "{first:?}");
        shutdown(addr, handle);

        // a fresh process (same store dir) answers from disk
        let (addr, handle) = start(&["--store", &dir_s]);
        let (_, second) = request(addr, "POST", "/solve", body);
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second:?}");
        assert_eq!(
            first.get("result").unwrap().to_string(),
            second.get("result").unwrap().to_string(),
            "restart must replay bit-identical bytes"
        );
        let summary = shutdown(addr, handle);
        assert!(summary.contains("0 jobs accepted"), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_requests_are_400s() {
        let (addr, handle) = start(&[]);
        for body in [
            "not json",
            "{}",
            r#"{"spec": "nope:9"}"#,
            r#"{"spec": "eps:1:3", "task": {}}"#,
            r#"{"spec": "eps:1:3", "wait": "yes"}"#,
            r#"{"spec": "eps:1:3", "max_rounds": 99}"#,
        ] {
            let (head, _) = request(addr, "POST", "/solve", body);
            assert!(head.starts_with("HTTP/1.1 400"), "{body}: {head}");
        }
        // unknown job
        let (head, _) = request(addr, "GET", "/jobs/999", "");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        // built-ins still answer
        let (head, _) = request(addr, "GET", "/metrics", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        shutdown(addr, handle);
    }

    #[test]
    fn inline_task_bodies_are_accepted() {
        let (addr, handle) = start(&[]);
        let task = iis_tasks::library::trivial(1);
        let body =
            Json::obj([("task", task.to_json()), ("max_rounds", Json::Num(1.0))]).to_string();
        let (head, reply) = request(addr, "POST", "/solve", &body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let results = reply.get("result").unwrap().get("results").unwrap();
        assert_eq!(results.to_string(), "[[0,true]]");
        // the same task by spec hits the same record: content addressing
        let (_, by_spec) = request(
            addr,
            "POST",
            "/solve",
            r#"{"spec": "trivial:1", "max_rounds": 1}"#,
        );
        assert_eq!(
            by_spec.get("cached"),
            Some(&Json::Bool(true)),
            "{by_spec:?}"
        );
        assert_eq!(reply.get("key"), by_spec.get("key"));
        shutdown(addr, handle);
    }

    #[test]
    fn batch_solve_answers_in_order_with_per_question_statuses() {
        let (addr, handle) = start(&["--workers", "2"]);
        let body = r#"{"questions": [
            {"spec": "eps:1:3", "max_rounds": 2},
            {"spec": "trivial:1", "max_rounds": 1},
            {"spec": "nope:9"},
            {"spec": "eps:1:3", "max_rounds": 2}
        ]}"#;
        let (head, reply) = request(addr, "POST", "/solve", body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let Some(Json::Arr(answers)) = reply.get("answers") else {
            panic!("{reply:?}");
        };
        assert_eq!(answers.len(), 4);
        let status = |i: usize| answers[i].get("status").unwrap().as_f64().unwrap() as u16;
        assert_eq!(
            (status(0), status(1), status(2), status(3)),
            (200, 200, 400, 200)
        );
        assert!(
            answers[2]
                .get("body")
                .unwrap()
                .to_string()
                .contains("error"),
            "{:?}",
            answers[2]
        );
        // questions 0 and 3 share a key: one solved, the other coalesced
        // onto it (or answered from the store) — byte-identical either way
        let result = |i: usize| {
            answers[i]
                .get("body")
                .unwrap()
                .get("result")
                .unwrap()
                .to_string()
        };
        assert_eq!(result(0), result(3));
        // a second batch replays everything from the store
        let (_, again) = request(addr, "POST", "/solve", body);
        let Some(Json::Arr(again)) = again.get("answers") else {
            panic!();
        };
        assert_eq!(
            again[0].get("body").unwrap().get("cached"),
            Some(&Json::Bool(true)),
            "{:?}",
            again[0]
        );
        assert_eq!(
            result(0),
            again[0]
                .get("body")
                .unwrap()
                .get("result")
                .unwrap()
                .to_string()
        );
        shutdown(addr, handle);
    }

    #[test]
    fn batch_response_schema_matches_golden() {
        let (addr, handle) = start(&[]);
        let (_, reply) = request(
            addr,
            "POST",
            "/solve",
            r#"{"questions": [{"spec": "trivial:1", "max_rounds": 1}]}"#,
        );
        // the batch schema is a wire contract (the gateway re-parses it):
        // envelope keys, then element keys, then a fresh-solve body's keys,
        // in writing order, against the committed golden file
        let keys_of = |j: &Json| -> Vec<String> {
            match j {
                Json::Obj(members) => members.iter().map(|(k, _)| k.clone()).collect(),
                other => panic!("expected an object, got {other:?}"),
            }
        };
        let Some(Json::Arr(answers)) = reply.get("answers") else {
            panic!("{reply:?}");
        };
        let mut observed = keys_of(&reply);
        observed.extend(keys_of(&answers[0]));
        observed.extend(keys_of(answers[0].get("body").unwrap()));
        let golden: Vec<&str> = include_str!("../tests/golden/batch_keys.txt")
            .lines()
            .filter(|l| !l.is_empty())
            .collect();
        assert_eq!(observed, golden, "committed batch schema drifted");
        shutdown(addr, handle);
    }

    #[test]
    fn oversized_batch_body_is_rejected_from_its_declared_length() {
        let (addr, handle) = start(&[]);
        // declare a body over the 1 MiB default max_body but send none:
        // the server must answer from the header alone
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            2 * 1024 * 1024
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("body exceeds maximum size"), "{text}");
        shutdown(addr, handle);
    }

    #[test]
    fn batch_cap_and_empty_batch() {
        let svc = stalled_service(4096, None);
        let r = svc.handle_solve(r#"{"questions": []}"#);
        assert_eq!(r.status, "200 OK");
        assert_eq!(r.body, "{\"answers\":[]}");
        let r = svc.handle_solve(r#"{"questions": 3}"#);
        assert_eq!(r.status, "400 Bad Request");
        let many: Vec<String> = (0..=MAX_BATCH)
            .map(|_| r#"{"spec": "trivial:1", "wait": false}"#.to_string())
            .collect();
        let r = svc.handle_solve(&format!("{{\"questions\": [{}]}}", many.join(",")));
        assert_eq!(r.status, "400 Bad Request");
        assert!(r.body.contains("cap"), "{}", r.body);
        // non-waiting questions come back as 202 elements in the envelope
        let r = svc.handle_solve(
            r#"{"questions": [{"spec": "trivial:1", "wait": false},
                              {"spec": "trivial:1", "wait": false}]}"#,
        );
        assert_eq!(r.status, "200 OK");
        let v = Json::parse(&r.body).unwrap();
        let Some(Json::Arr(answers)) = v.get("answers") else {
            panic!("{}", r.body);
        };
        assert_eq!(answers[0].get("status"), Some(&Json::Num(202.0)));
        // the duplicate key coalesced at admission, not a second job
        assert_eq!(
            answers[1].get("body").unwrap().get("coalesced"),
            Some(&Json::Bool(true)),
            "{:?}",
            answers[1]
        );
    }

    #[test]
    fn cmd_serve_flag_errors() {
        assert!(cmd_serve(&["--workers".into(), "0".into()]).is_err());
        assert!(cmd_serve(&["--workers".into(), "nope".into()]).is_err());
        assert!(cmd_serve(&["--addr".into(), "256.0.0.1:99999".into()]).is_err());
        assert!(cmd_serve(&["--queue".into(), "0".into()]).is_err());
        assert!(cmd_serve(&["--queue".into(), "nope".into()]).is_err());
        assert!(cmd_serve(&["--timeout-secs".into(), "nope".into()]).is_err());
        assert!(cmd_serve(&["--drain-secs".into(), "nope".into()]).is_err());
    }

    /// A service with no worker pool: jobs queue forever, which makes
    /// admission and deadline behavior deterministic to test.
    fn stalled_service(max_queue: usize, timeout: Option<Duration>) -> SolveService {
        SolveService::new(Box::new(HashMap::new()), max_queue, timeout, None)
    }

    #[test]
    fn full_queue_answers_503_with_retry_after() {
        let svc = stalled_service(1, None);
        // first job occupies the whole queue (no worker ever pops it)
        let r = svc.handle_solve(r#"{"spec": "trivial:1", "wait": false}"#);
        assert_eq!(r.status, "202 Accepted");
        // a different key is shed with 503 + Retry-After
        let r = svc.handle_solve(r#"{"spec": "trivial:2", "wait": false}"#);
        assert_eq!(r.status, "503 Service Unavailable");
        assert!(r.headers.iter().any(|(n, _)| *n == "Retry-After"), "{r:?}");
        assert!(r.body.contains("queue full"), "{}", r.body);
        // the same key coalesces instead of being rejected
        let r = svc.handle_solve(r#"{"spec": "trivial:1", "wait": false}"#);
        assert_eq!(r.status, "202 Accepted");
        assert!(r.body.contains("coalesced"), "{}", r.body);
    }

    #[test]
    fn waited_solve_times_out_with_a_structured_504() {
        let svc = stalled_service(8, Some(Duration::from_millis(80)));
        let start = Instant::now();
        let r = svc.handle_solve(r#"{"spec": "trivial:1", "max_rounds": 1}"#);
        assert_eq!(r.status, "504 Gateway Timeout");
        assert!(start.elapsed() >= Duration::from_millis(80));
        let v = Json::parse(&r.body).unwrap();
        assert!(matches!(v.get("error"), Some(Json::Str(_))), "{}", r.body);
        // the job is still pollable after the waiter gave up
        let id = v.get("job").unwrap().as_f64().unwrap() as u64;
        let r = svc.handle_jobs(&format!("/jobs/{id}"));
        assert_eq!(r.status, "200 OK");
        assert!(r.body.contains("queued"), "{}", r.body);
    }

    #[test]
    fn draining_service_rejects_new_solves() {
        let svc = stalled_service(8, None);
        svc.request_shutdown();
        let r = svc.handle_solve(r#"{"spec": "trivial:1"}"#);
        assert_eq!(r.status, "503 Service Unavailable");
        assert!(r.body.contains("shutting down"), "{}", r.body);
        // and /readyz reports the drain
        let r = svc.handle_ready();
        assert_eq!(r.status, "503 Service Unavailable");
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("draining"), Some(&Json::Bool(true)), "{}", r.body);
    }

    #[test]
    fn service_routes_reject_wrong_methods_with_allow() {
        let svc = stalled_service(8, None);
        for (method, path, allow) in [
            ("GET", "/solve", "POST"),
            ("GET", "/shutdown", "POST"),
            ("DELETE", "/jobs/1", "GET"),
            ("POST", "/healthz", "GET"),
            ("POST", "/readyz", "GET"),
        ] {
            let req = Request {
                method: method.to_string(),
                path: path.to_string(),
                body: Vec::new(),
            };
            let r = svc.handle(&req).expect("service owns the route");
            assert_eq!(r.status, "405 Method Not Allowed", "{method} {path}");
            assert_eq!(
                r.headers.iter().find(|(n, _)| *n == "Allow"),
                Some(&("Allow", allow.to_string())),
                "{method} {path}"
            );
        }
    }

    #[test]
    fn health_and_readiness_over_http() {
        let (addr, handle) = start(&["--workers", "1"]);
        let (head, body) = request(addr, "GET", "/healthz", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        let (head, body) = request(addr, "GET", "/readyz", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body.get("ready"), Some(&Json::Bool(true)), "{body:?}");
        assert_eq!(body.get("workers"), Some(&Json::Num(1.0)), "{body:?}");
        shutdown(addr, handle);
    }

    #[test]
    fn shutdown_drains_accepted_jobs_before_exiting() {
        let (addr, handle) = start(&["--workers", "1"]);
        // accept a job, then immediately ask for shutdown: the drain phase
        // must let it finish (and be recorded) before the process exits
        let (head, _) = request(
            addr,
            "POST",
            "/solve",
            r#"{"spec": "eps:1:3", "max_rounds": 2, "wait": false}"#,
        );
        assert!(head.starts_with("HTTP/1.1 202"), "{head}");
        let summary = shutdown(addr, handle);
        assert!(
            summary.contains("1 jobs accepted, 1 completed"),
            "{summary}"
        );
    }

    #[test]
    fn degraded_store_reports_on_readyz_but_solves_cold() {
        let dir = std::env::temp_dir().join(format!("iis_serve_degraded_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();

        // fill the store, then corrupt the segment in place
        {
            let mut store = Store::open(&dir).unwrap();
            store.put(0x42, "poisoned-record").unwrap();
            store.flush().unwrap();
        }
        let seg = dir.join("seg-00000.jsonl");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();

        let (addr, handle) = start(&["--store", &dir_s]);
        // readiness reports the quarantine-degraded, read-only store
        let (head, body) = request(addr, "GET", "/readyz", "");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert_eq!(body.get("ready"), Some(&Json::Bool(false)), "{body:?}");
        assert_eq!(
            body.get("degraded").and_then(|d| d.as_str()),
            Some("read-only"),
            "{body:?}"
        );
        // liveness is unaffected
        let (head, _) = request(addr, "GET", "/healthz", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        // and /solve still answers correctly — cold-solved, nothing cached
        let (head, reply) = request(
            addr,
            "POST",
            "/solve",
            r#"{"spec": "eps:1:3", "max_rounds": 2}"#,
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(reply.get("cached"), Some(&Json::Bool(false)), "{reply:?}");
        assert!(reply
            .get("result")
            .unwrap()
            .get("witness")
            .is_some_and(|w| *w != Json::Null));
        shutdown(addr, handle);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
