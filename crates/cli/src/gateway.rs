//! The `iis gateway` subcommand: HTTP front door for a fleet of
//! `iis serve` shards.
//!
//! The routing, health, and scatter-gather logic all live in
//! `iis_cluster`; this module is the **process glue**: flag parsing, the
//! HTTP handler, the background `/readyz` prober thread, and the
//! park-until-shutdown lifecycle (mirroring `iis serve`).
//!
//! Routes:
//!
//! - `POST /solve` — single-question or `{"questions": […]}` batch, the
//!   same wire schema the backends speak. Questions are routed by their
//!   cache key (rendezvous hashing over the `--backends` list), batches
//!   are fanned out shard-parallel with same-shard questions coalesced
//!   into one upstream batch call, and failed shards are retried on the
//!   key's other replicas.
//! - `GET /cluster` — per-shard health, failure streaks, and key-space
//!   ownership.
//! - `GET /metrics` — the gateway's own counters *plus* every reachable
//!   shard's, summed family-by-family: one scrape, cluster-wide totals.
//! - `GET /healthz` — gateway process liveness.
//! - `GET /readyz` — `200` while at least one shard is not Down.
//! - `POST /shutdown` — stop the prober and exit.

use crate::{err, flag_value, CliError};
use iis_cluster::{Gateway, GatewayConfig, HttpTransport, ShardHealth};
use iis_obs::http::{serve_with, Handler, Request, Response};
use iis_obs::{Json, ToJson as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Renders a relayed upstream status as a static HTTP status line. The
/// backends only emit statuses from this table; anything else (a proxy in
/// between, a corrupted reply) is honestly a gateway problem.
fn status_line(status: u16) -> &'static str {
    match status {
        200 => "200 OK",
        202 => "202 Accepted",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        413 => "413 Payload Too Large",
        500 => "500 Internal Server Error",
        503 => "503 Service Unavailable",
        504 => "504 Gateway Timeout",
        _ => "502 Bad Gateway",
    }
}

fn handle(gateway: &Gateway, req: &Request) -> Option<Response> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/solve") => {
            let Some(body) = req.body_utf8() else {
                return Some(Response::bad_request("body must be UTF-8"));
            };
            // batch bodies scatter-gather; everything else relays single
            if let Ok(v) = Json::parse(body) {
                match v.get("questions") {
                    Some(Json::Arr(questions)) => {
                        return Some(Response::json(gateway.solve_batch(questions)))
                    }
                    Some(_) => {
                        return Some(Response::bad_request("\"questions\" must be an array"))
                    }
                    None => {}
                }
            }
            let (status, body) = gateway.solve_one(body);
            Some(Response::json_status(status_line(status), body))
        }
        ("GET", "/cluster") => Some(Response::json(gateway.cluster_json())),
        ("GET", "/metrics") => Some(Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: gateway.metrics_text(),
        }),
        ("GET", "/healthz") => Some(Response::json("{\"ok\": true}".to_string())),
        ("GET", "/readyz") => {
            let up = gateway
                .health()
                .snapshot()
                .iter()
                .filter(|s| s.health != ShardHealth::Down)
                .count();
            let body = Json::obj([
                ("ready", Json::Bool(up > 0)),
                ("shards_up", up.to_json()),
                ("shards", gateway.backends().len().to_json()),
            ])
            .to_string();
            Some(if up > 0 {
                Response::json(body)
            } else {
                Response::json_status("503 Service Unavailable", body)
            })
        }
        // /shutdown is handled by the caller (it owns the park latch)
        (_, "/solve") | (_, "/shutdown") => Some(Response::method_not_allowed("POST")),
        (_, "/cluster") | (_, "/healthz") | (_, "/readyz") => {
            Some(Response::method_not_allowed("GET"))
        }
        _ => None,
    }
}

/// `iis gateway --backends A,B[,…] [--replicas R] [--addr A] [--workers N]
/// [--probe-ms MS] [--timeout-secs T]` — see [`crate::USAGE`].
///
/// Binds `--addr` (default `127.0.0.1:0`, bound address printed to stderr
/// as `gateway on http://…`), probes every backend's `/readyz` once up
/// front and then every `--probe-ms` in the background, and serves until
/// `POST /shutdown`.
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments or an unbindable address.
pub fn cmd_gateway(args: &[String]) -> Result<String, CliError> {
    let backends: Vec<String> = flag_value(args, "--backends")?
        .ok_or_else(|| err("--backends A,B[,…] is required"))?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        return Err(err("--backends needs at least one address"));
    }
    let replicas: usize = flag_value(args, "--replicas")?
        .unwrap_or("2")
        .parse()
        .map_err(|_| err("bad --replicas"))?;
    if replicas == 0 || replicas > backends.len() {
        return Err(err(format!(
            "need 1 ≤ --replicas ≤ {} (the backend count)",
            backends.len()
        )));
    }
    let addr = flag_value(args, "--addr")?
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let workers: usize = flag_value(args, "--workers")?
        .unwrap_or("4")
        .parse()
        .map_err(|_| err("bad --workers"))?;
    if workers == 0 || workers > 64 {
        return Err(err("need 1 ≤ --workers ≤ 64"));
    }
    let probe_ms: u64 = flag_value(args, "--probe-ms")?
        .unwrap_or("1000")
        .parse()
        .map_err(|_| err("bad --probe-ms"))?;
    if probe_ms == 0 {
        return Err(err("bad --probe-ms"));
    }
    let deadline: u64 = flag_value(args, "--timeout-secs")?
        .unwrap_or("10")
        .parse()
        .map_err(|_| err("bad --timeout-secs"))?;
    // like iis serve: a gateway is always observable
    iis_obs::set_enabled(true);
    let transport = Arc::new(HttpTransport::new(Duration::from_secs(deadline.max(1))));
    let n_backends = backends.len();
    let gateway = Arc::new(Gateway::new(
        transport,
        GatewayConfig {
            backends,
            replicas,
            workers,
        },
    ));
    // one synchronous probe pass so the first request sees real health,
    // then a background prober with the shutdown latch
    gateway.probe();
    let shutdown = Arc::new((Mutex::new(false), Condvar::new()));
    let prober = {
        let gateway = Arc::clone(&gateway);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let (flag, signal) = &*shutdown;
            let mut stop = flag.lock().unwrap_or_else(PoisonError::into_inner);
            while !*stop {
                let (next, timeout) = signal
                    .wait_timeout(stop, Duration::from_millis(probe_ms))
                    .unwrap_or_else(PoisonError::into_inner);
                stop = next;
                if timeout.timed_out() && !*stop {
                    // probe outside the latch so a slow shard cannot
                    // delay shutdown
                    drop(stop);
                    gateway.probe();
                    stop = flag.lock().unwrap_or_else(PoisonError::into_inner);
                }
            }
        })
    };
    let stopping = Arc::new(AtomicBool::new(false));
    let handler: Arc<Handler> = {
        let gateway = Arc::clone(&gateway);
        let shutdown = Arc::clone(&shutdown);
        let stopping = Arc::clone(&stopping);
        Arc::new(move |req: &Request| {
            if (req.method.as_str(), req.path.as_str()) == ("POST", "/shutdown") {
                stopping.store(true, Ordering::Release);
                let (flag, signal) = &*shutdown;
                *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
                signal.notify_all();
                return Some(Response::json("{\"ok\": true}".to_string()));
            }
            if stopping.load(Ordering::Acquire)
                && (req.method.as_str(), req.path.as_str()) == ("POST", "/solve")
            {
                return Some(Response::json_status(
                    "503 Service Unavailable",
                    "{\"error\": \"shutting down\"}".to_string(),
                ));
            }
            handle(&gateway, req)
        })
    };
    let server = serve_with(&addr, handler).map_err(|e| err(format!("cannot bind {addr}: {e}")))?;
    eprintln!("gateway on http://{}", server.addr());
    {
        let (flag, signal) = &*shutdown;
        let mut stop = flag.lock().unwrap_or_else(PoisonError::into_inner);
        while !*stop {
            stop = signal.wait(stop).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let _ = prober.join();
    server.shutdown();
    let snap = iis_obs::snapshot();
    let requests = snap.counters.get("gateway.requests").copied().unwrap_or(0);
    let failovers = snap.counters.get("gateway.failovers").copied().unwrap_or(0);
    Ok(format!(
        "gateway: {requests} questions routed over {n_backends} shards, {failovers} failovers\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{SocketAddr, TcpStream};

    /// Runs a command on a background thread against a free port, waits
    /// for the listener, returns (addr, join handle).
    fn spawn_http(
        cmd: impl FnOnce(Vec<String>) -> Result<String, CliError> + Send + 'static,
        extra: &[String],
    ) -> (
        SocketAddr,
        std::thread::JoinHandle<Result<String, CliError>>,
    ) {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let mut args: Vec<String> = vec!["--addr".into(), addr.to_string()];
        args.extend_from_slice(extra);
        let handle = std::thread::spawn(move || cmd(args));
        for _ in 0..200 {
            if TcpStream::connect(addr).is_ok() {
                return (addr, handle);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("listener never came up on {addr}");
    }

    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn gateway_end_to_end_batch_and_failover() {
        let (shard_a, join_a) = spawn_http(move |a| crate::cmd_serve(&a), &[]);
        let (shard_b, join_b) = spawn_http(move |a| crate::cmd_serve(&a), &[]);
        // a probe interval far past the test: shard death is discovered on
        // the request path, which is exactly the failover being tested
        let extra: Vec<String> = [
            "--backends",
            &format!("{shard_a},{shard_b}"),
            "--replicas",
            "2",
            "--probe-ms",
            "60000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (gw, join_gw) = spawn_http(move |a| cmd_gateway(&a), &extra);

        let specs = [
            "trivial:1",
            "trivial:2",
            "eps:1:3",
            "eps:1:5",
            "oneshot:1",
            "eps:2:2",
        ];
        let questions: Vec<String> = specs
            .iter()
            .map(|s| format!("{{\"spec\": \"{s}\", \"max_rounds\": 2}}"))
            .collect();
        let batch = format!("{{\"questions\": [{}]}}", questions.join(","));
        let (head, body) = http(gw, "POST", "/solve", &batch);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let first = Json::parse(&body).unwrap();
        let Some(Json::Arr(answers)) = first.get("answers") else {
            panic!("{body}");
        };
        assert_eq!(answers.len(), specs.len());
        for a in answers {
            assert_eq!(a.get("status"), Some(&Json::Num(200.0)), "{a:?}");
        }
        // the cluster report sees both shards
        let (head, cluster) = http(gw, "GET", "/cluster", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let cluster = Json::parse(&cluster).unwrap();
        let Some(Json::Arr(shards)) = cluster.get("shards") else {
            panic!("{cluster:?}");
        };
        assert_eq!(shards.len(), 2);

        // kill shard B, choosing it so at least one question's rendezvous
        // primary dies with it (routing is a pure function of the addrs,
        // so a local Gateway over the same addrs predicts the server's)
        let local = Gateway::new(
            std::sync::Arc::new(HttpTransport::new(Duration::from_secs(1))),
            GatewayConfig {
                backends: vec![shard_a.to_string(), shard_b.to_string()],
                replicas: 2,
                workers: 1,
            },
        );
        let primaries: Vec<usize> = questions
            .iter()
            .map(|q| {
                let key = iis_cluster::question_key(&Json::parse(q).unwrap()).unwrap();
                local.replicas_for(key)[0]
            })
            .collect();
        let (victim, victim_join, survivor_join) = if primaries.contains(&1) {
            (shard_b, join_b, join_a)
        } else {
            (shard_a, join_a, join_b)
        };
        let (head, _) = http(victim, "POST", "/shutdown", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        victim_join.join().unwrap().unwrap();

        // the same batch must answer in full — late, never wrong: every
        // question that lost its primary fails over to the other replica
        // and returns byte-identical results (purity)
        let (head, body) = http(gw, "POST", "/solve", &batch);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let second = Json::parse(&body).unwrap();
        let (Some(Json::Arr(before)), Some(Json::Arr(after))) =
            (first.get("answers"), second.get("answers"))
        else {
            panic!();
        };
        for (x, y) in before.iter().zip(after) {
            assert_eq!(y.get("status"), Some(&Json::Num(200.0)), "{y:?}");
            assert_eq!(
                x.get("body").unwrap().get("result").unwrap().to_string(),
                y.get("body").unwrap().get("result").unwrap().to_string(),
                "failed-over answer must be byte-identical"
            );
        }
        // the dead shard was noticed and at least one failover happened
        let (_, metrics) = http(gw, "GET", "/metrics", "");
        let series = |name: &str| -> f64 {
            metrics
                .lines()
                .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
                .unwrap_or(0.0)
        };
        assert!(series("gateway_failovers_total ") >= 1.0, "{metrics}");
        assert!(series("gateway_shard_down_total ") >= 1.0, "{metrics}");
        // aggregation folds the shards' serve.* families into the scrape
        assert!(metrics.contains("serve_requests"), "{metrics}");
        let (_, ready) = http(gw, "GET", "/readyz", "");
        let ready = Json::parse(&ready).unwrap();
        assert_eq!(ready.get("ready"), Some(&Json::Bool(true)), "{ready:?}");

        let (head, _) = http(gw, "POST", "/shutdown", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let summary = join_gw.join().unwrap().unwrap();
        assert!(summary.contains("failovers"), "{summary}");
        let survivor = if victim == shard_a { shard_b } else { shard_a };
        let (head, _) = http(survivor, "POST", "/shutdown", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        survivor_join.join().unwrap().unwrap();
    }

    #[test]
    fn cmd_gateway_flag_errors() {
        let argv = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert!(cmd_gateway(&argv("--addr 127.0.0.1:0")).is_err()); // no backends
        assert!(cmd_gateway(&argv("--backends ,")).is_err());
        assert!(cmd_gateway(&argv("--backends a:1 --replicas 0")).is_err());
        assert!(cmd_gateway(&argv("--backends a:1 --replicas 2")).is_err()); // > backends
        assert!(cmd_gateway(&argv("--backends a:1 --workers 0")).is_err());
        assert!(cmd_gateway(&argv("--backends a:1 --probe-ms 0")).is_err());
        assert!(cmd_gateway(&argv("--backends a:1 --timeout-secs x")).is_err());
        assert!(cmd_gateway(&argv("--backends a:1 --addr 256.0.0.1:99999")).is_err());
    }

    #[test]
    fn status_lines_cover_the_backend_statuses() {
        for s in [200, 202, 400, 404, 405, 413, 500, 503, 504] {
            assert!(status_line(s).starts_with(&s.to_string()), "{s}");
        }
        assert_eq!(status_line(599), "502 Bad Gateway");
    }
}
