//! The gateway core: rendezvous routing of solve questions over a shard
//! fleet, batch scatter-gather, failover, and metrics aggregation.
//!
//! **Why sharding is sound at all.** Bounded solvability is a pure
//! function of `(task, max_rounds)` (Prop 3.1), and every shard's store is
//! content-addressed and first-write-wins over the same canonical record
//! encoding. So *any* replica may answer *any* question correctly; routing
//! only decides which shard's cache gets warm. A retried or failed-over
//! question returns byte-identical bytes wherever it lands — which is what
//! makes aggressive failover safe.
//!
//! **Routing.** Each question hashes to `iis_core::cache::cache_key`; the
//! key's replica set is the top `R` shards by rendezvous (highest random
//! weight) hashing. HRW gives minimal disruption: adding or removing a
//! shard only moves the keys that shard owns, with no ring to rebalance.
//! Within the replica set, attempts go Ready shards first, read-only
//! (quarantine-degraded) shards next, Down shards as a last resort.
//!
//! **Batching.** A batch of questions is grouped by primary shard and
//! fanned out on a bounded worker pool, one upstream `POST /solve`
//! `{"questions": […]}` call per group — so a 100-question sweep costs a
//! handful of round trips, not 100. Answers return as one array in
//! question order; per-question failures fail over individually without
//! disturbing the rest of the batch.

use crate::health::{HealthRegistry, ShardHealth};
use crate::transport::Transport;
use iis_core::cache::cache_key;
use iis_obs::{Json, ToJson as _};
use iis_tasks::library::parse_spec;
use iis_tasks::Task;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Gateway configuration.
pub struct GatewayConfig {
    /// Backend shard addresses (`host:port`), the routing universe.
    pub backends: Vec<String>,
    /// Replica-set size per key (clamped to the backend count).
    pub replicas: usize,
    /// Worker threads for batch fan-out.
    pub workers: usize,
}

/// The gateway: routing + health + scatter-gather over a [`Transport`].
pub struct Gateway {
    transport: Arc<dyn Transport>,
    health: HealthRegistry,
    backends: Vec<String>,
    /// Per-shard rendezvous salt (FNV of the address), fixed at startup.
    salts: Vec<u64>,
    replicas: usize,
    workers: usize,
}

/// FNV-1a over a byte string, the same construction the store keys use.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: the rendezvous weight of (key, salt).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One answer as carried in a batch envelope: the per-question status plus
/// the single-question response body.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Per-question numeric status.
    pub status: u16,
    /// The single-question response body (today's `POST /solve` schema).
    pub body: Json,
}

impl Answer {
    fn error(status: u16, msg: &str) -> Answer {
        Answer {
            status,
            body: Json::obj([("error", Json::Str(msg.to_string()))]),
        }
    }

    /// Renders the batch-envelope element `{"status": N, "body": …}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("status", Json::Num(f64::from(self.status))),
            ("body", self.body.clone()),
        ])
    }
}

/// Renders a batch envelope `{"answers": […]}` from per-question answers.
pub fn batch_envelope(answers: &[Answer]) -> String {
    Json::obj([(
        "answers",
        Json::Arr(answers.iter().map(Answer::to_json).collect()),
    )])
    .to_string()
}

/// The routing-relevant reading of one question body: enough to compute
/// its cache key. Everything else is forwarded verbatim.
///
/// # Errors
///
/// Returns a message when the question names no task or a malformed one.
pub fn question_key(q: &Json) -> Result<u64, String> {
    let task: Task = match (q.get("spec"), q.get("task")) {
        (Some(s), None) => {
            let s = s.as_str().ok_or("\"spec\" must be a string")?;
            parse_spec(s)?
        }
        (None, Some(t)) => {
            use iis_obs::json::FromJson as _;
            Task::from_json(t).map_err(|e| format!("bad \"task\": {e}"))?
        }
        (Some(_), Some(_)) => return Err("give \"spec\" or \"task\", not both".to_string()),
        (None, None) => return Err("body needs a \"spec\" or a \"task\"".to_string()),
    };
    let max_rounds = match q.get("max_rounds") {
        None | Some(Json::Null) => 2,
        Some(j) => j.as_f64().ok_or("\"max_rounds\" must be a number")? as usize,
    };
    Ok(cache_key(&task, max_rounds))
}

impl Gateway {
    /// A gateway over `transport` for `cfg.backends`.
    pub fn new(transport: Arc<dyn Transport>, cfg: GatewayConfig) -> Gateway {
        // register the gateway counters at zero so a scrape before first
        // traffic still shows the full family
        for name in [
            "gateway.requests",
            "gateway.batch_requests",
            "gateway.fanout",
            "gateway.retries",
            "gateway.failovers",
            "gateway.shard_down",
            "gateway.hedges",
            "gateway.unroutable",
        ] {
            iis_obs::metrics::Counter::handle(name);
        }
        let salts = cfg.backends.iter().map(|a| fnv64(a.as_bytes())).collect();
        Gateway {
            health: HealthRegistry::new(&cfg.backends),
            salts,
            replicas: cfg.replicas.clamp(1, cfg.backends.len().max(1)),
            workers: cfg.workers.max(1),
            backends: cfg.backends,
            transport,
        }
    }

    /// The backend addresses, in configuration order.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// The health registry (the prober thread and tests drive it).
    pub fn health(&self) -> &HealthRegistry {
        &self.health
    }

    /// One `/readyz` probing pass over every shard.
    pub fn probe(&self) {
        self.health.probe_all(self.transport.as_ref());
    }

    /// The key's replica set in attempt order: top-`R` shards by
    /// rendezvous weight, then Ready before read-only before Down
    /// (stable, so the HRW order breaks ties).
    pub fn replicas_for(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.backends.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(mix(key ^ self.salts[i])));
        order.truncate(self.replicas);
        order.sort_by_key(|&i| self.health.health_of(i).rank());
        order
    }

    /// The key's *owner* (rendezvous winner, health ignored) — used for
    /// the `/cluster` ownership report, not for routing.
    fn owner_of(&self, key: u64) -> Option<usize> {
        (0..self.backends.len()).max_by_key(|&i| mix(key ^ self.salts[i]))
    }

    /// Answers one question by trying its replicas in order. 4xx answers
    /// relay as-is (the question itself is bad — no replica will disagree);
    /// transport errors and 5xx answers fail over to the next replica.
    fn solve_via_replicas(&self, body: &str, replicas: &[usize], skip: Option<usize>) -> Answer {
        let mut attempts = 0u32;
        for &idx in replicas {
            if Some(idx) == skip {
                continue;
            }
            if attempts > 0 {
                iis_obs::metrics::add("gateway.retries", 1);
            }
            attempts += 1;
            match self.transport.post(&self.backends[idx], "/solve", body) {
                Ok(r) if r.status < 500 => {
                    self.health.report_success(idx);
                    if attempts > 1 || skip.is_some() {
                        iis_obs::metrics::add("gateway.failovers", 1);
                    }
                    return Answer {
                        status: r.status,
                        body: Json::parse(&r.body).unwrap_or_else(|_| Json::Str(r.body.clone())),
                    };
                }
                Ok(_) | Err(_) => self.health.report_failure(idx),
            }
        }
        Answer::error(503, "no replica answered")
    }

    /// `POST /solve` with a single-question object body: route and relay,
    /// preserving the backend's schema byte-for-byte.
    pub fn solve_one(&self, body: &str) -> (u16, String) {
        iis_obs::metrics::add("gateway.requests", 1);
        let q = match Json::parse(body) {
            Ok(q) => q,
            Err(e) => {
                return (
                    400,
                    Json::obj([("error", Json::Str(format!("bad JSON body: {e}")))]).to_string(),
                )
            }
        };
        let key = match question_key(&q) {
            Ok(k) => k,
            Err(e) => return (400, Json::obj([("error", Json::Str(e))]).to_string()),
        };
        let replicas = self.replicas_for(key);
        if replicas.is_empty() {
            iis_obs::metrics::add("gateway.unroutable", 1);
            return (
                503,
                Json::obj([("error", Json::Str("no backends configured".into()))]).to_string(),
            );
        }
        let answer = self.solve_via_replicas(body, &replicas, None);
        (answer.status, answer.body.to_string())
    }

    /// `POST /solve` with a `{"questions": […]}` batch body: scatter by
    /// primary shard, coalesce same-shard questions into one upstream
    /// batch call, gather one ordered answer array.
    pub fn solve_batch(&self, questions: &[Json]) -> String {
        iis_obs::metrics::add("gateway.batch_requests", 1);
        iis_obs::metrics::add("gateway.requests", questions.len() as u64);
        let mut answers: Vec<Option<Answer>> = vec![None; questions.len()];
        // route every question; invalid ones answer 400 without a trip
        let mut routed: Vec<(usize, u64, Vec<usize>)> = Vec::new();
        for (i, q) in questions.iter().enumerate() {
            match question_key(q) {
                Ok(key) => {
                    let replicas = self.replicas_for(key);
                    if replicas.is_empty() {
                        iis_obs::metrics::add("gateway.unroutable", 1);
                        answers[i] = Some(Answer::error(503, "no backends configured"));
                    } else {
                        routed.push((i, key, replicas));
                    }
                }
                Err(e) => answers[i] = Some(Answer::error(400, &e)),
            }
        }
        // group by primary shard
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pos, (_, _, replicas)) in routed.iter().enumerate() {
            groups.entry(replicas[0]).or_default().push(pos);
        }
        iis_obs::metrics::add("gateway.fanout", groups.len() as u64);
        let groups: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
        let answers = Mutex::new(answers);
        let next = AtomicUsize::new(0);
        let drain = || loop {
            let g = next.fetch_add(1, Ordering::Relaxed);
            let Some((shard, members)) = groups.get(g) else {
                return;
            };
            let got = self.dispatch_group(questions, &routed, *shard, members);
            let mut slots = answers.lock().unwrap_or_else(PoisonError::into_inner);
            for (pos, answer) in members.iter().zip(got) {
                slots[routed[*pos].0] = Some(answer);
            }
        };
        // the calling thread is worker zero — a small batch (or workers=1)
        // dispatches inline with no thread spawned at all, so batching is
        // never slower than the sequential loop it replaces
        let helpers = self.workers.min(groups.len()).saturating_sub(1);
        if helpers == 0 {
            drain();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..helpers {
                    scope.spawn(drain);
                }
                drain();
            });
        }
        let answers: Vec<Answer> = answers
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|a| a.unwrap_or_else(|| Answer::error(500, "answer lost")))
            .collect();
        batch_envelope(&answers)
    }

    /// Sends one group's questions to its primary shard (one coalesced
    /// batch call when the group has more than one question), failing over
    /// per question on shard or per-question failure.
    fn dispatch_group(
        &self,
        questions: &[Json],
        routed: &[(usize, u64, Vec<usize>)],
        shard: usize,
        members: &[usize],
    ) -> Vec<Answer> {
        let failover = |pos: usize| {
            let (qi, _, replicas) = &routed[pos];
            self.solve_via_replicas(&questions[*qi].to_string(), replicas, Some(shard))
        };
        if members.len() == 1 {
            let (qi, _, replicas) = &routed[members[0]];
            return vec![self.solve_via_replicas(&questions[*qi].to_string(), replicas, None)];
        }
        let body = Json::obj([(
            "questions",
            Json::Arr(
                members
                    .iter()
                    .map(|&p| questions[routed[p].0].clone())
                    .collect(),
            ),
        )])
        .to_string();
        let upstream = match self.transport.post(&self.backends[shard], "/solve", &body) {
            Ok(r) if r.status == 200 => parse_batch_answers(&r.body, members.len()),
            Ok(_) | Err(_) => None,
        };
        match upstream {
            Some(got) => {
                self.health.report_success(shard);
                // per-question 5xx inside a healthy envelope fails over
                // individually (e.g. that one question hit a full queue)
                got.into_iter()
                    .enumerate()
                    .map(|(j, a)| {
                        if a.status >= 500 {
                            failover(members[j])
                        } else {
                            a
                        }
                    })
                    .collect()
            }
            None => {
                // the shard (or its envelope) failed wholesale: mark it
                // and re-route every member individually
                self.health.report_failure(shard);
                members.iter().map(|&p| failover(p)).collect()
            }
        }
    }

    /// `GET /cluster`: per-shard health, failure streaks, and the share of
    /// the key space each shard owns under rendezvous hashing (sampled at
    /// 256 points).
    pub fn cluster_json(&self) -> String {
        const SAMPLES: u64 = 256;
        let mut owned = vec![0u64; self.backends.len()];
        for s in 0..SAMPLES {
            if let Some(w) = self.owner_of(mix(s)) {
                owned[w] += 1;
            }
        }
        let shards: Vec<Json> = self
            .health
            .snapshot()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Json::obj([
                    ("addr", Json::Str(s.addr.clone())),
                    ("health", Json::Str(s.health.name().to_string())),
                    ("consecutive_failures", s.consecutive_failures.to_json()),
                    ("ownership", Json::Num(owned[i] as f64 / SAMPLES as f64)),
                ])
            })
            .collect();
        Json::obj([
            ("shards", Json::Arr(shards)),
            ("replicas", self.replicas.to_json()),
        ])
        .to_string_pretty()
    }

    /// `GET /metrics`: the gateway's own counters plus the *sum* of every
    /// reachable shard's Prometheus text, family by family — one scrape
    /// shows cluster-wide totals.
    pub fn metrics_text(&self) -> String {
        let mut texts = vec![iis_obs::http::prometheus_text(&iis_obs::metrics::snapshot())];
        for s in self.health.snapshot() {
            if s.health == ShardHealth::Down {
                continue;
            }
            if let Ok(r) = self.transport.get(&s.addr, "/metrics") {
                if r.status == 200 {
                    texts.push(r.body);
                }
            }
        }
        merge_prometheus(&texts)
    }
}

/// Parses a backend batch envelope into per-question [`Answer`]s; `None`
/// when the body is not a well-formed envelope of exactly `expect`
/// answers (a truncated or garbled reply must trigger failover, never a
/// misaligned answer array).
fn parse_batch_answers(body: &str, expect: usize) -> Option<Vec<Answer>> {
    let v = Json::parse(body).ok()?;
    let Some(Json::Arr(items)) = v.get("answers") else {
        return None;
    };
    if items.len() != expect {
        return None;
    }
    let mut answers = Vec::with_capacity(items.len());
    for item in items {
        let status = item.get("status")?.as_f64()? as u16;
        let body = item.get("body")?.clone();
        answers.push(Answer { status, body });
    }
    Some(answers)
}

/// Merges Prometheus text expositions by summing series with identical
/// names (labels included). `# TYPE` lines are kept once per family;
/// families and series render in sorted order. Histogram families merge
/// soundly because every series (`_bucket{le}`, `_sum`, `_count`) is
/// itself a sum.
pub fn merge_prometheus(texts: &[String]) -> String {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut series: BTreeMap<String, f64> = BTreeMap::new();
    for text in texts {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((family, ty)) = rest.rsplit_once(' ') {
                    types
                        .entry(family.to_string())
                        .or_insert_with(|| ty.to_string());
                }
                continue;
            }
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let Some((name, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(v) = value.parse::<f64>() else {
                continue;
            };
            *series.entry(name.to_string()).or_insert(0.0) += v;
        }
    }
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, v) in &series {
        let family = name.split('{').next().unwrap_or(name);
        // a series family may carry suffixes (_bucket/_sum/_count map to
        // the histogram family); emit the TYPE line when we enter it
        let base = family
            .strip_suffix("_bucket")
            .or_else(|| family.strip_suffix("_sum"))
            .or_else(|| family.strip_suffix("_count"))
            .filter(|b| types.contains_key(*b))
            .unwrap_or(family);
        if base != last_family {
            if let Some(ty) = types.get(base) {
                out.push_str(&format!("# TYPE {base} {ty}\n"));
            }
            last_family = base.to_string();
        }
        if v.fract() == 0.0 && v.abs() < 9e15 {
            out.push_str(&format!("{name} {}\n", *v as i64));
        } else {
            out.push_str(&format!("{name} {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportResponse;

    #[test]
    fn rendezvous_is_stable_and_balanced() {
        let cfg = GatewayConfig {
            backends: vec!["a:1".into(), "b:1".into(), "c:1".into()],
            replicas: 2,
            workers: 2,
        };
        let gw = Gateway::new(Arc::new(NullTransport), cfg);
        let mut counts = [0usize; 3];
        for k in 0..600u64 {
            let r = gw.replicas_for(mix(k));
            assert_eq!(r.len(), 2);
            assert_ne!(r[0], r[1]);
            counts[r[0]] += 1;
            // same key, same replica set — routing is a pure function
            assert_eq!(r, gw.replicas_for(mix(k)));
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (100..300).contains(&c),
                "shard {i} owns {c}/600 keys — rendezvous should balance"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let three = Gateway::new(
            Arc::new(NullTransport),
            GatewayConfig {
                backends: vec!["a:1".into(), "b:1".into(), "c:1".into()],
                replicas: 1,
                workers: 1,
            },
        );
        let two = Gateway::new(
            Arc::new(NullTransport),
            GatewayConfig {
                backends: vec!["a:1".into(), "b:1".into()],
                replicas: 1,
                workers: 1,
            },
        );
        for k in 0..400u64 {
            let key = mix(k);
            let before = three.replicas_for(key)[0];
            let after = two.replicas_for(key)[0];
            if before != 2 {
                // keys not owned by the removed shard must not move:
                // the minimal-disruption property of rendezvous hashing
                assert_eq!(before, after, "key {key:x} moved needlessly");
            }
        }
    }

    #[test]
    fn unhealthy_replicas_sort_to_the_back() {
        let gw = Gateway::new(
            Arc::new(NullTransport),
            GatewayConfig {
                backends: vec!["a:1".into(), "b:1".into(), "c:1".into()],
                replicas: 3,
                workers: 1,
            },
        );
        let key = 0xfeed_beef;
        let healthy = gw.replicas_for(key);
        gw.health().report_failure(healthy[0]);
        let rerouted = gw.replicas_for(key);
        assert_eq!(
            rerouted.last(),
            Some(&healthy[0]),
            "a Down shard must be the last resort"
        );
        // the surviving order still follows HRW
        assert_eq!(
            rerouted[..2],
            healthy
                .iter()
                .copied()
                .filter(|&i| i != healthy[0])
                .collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn question_key_matches_serve_semantics() {
        use iis_tasks::library::approximate_agreement;
        let by_spec =
            question_key(&Json::parse(r#"{"spec": "eps:1:3", "max_rounds": 2}"#).unwrap()).unwrap();
        assert_eq!(by_spec, cache_key(&approximate_agreement(1, 3), 2));
        // max_rounds defaults to 2, like the solve service
        let defaulted = question_key(&Json::parse(r#"{"spec": "eps:1:3"}"#).unwrap()).unwrap();
        assert_eq!(by_spec, defaulted);
        // inline task bodies route identically to their spec form
        let inline = Json::obj([
            ("task", approximate_agreement(1, 3).to_json()),
            ("max_rounds", Json::Num(2.0)),
        ]);
        assert_eq!(question_key(&inline).unwrap(), by_spec);
        assert!(question_key(&Json::parse("{}").unwrap()).is_err());
        assert!(question_key(&Json::parse(r#"{"spec": "nope:1"}"#).unwrap()).is_err());
    }

    #[test]
    fn merge_prometheus_sums_families() {
        let a = "# TYPE serve_requests_total counter\nserve_requests_total 3\n\
                 # TYPE x_ns histogram\nx_ns_bucket{le=\"1\"} 2\nx_ns_bucket{le=\"+Inf\"} 4\n\
                 x_ns_sum 9\nx_ns_count 4\n"
            .to_string();
        let b = "# TYPE serve_requests_total counter\nserve_requests_total 5\n\
                 # TYPE x_ns histogram\nx_ns_bucket{le=\"1\"} 1\nx_ns_bucket{le=\"+Inf\"} 1\n\
                 x_ns_sum 2\nx_ns_count 1\n"
            .to_string();
        let merged = merge_prometheus(&[a, b]);
        assert!(merged.contains("serve_requests_total 8\n"), "{merged}");
        assert!(merged.contains("x_ns_bucket{le=\"1\"} 3\n"), "{merged}");
        assert!(merged.contains("x_ns_bucket{le=\"+Inf\"} 5\n"), "{merged}");
        assert!(merged.contains("x_ns_sum 11\n"), "{merged}");
        assert!(merged.contains("x_ns_count 5\n"), "{merged}");
        // exactly one TYPE line per family
        assert_eq!(
            merged.matches("# TYPE x_ns histogram").count(),
            1,
            "{merged}"
        );
    }

    /// A transport that never answers — for routing-only tests.
    struct NullTransport;

    impl Transport for NullTransport {
        fn get(&self, _: &str, _: &str) -> Result<TransportResponse, String> {
            Err("null".into())
        }
        fn post(&self, _: &str, _: &str, _: &str) -> Result<TransportResponse, String> {
            Err("null".into())
        }
    }

    /// An in-memory "cluster" answering the solve-service protocol with
    /// pure, deterministic answers, optionally dropping whole shards.
    struct FakeCluster {
        dead: Vec<String>,
    }

    fn canned_answer(q: &Json) -> Json {
        let key = question_key(q).unwrap();
        Json::obj([
            ("cached", Json::Bool(false)),
            ("key", Json::Str(format!("{key:016x}"))),
            (
                "result",
                Json::obj([("verdict", Json::Bool(key.is_multiple_of(2)))]),
            ),
        ])
    }

    impl Transport for FakeCluster {
        fn get(&self, shard: &str, path: &str) -> Result<TransportResponse, String> {
            if self.dead.iter().any(|d| d == shard) {
                return Err("connection refused".into());
            }
            match path {
                "/readyz" => Ok(TransportResponse {
                    status: 200,
                    body: "{\"ready\": true}".into(),
                }),
                _ => Ok(TransportResponse {
                    status: 404,
                    body: "not found".into(),
                }),
            }
        }

        fn post(&self, shard: &str, _path: &str, body: &str) -> Result<TransportResponse, String> {
            if self.dead.iter().any(|d| d == shard) {
                return Err("connection refused".into());
            }
            let v = Json::parse(body).map_err(|e| e.to_string())?;
            let body = match v.get("questions") {
                Some(Json::Arr(qs)) => {
                    let answers: Vec<Json> = qs
                        .iter()
                        .map(|q| {
                            Json::obj([("status", Json::Num(200.0)), ("body", canned_answer(q))])
                        })
                        .collect();
                    Json::obj([("answers", Json::Arr(answers))]).to_string()
                }
                _ => canned_answer(&v).to_string(),
            };
            Ok(TransportResponse { status: 200, body })
        }
    }

    fn questions(n: usize) -> Vec<Json> {
        let specs = [
            "trivial:1",
            "trivial:2",
            "eps:1:3",
            "eps:1:5",
            "consensus:1",
            "kset:2:2",
        ];
        (0..n)
            .map(|i| {
                Json::obj([
                    ("spec", Json::Str(specs[i % specs.len()].to_string())),
                    ("max_rounds", Json::Num(((i % 2) + 1) as f64)),
                ])
            })
            .collect()
    }

    #[test]
    fn batch_scatter_gather_preserves_order_and_answers() {
        let gw = Gateway::new(
            Arc::new(FakeCluster { dead: vec![] }),
            GatewayConfig {
                backends: vec!["a:1".into(), "b:1".into(), "c:1".into()],
                replicas: 2,
                workers: 3,
            },
        );
        let qs = questions(6);
        let out = gw.solve_batch(&qs);
        let v = Json::parse(&out).unwrap();
        let Some(Json::Arr(answers)) = v.get("answers") else {
            panic!("{out}");
        };
        assert_eq!(answers.len(), 6);
        for (q, a) in qs.iter().zip(answers) {
            assert_eq!(a.get("status"), Some(&Json::Num(200.0)), "{a:?}");
            let key = question_key(q).unwrap();
            assert_eq!(
                a.get("body").unwrap().get("key").unwrap().as_str(),
                Some(format!("{key:016x}").as_str()),
                "answer out of order"
            );
        }
    }

    #[test]
    fn dead_primary_fails_over_with_identical_answers() {
        let qs = questions(6);
        let healthy = Gateway::new(
            Arc::new(FakeCluster { dead: vec![] }),
            GatewayConfig {
                backends: vec!["a:1".into(), "b:1".into(), "c:1".into()],
                replicas: 2,
                workers: 2,
            },
        );
        let degraded = Gateway::new(
            Arc::new(FakeCluster {
                dead: vec!["b:1".into()],
            }),
            GatewayConfig {
                backends: vec!["a:1".into(), "b:1".into(), "c:1".into()],
                replicas: 2,
                workers: 2,
            },
        );
        let before = Json::parse(&healthy.solve_batch(&qs)).unwrap();
        let after = Json::parse(&degraded.solve_batch(&qs)).unwrap();
        let (Some(Json::Arr(b)), Some(Json::Arr(a))) =
            (before.get("answers"), after.get("answers"))
        else {
            panic!();
        };
        for (x, y) in b.iter().zip(a) {
            assert_eq!(x.get("status"), Some(&Json::Num(200.0)));
            assert_eq!(y.get("status"), Some(&Json::Num(200.0)), "{y:?}");
            // purity: the failed-over answer is byte-identical
            assert_eq!(
                x.get("body").unwrap().to_string(),
                y.get("body").unwrap().to_string()
            );
        }
        // the dead shard was noticed
        assert!(degraded
            .health()
            .snapshot()
            .iter()
            .any(|s| s.health == ShardHealth::Down));
    }

    #[test]
    fn every_shard_dead_answers_503_per_question() {
        let gw = Gateway::new(
            Arc::new(FakeCluster {
                dead: vec!["a:1".into(), "b:1".into()],
            }),
            GatewayConfig {
                backends: vec!["a:1".into(), "b:1".into()],
                replicas: 2,
                workers: 2,
            },
        );
        let qs = questions(3);
        let v = Json::parse(&gw.solve_batch(&qs)).unwrap();
        let Some(Json::Arr(answers)) = v.get("answers") else {
            panic!();
        };
        assert_eq!(answers.len(), 3);
        for a in answers {
            assert_eq!(a.get("status"), Some(&Json::Num(503.0)), "{a:?}");
        }
    }

    #[test]
    fn malformed_questions_answer_400_without_a_round_trip() {
        let gw = Gateway::new(
            Arc::new(FakeCluster { dead: vec![] }),
            GatewayConfig {
                backends: vec!["a:1".into()],
                replicas: 1,
                workers: 1,
            },
        );
        let qs = vec![
            Json::parse(r#"{"spec": "trivial:1"}"#).unwrap(),
            Json::parse(r#"{"nope": 1}"#).unwrap(),
        ];
        let v = Json::parse(&gw.solve_batch(&qs)).unwrap();
        let Some(Json::Arr(answers)) = v.get("answers") else {
            panic!();
        };
        assert_eq!(answers[0].get("status"), Some(&Json::Num(200.0)));
        assert_eq!(answers[1].get("status"), Some(&Json::Num(400.0)));
    }
}
