//! The wire boundary of the gateway: a [`Transport`] is "send one HTTP
//! request to one shard, get one response back".
//!
//! The gateway core never touches sockets directly — it speaks through
//! this trait, so the same routing/failover logic runs over the real
//! [`HttpTransport`] in production and over a deterministic in-memory
//! fault-injecting transport under `iis fuzz --layer gateway`.

use std::time::Duration;

/// One response as the gateway sees it: a numeric status plus the body
/// text. Transport-level failures (connect refused, deadline, short read
/// of the head) are `Err` — they carry no status at all.
#[derive(Clone, Debug)]
pub struct TransportResponse {
    /// Numeric HTTP status (`200`, `503`, …).
    pub status: u16,
    /// The response body, lossily decoded as UTF-8.
    pub body: String,
}

impl TransportResponse {
    /// Whether the status is in the 2xx range.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A transport error: the request produced no response at all.
pub type TransportError = String;

/// The gateway's view of the network: blocking request/response against a
/// shard named by its `host:port` address.
pub trait Transport: Send + Sync {
    /// `GET {path}` against `shard`.
    ///
    /// # Errors
    ///
    /// `Err` when no response arrived (connect failure, deadline, torn
    /// read); HTTP error statuses are `Ok` responses.
    fn get(&self, shard: &str, path: &str) -> Result<TransportResponse, TransportError>;

    /// `POST {path}` with a JSON body against `shard`.
    ///
    /// # Errors
    ///
    /// `Err` when no response arrived (connect failure, deadline, torn
    /// read); HTTP error statuses are `Ok` responses.
    fn post(
        &self,
        shard: &str,
        path: &str,
        body: &str,
    ) -> Result<TransportResponse, TransportError>;
}

/// The production transport: `iis_obs::http::Client` with its per-host
/// keep-alive pool, so a gateway under load holds a few warm connections
/// per shard instead of a TCP handshake per question.
pub struct HttpTransport {
    client: iis_obs::http::Client,
}

impl HttpTransport {
    /// A transport whose requests must complete within `deadline`.
    pub fn new(deadline: Duration) -> HttpTransport {
        HttpTransport {
            client: iis_obs::http::Client::new().with_deadline(deadline),
        }
    }
}

fn convert(r: iis_obs::http::ClientResponse) -> TransportResponse {
    TransportResponse {
        status: r.status,
        body: String::from_utf8_lossy(&r.body).into_owned(),
    }
}

impl Transport for HttpTransport {
    fn get(&self, shard: &str, path: &str) -> Result<TransportResponse, TransportError> {
        self.client
            .get(shard, path)
            .map(convert)
            .map_err(|e| e.to_string())
    }

    fn post(
        &self,
        shard: &str,
        path: &str,
        body: &str,
    ) -> Result<TransportResponse, TransportError> {
        self.client
            .post_json(shard, path, body)
            .map(convert)
            .map_err(|e| e.to_string())
    }
}
