//! Health-driven routing state: one [`ShardHealth`] per configured shard,
//! fed by a `/readyz` prober and by request-path failures.
//!
//! The lifecycle is deliberately simple and fully deterministic (probing
//! is tick-based, not wall-clock-based, so the fuzz layer can replay it):
//!
//! - **Ready** — routable, preferred.
//! - **ReadOnly** — the shard answered `/readyz` with a read-only
//!   degradation (its store quarantined a segment). It still answers
//!   `/solve` correctly — results are recomputed, not stored — so it is
//!   *demoted to read-preferred*: routed to only after every Ready
//!   replica of the key.
//! - **Down** — connect failures or non-ready probes. Ejected from
//!   routing (used only as a last resort when every replica of a key is
//!   down) and re-probed with exponential backoff, so a dead shard costs
//!   one connect timeout per backoff window, not per request.

use crate::transport::Transport;
use std::sync::{Mutex, PoisonError};

/// Routing-relevant health of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// `/readyz` answered 200: fully routable.
    Ready,
    /// `/readyz` reported a read-only degradation: route to it only after
    /// the key's Ready replicas.
    ReadOnly,
    /// Unreachable or not ready: ejected, re-probed with backoff.
    Down,
}

impl ShardHealth {
    /// Stable name used in `/cluster` JSON.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Ready => "ready",
            ShardHealth::ReadOnly => "read-only",
            ShardHealth::Down => "down",
        }
    }

    /// Routing preference: lower is tried first.
    pub(crate) fn rank(self) -> u8 {
        match self {
            ShardHealth::Ready => 0,
            ShardHealth::ReadOnly => 1,
            ShardHealth::Down => 2,
        }
    }
}

/// Per-shard prober state.
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// The shard's `host:port` address.
    pub addr: String,
    /// Current health.
    pub health: ShardHealth,
    /// Consecutive failed probes/requests; resets on success.
    pub consecutive_failures: u32,
    /// Probe ticks to skip before the next probe of a Down shard.
    backoff_ticks: u32,
}

/// Longest probe backoff, in prober ticks (with a 1 s probe interval this
/// caps the retry period at ~30 s).
const MAX_BACKOFF_TICKS: u32 = 30;

/// The registry shared by the prober thread and every request worker.
pub struct HealthRegistry {
    shards: Mutex<Vec<ShardStatus>>,
}

impl HealthRegistry {
    /// A registry for `addrs`, optimistically all Ready (the first probe
    /// pass corrects this before real traffic in `iis gateway`).
    pub fn new(addrs: &[String]) -> HealthRegistry {
        HealthRegistry {
            shards: Mutex::new(
                addrs
                    .iter()
                    .map(|a| ShardStatus {
                        addr: a.clone(),
                        health: ShardHealth::Ready,
                        consecutive_failures: 0,
                        backoff_ticks: 0,
                    })
                    .collect(),
            ),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<ShardStatus>> {
        self.shards.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current health of shard `idx`.
    pub fn health_of(&self, idx: usize) -> ShardHealth {
        self.lock().get(idx).map_or(ShardHealth::Down, |s| s.health)
    }

    /// A copy of every shard's status, in configuration order.
    pub fn snapshot(&self) -> Vec<ShardStatus> {
        self.lock().clone()
    }

    /// Request-path feedback: a request to shard `idx` failed at the
    /// transport level or with a 5xx. Marks it Down immediately — the
    /// prober will bring it back — and counts the *transition* on
    /// `gateway.shard_down`.
    pub fn report_failure(&self, idx: usize) {
        let mut shards = self.lock();
        let Some(s) = shards.get_mut(idx) else { return };
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        if s.health != ShardHealth::Down {
            s.health = ShardHealth::Down;
            iis_obs::metrics::add("gateway.shard_down", 1);
        }
    }

    /// Request-path feedback: shard `idx` answered. A Down shard is not
    /// resurrected here (that is the prober's job — one success on a
    /// last-resort attempt is not readiness), but failure streaks reset.
    pub fn report_success(&self, idx: usize) {
        let mut shards = self.lock();
        if let Some(s) = shards.get_mut(idx) {
            s.consecutive_failures = 0;
        }
    }

    /// One probing pass over every shard: `GET /readyz` through
    /// `transport`, honoring per-shard backoff. Deterministic given the
    /// transport — the prober thread calls this on a timer; tests and the
    /// fuzz layer call it directly.
    pub fn probe_all(&self, transport: &dyn Transport) {
        let due: Vec<(usize, String)> = {
            let mut shards = self.lock();
            shards
                .iter_mut()
                .enumerate()
                .filter_map(|(i, s)| {
                    if s.backoff_ticks > 0 {
                        s.backoff_ticks -= 1;
                        return None;
                    }
                    Some((i, s.addr.clone()))
                })
                .collect()
        };
        for (idx, addr) in due {
            // probe outside the lock: a slow shard must not stall routing
            let outcome = transport.get(&addr, "/readyz");
            let mut shards = self.lock();
            let Some(s) = shards.get_mut(idx) else {
                continue;
            };
            match outcome {
                Ok(r) if r.status == 200 => {
                    s.health = ShardHealth::Ready;
                    s.consecutive_failures = 0;
                    s.backoff_ticks = 0;
                }
                Ok(r) if r.status == 503 && r.body.contains("read-only") => {
                    // quarantined store: correct but not persisting —
                    // keep it routable, read-preferred
                    s.health = ShardHealth::ReadOnly;
                    s.consecutive_failures = 0;
                    s.backoff_ticks = 0;
                }
                Ok(_) | Err(_) => {
                    s.consecutive_failures = s.consecutive_failures.saturating_add(1);
                    if s.health != ShardHealth::Down {
                        s.health = ShardHealth::Down;
                        iis_obs::metrics::add("gateway.shard_down", 1);
                    }
                    s.backoff_ticks = (1u32 << s.consecutive_failures.min(5).saturating_sub(1))
                        .min(MAX_BACKOFF_TICKS);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportResponse;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A scripted transport: each shard answers with a fixed outcome.
    struct Scripted {
        by_addr: Vec<(String, Result<TransportResponse, String>)>,
        probes: AtomicUsize,
    }

    impl Transport for Scripted {
        fn get(&self, shard: &str, _path: &str) -> Result<TransportResponse, String> {
            self.probes.fetch_add(1, Ordering::Relaxed);
            self.by_addr
                .iter()
                .find(|(a, _)| a == shard)
                .map(|(_, r)| r.clone())
                .unwrap_or_else(|| Err("unknown shard".into()))
        }

        fn post(
            &self,
            _shard: &str,
            _path: &str,
            _body: &str,
        ) -> Result<TransportResponse, String> {
            Err("not a request transport".into())
        }
    }

    fn ok(status: u16, body: &str) -> Result<TransportResponse, String> {
        Ok(TransportResponse {
            status,
            body: body.to_string(),
        })
    }

    #[test]
    fn probe_classifies_ready_readonly_down() {
        let addrs: Vec<String> = vec!["a:1".into(), "b:1".into(), "c:1".into()];
        let t = Scripted {
            by_addr: vec![
                ("a:1".into(), ok(200, "{\"ready\": true}")),
                (
                    "b:1".into(),
                    ok(503, "{\"ready\": false, \"degraded\": \"read-only\"}"),
                ),
                ("c:1".into(), Err("connection refused".into())),
            ],
            probes: AtomicUsize::new(0),
        };
        let reg = HealthRegistry::new(&addrs);
        reg.probe_all(&t);
        assert_eq!(reg.health_of(0), ShardHealth::Ready);
        assert_eq!(reg.health_of(1), ShardHealth::ReadOnly);
        assert_eq!(reg.health_of(2), ShardHealth::Down);
    }

    #[test]
    fn down_shards_are_probed_with_backoff() {
        let addrs: Vec<String> = vec!["a:1".into()];
        let t = Scripted {
            by_addr: vec![("a:1".into(), Err("refused".into()))],
            probes: AtomicUsize::new(0),
        };
        let reg = HealthRegistry::new(&addrs);
        for _ in 0..12 {
            reg.probe_all(&t);
        }
        // without backoff this would be 12 probes; the exponential skip
        // schedule (1, 2, 4, 8, … capped) makes it far fewer
        let probes = t.probes.load(Ordering::Relaxed);
        assert!(
            probes < 8,
            "expected backoff, saw {probes} probes in 12 ticks"
        );
        assert_eq!(reg.health_of(0), ShardHealth::Down);
        let snap = reg.snapshot();
        assert!(snap[0].consecutive_failures >= 2, "{snap:?}");
    }

    #[test]
    fn request_feedback_marks_down_and_success_resets_streaks() {
        let addrs: Vec<String> = vec!["a:1".into(), "b:1".into()];
        let reg = HealthRegistry::new(&addrs);
        reg.report_failure(1);
        assert_eq!(reg.health_of(1), ShardHealth::Down);
        assert_eq!(reg.health_of(0), ShardHealth::Ready);
        // success feedback does not resurrect — only the prober does
        reg.report_success(1);
        assert_eq!(reg.health_of(1), ShardHealth::Down);
        assert_eq!(reg.snapshot()[1].consecutive_failures, 0);
        let t = Scripted {
            by_addr: vec![("a:1".into(), ok(200, "{}")), ("b:1".into(), ok(200, "{}"))],
            probes: AtomicUsize::new(0),
        };
        reg.probe_all(&t);
        assert_eq!(reg.health_of(1), ShardHealth::Ready);
    }
}
