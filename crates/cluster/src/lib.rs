//! # iis-cluster — a sharded solve cluster over the solvability oracle
//!
//! One `iis serve` process answers solve questions out of its own
//! content-addressed witness store. This crate scales that to a fleet:
//! a **gateway** that owns no store and does no solving, only routing —
//! rendezvous-hashing each question's cache key onto a replica set of
//! backends, fanning batches out shard-parallel, failing over on shard
//! loss, and aggregating cluster metrics into one scrape.
//!
//! The whole design leans on one theorem-shaped fact: bounded
//! solvability is a *pure function* of `(task, max_rounds)` (Prop 3.1 of
//! the paper). Purity means any replica may answer any question, retried
//! work is byte-identical, and a retry after an ambiguous failure cannot
//! produce a second, different answer. Routing is therefore purely a
//! cache-locality optimization — never a correctness concern.
//!
//! ## Layout
//!
//! - [`transport`] — the [`Transport`] trait (the gateway's only view of
//!   the network) and the production [`HttpTransport`].
//! - [`health`] — per-shard Ready/ReadOnly/Down lifecycle fed by a
//!   `/readyz` prober with tick-based exponential backoff.
//! - [`gateway`] — rendezvous routing, single-question relay with
//!   failover, batch scatter-gather, `/cluster` JSON and merged
//!   Prometheus `/metrics`.
//!
//! Everything is deterministic given a [`Transport`], which is what lets
//! `iis fuzz --layer gateway` replay routing decisions under injected
//! faults from a single seed.

pub mod gateway;
pub mod health;
pub mod transport;

pub use gateway::{batch_envelope, merge_prometheus, question_key, Answer, Gateway, GatewayConfig};
pub use health::{HealthRegistry, ShardHealth, ShardStatus};
pub use transport::{HttpTransport, Transport, TransportError, TransportResponse};
