//! `iis-store` — the persistent, content-addressed result store behind
//! `iis serve` and `iis solve --store`.
//!
//! A [`Store`] is a directory of append-only JSONL **segment files**
//! (`seg-00000.jsonl`, `seg-00001.jsonl`, …) plus an in-memory index from
//! 64-bit content keys to byte ranges. Each record is one line:
//!
//! ```text
//! {"key": "b5c5fdcbdc1fc4c6", "sum": "91ab…", "value": "<record bytes, JSON-escaped>"}
//! ```
//!
//! `sum` is an FNV-1a checksum over the key and value, so a record
//! corrupted on disk (a flipped bit, a torn rewrite) is detected rather
//! than served. First-generation segments without the field are still
//! readable — they simply skip the checksum check (their witnesses are
//! still re-validated at the cache layer; see `iis_core::cache`).
//!
//! The design follows four rules, each carrying one acceptance property:
//!
//! - **First write wins.** [`Store::put`] on a present key is a no-op, so
//!   every [`Store::get`] for a key returns the same bytes for the life of
//!   the store — the bit-identity the solve service advertises.
//! - **Append-only with torn-tail recovery.** Writes only ever append and
//!   flush one complete line. On open, a trailing incomplete record (a
//!   crash mid-write) is cut off and the store continues from the last
//!   good record.
//! - **Corruption quarantines, never truncates good data.** A segment
//!   whose *middle* fails integrity (an invalid line or a checksum
//!   mismatch with more records after it) is moved whole to `quarantine/`
//!   for forensics; its surviving good records stay indexed and served
//!   from the quarantined file, and the store enters **degraded
//!   read-only** mode ([`Store::degraded`]) — reads keep answering,
//!   writes stop, and callers (the solve service) degrade to cold solves.
//!   This posture is sound because every record is recomputable: the
//!   answers are pure functions of the question (Proposition 3.1).
//! - **Warm across restarts.** The index is rebuilt from the segments on
//!   [`Store::open`], so a repeated request after a process restart is
//!   still a hit.
//!
//! All I/O goes through the [`io::Io`] trait ([`io::FsIo`] in
//! production), so the `iis fuzz --layer store` harness can drive the
//! whole stack with deterministic injected faults — short writes, failed
//! flushes, ENOSPC, bit flips, crash-at-op-k — and assert the recovery
//! invariants above.
//!
//! Segments roll over at [`Store::MAX_SEGMENT_BYTES`] so no single file
//! grows without bound; the live segment is the highest-numbered one.
//!
//! # Examples
//!
//! ```
//! let dir = std::env::temp_dir().join("iis-store-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = iis_store::Store::open(&dir).unwrap();
//! let key = iis_core::cache::fnv1a64(b"question");
//! store.put(key, "answer").unwrap();
//! drop(store);
//! // a reopened store still knows the answer — and always the same bytes
//! let mut store = iis_store::Store::open(&dir).unwrap();
//! assert_eq!(store.get(key).unwrap().as_deref(), Some("answer"));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod io;

use crate::io::{FsIo, Io};
use iis_obs::{Json, ToJson};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Where a record's line lives on disk.
#[derive(Clone, Copy, Debug)]
struct Loc {
    /// Index into [`Store::files`] (live segments and quarantined ones).
    file: usize,
    /// Byte offset of the record's line start.
    offset: u64,
    /// Line length in bytes, including the trailing newline.
    len: u64,
}

/// Counters for what [`Store::open`] found and fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Complete, integrity-checked records indexed across all segments
    /// (including records recovered out of quarantined segments).
    pub records: u64,
    /// Bytes of torn tail truncated from a segment (0 on a clean open).
    pub torn_bytes: u64,
    /// Records dropped because a lower-numbered (earlier) record already
    /// held their key — first write still wins deterministically.
    pub duplicate_keys: u64,
    /// Complete lines that failed integrity: unparseable, or a checksum
    /// mismatch. Each one is a corrupted record that was *not* served.
    pub checksum_failures: u64,
    /// Segments moved to `quarantine/` because their middle failed
    /// integrity. Any quarantine puts the store in degraded read-only
    /// mode.
    pub quarantined_segments: u64,
    /// Good records indexed out of quarantined segments — data that the
    /// old truncate-at-first-error recovery would have silently dropped.
    pub recovered_records: u64,
}

/// What a [`Store::repair`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Surviving records re-encoded out of quarantined files into the
    /// fresh segment.
    pub repaired_records: u64,
    /// Quarantined files deleted.
    pub removed_files: u64,
}

/// A persistent content-addressed key-value store. See the crate docs.
pub struct Store {
    dir: PathBuf,
    io: Box<dyn Io>,
    /// Every file holding indexed records: live segments in segment order,
    /// then any quarantined segments.
    files: Vec<PathBuf>,
    /// Index into [`Store::files`] of the live (append) segment, if the
    /// store is writable.
    live: Option<usize>,
    /// Size of the live segment in bytes.
    live_len: u64,
    /// Segment number the next rollover file gets.
    next_segment: usize,
    index: HashMap<u64, Loc>,
    recovery: RecoveryStats,
    /// Raised on any integrity failure or unrepairable write error; a
    /// degraded store refuses writes and keeps serving reads.
    degraded: Arc<AtomicBool>,
}

/// Renders a key as the fixed-width hex used in record lines.
fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

fn parse_key_hex(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

fn segment_path(dir: &Path, n: usize) -> PathBuf {
    dir.join(format!("seg-{n:05}.jsonl"))
}

fn segment_number(path: &Path) -> Option<usize> {
    path.file_name()?
        .to_str()?
        .strip_prefix("seg-")?
        .strip_suffix(".jsonl")?
        .parse()
        .ok()
}

/// A free name for `path` inside the quarantine directory: the segment's
/// own name, or `name.N` if an earlier quarantine already claimed it.
fn quarantine_target(io: &mut dyn Io, qdir: &Path, path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .expect("segment has a name")
        .to_string_lossy()
        .into_owned();
    let plain = qdir.join(&name);
    if io.len(&plain).is_err() {
        return plain;
    }
    for n in 1..1000 {
        let candidate = qdir.join(format!("{name}.{n}"));
        if io.len(&candidate).is_err() {
            return candidate;
        }
    }
    plain
}

/// The per-record checksum: FNV-1a over `key_hex ++ \0 ++ value`.
fn record_sum(key: u64, value: &str) -> u64 {
    let mut preimage = Vec::with_capacity(17 + value.len());
    preimage.extend_from_slice(key_hex(key).as_bytes());
    preimage.push(0);
    preimage.extend_from_slice(value.as_bytes());
    iis_core::cache::fnv1a64(&preimage)
}

/// Encodes one record line (v2 format, checksummed), newline included.
fn encode_record(key: u64, value: &str) -> String {
    format!(
        "{}\n",
        Json::obj([
            ("key", Json::Str(key_hex(key))),
            ("sum", Json::Str(key_hex(record_sum(key, value)))),
            ("value", value.to_json()),
        ])
    )
}

/// Decodes one record line into `(key, value, integrity_ok)`.
///
/// `None` means the line is not a record at all. `integrity_ok` is `false`
/// when a `sum` field is present and does not match — a v1 line without
/// the field passes (its content is still re-validated at the cache
/// layer).
fn decode_record(line: &str) -> Option<(u64, String, bool)> {
    let v = Json::parse(line).ok()?;
    let key = parse_key_hex(v.get("key")?.as_str()?)?;
    let value = v.get("value")?.as_str()?.to_string();
    let ok = match v.get("sum") {
        None => true,
        Some(s) => parse_key_hex(s.as_str()?) == Some(record_sum(key, &value)),
    };
    Some((key, value, ok))
}

/// What scanning one segment found.
struct SegScan {
    /// Good records, in file order: `(key, offset, line_len)`.
    good: Vec<(u64, u64, u64)>,
    /// Complete lines that failed integrity.
    bad_lines: u64,
    /// Trailing bytes that do not form a complete line.
    torn_bytes: u64,
    /// Offset just past the last good record (valid when `bad_lines == 0`,
    /// where good records are a prefix of the file).
    good_len: u64,
}

/// The byte prefix every record line starts with — the resync marker
/// [`salvage_line`] splits corrupt lines on. Pinned by a unit test to the
/// exact [`encode_record`] output.
const RECORD_MARKER: &[u8] = b"{\"key\":";

/// Salvages intact records embedded in a corrupt line.
///
/// A single corrupted byte can destroy more than its own record: flipping
/// a line's `\n` terminator merges it with the *next* record into one
/// unparseable line. The neighbor's bytes are untouched, so recovery
/// resynchronizes on the record-start marker inside the bad line and keeps
/// every piece that independently passes its checksum — a flipped
/// delimiter then costs exactly the record that was corrupted, never the
/// flushed ones around it. False positives are ruled out by the checksum
/// (and by JSON string escaping: a value can never contain the raw
/// marker).
fn salvage_line(line: &[u8], line_offset: u64, scan: &mut SegScan) {
    let mut starts = Vec::new();
    let mut i = 0;
    while i + RECORD_MARKER.len() <= line.len() {
        if &line[i..i + RECORD_MARKER.len()] == RECORD_MARKER {
            starts.push(i);
            i += RECORD_MARKER.len();
        } else {
            i += 1;
        }
    }
    for (n, &start) in starts.iter().enumerate() {
        let end = starts.get(n + 1).copied().unwrap_or(line.len());
        if start == 0 && end == line.len() {
            continue; // the whole line — already failed as a unit
        }
        let piece = &line[start..end];
        if let Some((key, _, true)) = std::str::from_utf8(piece).ok().and_then(decode_record) {
            scan.good
                .push((key, line_offset + start as u64, piece.len() as u64));
        }
    }
}

/// Scans segment `bytes` line by line, classifying every record.
fn scan_segment(bytes: &[u8]) -> SegScan {
    let mut scan = SegScan {
        good: Vec::new(),
        bad_lines: 0,
        torn_bytes: 0,
        good_len: 0,
    };
    let mut offset = 0u64;
    while (offset as usize) < bytes.len() {
        let rest = &bytes[offset as usize..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            scan.torn_bytes = rest.len() as u64;
            break;
        };
        let len = (nl + 1) as u64;
        match std::str::from_utf8(&rest[..nl])
            .ok()
            .and_then(decode_record)
        {
            Some((key, _, true)) => {
                scan.good.push((key, offset, len));
                if scan.bad_lines == 0 {
                    scan.good_len = offset + len;
                }
            }
            _ => {
                scan.bad_lines += 1;
                salvage_line(&rest[..nl], offset, &mut scan);
            }
        }
        offset += len;
    }
    scan
}

impl Store {
    /// Segment rollover threshold: an append that would grow the live
    /// segment past this many bytes starts a new segment instead.
    pub const MAX_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

    /// Opens (or creates) the store rooted at `dir` on the real
    /// filesystem. See [`Store::open_with`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created
    /// or a segment cannot be read.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Store> {
        Store::open_with(dir, Box::new(FsIo::new()))
    }

    /// Opens (or creates) the store rooted at `dir` over an arbitrary
    /// [`Io`] backend, rebuilding the index from every segment.
    ///
    /// Recovery policy, per segment:
    ///
    /// - a **torn tail** (trailing incomplete line, nothing bad before it)
    ///   is truncated away and the segment stays live;
    /// - **mid-segment corruption** (an invalid line or checksum mismatch)
    ///   moves the whole segment to `quarantine/`; its good records are
    ///   still indexed and served from there, and the store enters
    ///   degraded read-only mode.
    ///
    /// A *corrupt* segment is therefore never an error — the store always
    /// opens, and never serves a record that failed its checksum.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created
    /// or a segment cannot be read at all.
    pub fn open_with(dir: impl AsRef<Path>, mut io: Box<dyn Io>) -> std::io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        // materialize the integrity counters so `/metrics` always carries
        // them, even on a store that never sees a fault
        iis_obs::metrics::Counter::handle("store.checksum_failures");
        iis_obs::metrics::Counter::handle("store.quarantined_segments");
        iis_obs::metrics::Counter::handle("store.recovered_records");
        io.create_dir_all(&dir)?;
        let qdir = dir.join("quarantine");
        // every file holding records, in write order: live segments and
        // previously-quarantined ones interleave by segment name, so
        // first-write-wins resolves identically across restarts
        let mut scan_list: Vec<(PathBuf, bool)> = io
            .list(&dir)?
            .into_iter()
            .filter(|p| segment_number(p).is_some())
            .map(|p| (p, false))
            .collect();
        if let Ok(quarantined) = io.list(&qdir) {
            scan_list.extend(quarantined.into_iter().map(|p| (p, true)));
        }
        scan_list.sort_by(|(a, _), (b, _)| a.file_name().cmp(&b.file_name()));
        let degraded = Arc::new(AtomicBool::new(false));
        let mut files: Vec<PathBuf> = Vec::new();
        let mut index = HashMap::new();
        let mut recovery = RecoveryStats::default();
        let mut live: Option<usize> = None;
        let mut live_len = 0u64;
        let mut next_segment = scan_list
            .iter()
            .filter_map(|(p, _)| segment_number(p))
            .max()
            .map_or(0, |n| n + 1);
        for (path, was_quarantined) in &scan_list {
            let bytes = io.read(path)?;
            let scan = scan_segment(&bytes);
            recovery.checksum_failures += scan.bad_lines;
            let corrupt = scan.bad_lines > 0;
            let file_path = if *was_quarantined {
                // damage found by an earlier open: keep serving its good
                // records, and stay read-only until an operator clears
                // quarantine/ — degradation must survive a restart
                recovery.quarantined_segments += 1;
                recovery.recovered_records += scan.good.len() as u64;
                degraded.store(true, Ordering::Release);
                path.clone()
            } else if corrupt {
                // quarantine the whole segment; its good records stay
                // indexed below, served from the quarantined path
                recovery.quarantined_segments += 1;
                recovery.recovered_records += scan.good.len() as u64;
                degraded.store(true, Ordering::Release);
                let target = quarantine_target(&mut *io, &qdir, path);
                if io.create_dir_all(&qdir).is_ok() && io.rename(path, &target).is_ok() {
                    target
                } else {
                    // the move itself failed: serve from where it lies;
                    // the store is read-only either way
                    path.clone()
                }
            } else {
                if scan.torn_bytes > 0 {
                    recovery.torn_bytes += scan.torn_bytes;
                    if io.truncate(path, scan.good_len).is_err() {
                        // cannot make the tail safe to append after:
                        // keep serving the good prefix, stop writing
                        degraded.store(true, Ordering::Release);
                    }
                }
                path.clone()
            };
            let file = files.len();
            files.push(file_path);
            for (key, offset, len) in scan.good {
                if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(key) {
                    slot.insert(Loc { file, offset, len });
                    recovery.records += 1;
                } else {
                    recovery.duplicate_keys += 1;
                }
            }
            if !corrupt && !*was_quarantined {
                live = Some(file);
                live_len = bytes.len() as u64 - scan.torn_bytes;
            }
        }
        if degraded.load(Ordering::Acquire) {
            live = None;
        } else if live.is_none() {
            // no appendable segment exists (fresh dir): start a new one
            let path = segment_path(&dir, next_segment);
            io.create(&path)?;
            next_segment += 1;
            live = Some(files.len());
            files.push(path);
            live_len = 0;
        }
        iis_obs::metrics::add("store.records_indexed", recovery.records);
        if recovery.torn_bytes > 0 {
            iis_obs::metrics::add("store.torn_bytes_recovered", recovery.torn_bytes);
        }
        iis_obs::metrics::add("store.checksum_failures", recovery.checksum_failures);
        iis_obs::metrics::add("store.quarantined_segments", recovery.quarantined_segments);
        iis_obs::metrics::add("store.recovered_records", recovery.recovered_records);
        Ok(Store {
            dir,
            io,
            files,
            live,
            live_len,
            next_segment,
            index,
            recovery,
            degraded,
        })
    }

    /// The directory the store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` iff no record is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of files holding indexed records (live segments plus any
    /// quarantined ones).
    pub fn num_segments(&self) -> usize {
        self.files.len()
    }

    /// What the most recent [`Store::open`] found and fixed.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// `true` iff the store has entered degraded read-only mode: an
    /// integrity failure was detected (at open or during a read) or a
    /// failed write could not be repaired. Reads keep answering; writes
    /// are refused so a suspect disk is never appended to.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// A shared handle on the degraded flag, for health endpoints that
    /// outlive the borrow on the store itself.
    pub fn degraded_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.degraded)
    }

    /// `true` iff `key` has a record.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Reads the record stored under `key` from disk, re-checking its
    /// checksum. A record whose bytes no longer verify is dropped from the
    /// index, counted in `store.checksum_failures`, and reported as
    /// absent — corrupted bytes are never returned to a caller — and the
    /// store degrades to read-only.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the segment cannot be read.
    pub fn get(&mut self, key: u64) -> std::io::Result<Option<String>> {
        let Some(loc) = self.index.get(&key).copied() else {
            iis_obs::metrics::add("store.misses", 1);
            return Ok(None);
        };
        let bytes = self
            .io
            .read_range(&self.files[loc.file], loc.offset, loc.len)?;
        let record = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|text| decode_record(text.trim_end_matches('\n')));
        match record {
            Some((k, value, true)) if k == key => {
                iis_obs::metrics::add("store.hits", 1);
                Ok(Some(value))
            }
            _ => {
                // the bytes under an indexed record changed: treat the
                // medium as suspect — drop the record, stop writing
                self.index.remove(&key);
                self.degraded.store(true, Ordering::Release);
                iis_obs::metrics::add("store.checksum_failures", 1);
                Ok(None)
            }
        }
    }

    /// Appends a record for `key` unless one exists (**first write wins** —
    /// a present key is left untouched so earlier readers' bytes stay
    /// valid). Returns `true` iff a record was written. The line is flushed
    /// before returning, so a record acknowledged here survives a crash.
    ///
    /// On a degraded store this is a silent no-op (`Ok(false)`, counted in
    /// `store.puts_skipped_degraded`): callers keep their cold-solved
    /// answer and nothing touches the suspect disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error. A failed append may have left a
    /// partial line on disk; the store truncates back to the last good
    /// length, and if even that repair fails it degrades to read-only —
    /// either way the index never points at bytes that were not fully
    /// flushed.
    pub fn put(&mut self, key: u64, value: &str) -> std::io::Result<bool> {
        if self.index.contains_key(&key) {
            return Ok(false);
        }
        let live = match self.live {
            Some(live) if !self.degraded.load(Ordering::Acquire) => live,
            _ => {
                iis_obs::metrics::add("store.puts_skipped_degraded", 1);
                return Ok(false);
            }
        };
        let line = encode_record(key, value);
        let mut file = live;
        if self.live_len + line.len() as u64 > Self::MAX_SEGMENT_BYTES && self.live_len > 0 {
            let next = segment_path(&self.dir, self.next_segment);
            self.io.create(&next)?;
            self.next_segment += 1;
            file = self.files.len();
            self.files.push(next);
            self.live = Some(file);
            self.live_len = 0;
        }
        let path = self.files[file].clone();
        let wrote = self
            .io
            .append(&path, line.as_bytes())
            .and_then(|()| self.io.flush(&path));
        if let Err(e) = wrote {
            // the tail may hold a partial line; cut back to the last known
            // good length so later appends start on a line boundary
            if self.io.truncate(&path, self.live_len).is_err() {
                self.degraded.store(true, Ordering::Release);
                self.live = None;
            }
            return Err(e);
        }
        let loc = Loc {
            file,
            offset: self.live_len,
            len: line.len() as u64,
        };
        self.live_len += line.len() as u64;
        self.index.insert(key, loc);
        iis_obs::metrics::add("store.puts", 1);
        Ok(true)
    }

    /// Repairs a quarantine-degraded store in place: every surviving
    /// record that lives in a quarantined file is **re-encoded** into a
    /// fresh v2 (checksummed) segment — in sorted key order, so the
    /// repaired bytes are a deterministic function of the content — the
    /// quarantined files are deleted, and the sticky read-only degradation
    /// is lifted. Records already in healthy segments are left untouched.
    ///
    /// This is sound for the same reason quarantine itself is: a record is
    /// only carried over if its bytes still pass their checksum *at repair
    /// time*, so the fresh segment contains nothing the store would not
    /// have served anyway — and (first write wins) the served bytes for
    /// every key are unchanged by the move.
    ///
    /// Counted in `store.repaired_records`. Calling it on a healthy store
    /// with no quarantine is a no-op.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the store stays degraded (and
    /// consistent — the index only moves to the fresh segment once its
    /// records are flushed) if the rewrite cannot complete.
    pub fn repair(&mut self) -> std::io::Result<RepairStats> {
        let qdir = self.dir.join("quarantine");
        let quarantined: Vec<bool> = self.files.iter().map(|p| p.starts_with(&qdir)).collect();
        if !quarantined.contains(&true) && !self.degraded() {
            return Ok(RepairStats::default());
        }
        // collect the surviving records out of quarantine, re-verifying
        // each one's checksum from its current on-disk bytes
        let mut rescued: Vec<(u64, String)> = Vec::new();
        for (&key, loc) in &self.index {
            if !quarantined[loc.file] {
                continue;
            }
            let bytes = self
                .io
                .read_range(&self.files[loc.file], loc.offset, loc.len)?;
            if let Some((k, value, true)) = std::str::from_utf8(&bytes)
                .ok()
                .and_then(|text| decode_record(text.trim_end_matches('\n')))
            {
                if k == key {
                    rescued.push((key, value));
                }
            }
        }
        rescued.sort_by_key(|&(key, _)| key);
        // write them to a fresh segment (rolling over like put does), and
        // only repoint the index at offsets that are flushed
        let mut path = segment_path(&self.dir, self.next_segment);
        self.io.create(&path)?;
        self.next_segment += 1;
        let mut file = self.files.len();
        self.files.push(path.clone());
        let mut fresh: Vec<usize> = vec![file];
        let mut offset = 0u64;
        let mut moves: Vec<(u64, Loc)> = Vec::with_capacity(rescued.len());
        for (key, value) in &rescued {
            let line = encode_record(*key, value);
            if offset + line.len() as u64 > Self::MAX_SEGMENT_BYTES && offset > 0 {
                self.io.flush(&path)?;
                path = segment_path(&self.dir, self.next_segment);
                self.io.create(&path)?;
                self.next_segment += 1;
                file = self.files.len();
                self.files.push(path.clone());
                fresh.push(file);
                offset = 0;
            }
            self.io.append(&path, line.as_bytes())?;
            moves.push((
                *key,
                Loc {
                    file,
                    offset,
                    len: line.len() as u64,
                },
            ));
            offset += line.len() as u64;
        }
        self.io.flush(&path)?;
        for (key, loc) in moves {
            self.index.insert(key, loc);
        }
        // clear quarantine/ — everything worth keeping is re-encoded; the
        // rest is exactly the corrupt bytes quarantine existed to hold
        let mut removed = 0u64;
        for p in self.io.list(&qdir).unwrap_or_default() {
            self.io.remove(&p)?;
            removed += 1;
        }
        // drop the dangling quarantined entries from the file table
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.files.len());
        let mut kept: Vec<PathBuf> = Vec::new();
        for (i, p) in self.files.iter().enumerate() {
            if quarantined.get(i) == Some(&true) {
                remap.push(None);
            } else {
                remap.push(Some(kept.len()));
                kept.push(p.clone());
            }
        }
        for loc in self.index.values_mut() {
            loc.file = remap[loc.file].expect("no indexed record points into quarantine");
        }
        self.files = kept;
        // the store is writable again, appending to the repair segment
        self.live = Some(remap[*fresh.last().expect("at least one")].expect("fresh is kept"));
        self.live_len = offset;
        self.degraded.store(false, Ordering::Release);
        iis_obs::metrics::add("store.repaired_records", rescued.len() as u64);
        Ok(RepairStats {
            repaired_records: rescued.len() as u64,
            removed_files: removed,
        })
    }

    /// Flushes the live segment (a no-op on a degraded store). Every
    /// [`Store::put`] already flushes before acknowledging; this exists
    /// for drain paths that want an explicit final sync.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        match self.live {
            Some(live) => {
                let path = self.files[live].clone();
                self.io.flush(&path)
            }
            None => Ok(()),
        }
    }
}

/// The store is a [`iis_core::cache::SolveCache`], so
/// [`iis_core::cache::solve_up_to_cached`] can run straight against disk.
/// I/O errors degrade to cache misses / dropped writes — the solver must
/// keep answering when the disk does not.
impl iis_core::cache::SolveCache for Store {
    fn get(&mut self, key: u64) -> Option<String> {
        Store::get(self, key).ok().flatten()
    }

    fn put(&mut self, key: u64, value: &str) {
        let _ = Store::put(self, key, value);
    }

    fn flush(&mut self) {
        let _ = Store::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iis-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mem_store(io: &MemIo) -> Store {
        Store::open_with("/store", Box::new(io.clone())).unwrap()
    }

    #[test]
    fn roundtrip_and_first_write_wins() {
        let dir = tmp("roundtrip");
        let mut s = Store::open(&dir).unwrap();
        assert!(s.is_empty());
        assert!(s.put(7, "alpha").unwrap());
        assert!(!s.put(7, "beta").unwrap(), "second write must be ignored");
        assert_eq!(s.get(7).unwrap().as_deref(), Some("alpha"));
        assert_eq!(s.get(8).unwrap(), None);
        assert!(s.contains(7) && !s.contains(8));
        assert_eq!(s.len(), 1);
        assert!(!s.degraded());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn values_with_newlines_and_quotes_survive() {
        let dir = tmp("escaping");
        let mut s = Store::open(&dir).unwrap();
        let value = "line one\nline \"two\"\n\tline three \\ end";
        s.put(1, value).unwrap();
        assert_eq!(s.get(1).unwrap().as_deref(), Some(value));
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.get(1).unwrap().as_deref(), Some(value));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_across_reopen() {
        let dir = tmp("reopen");
        let mut s = Store::open(&dir).unwrap();
        for k in 0..50u64 {
            s.put(k, &format!("value-{k}")).unwrap();
        }
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 50);
        assert_eq!(s.recovery().records, 50);
        assert_eq!(s.recovery().torn_bytes, 0);
        for k in 0..50u64 {
            assert_eq!(s.get(k).unwrap().unwrap(), format!("value-{k}"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_the_store_stays_consistent() {
        let dir = tmp("torn");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "first").unwrap();
        s.put(2, "second").unwrap();
        drop(s);
        // crash simulation: chop one byte off the live segment, leaving a
        // complete first record and a torn second one
        let seg = segment_path(&dir, 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap();
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 1, "torn record must be dropped");
        assert_eq!(s.get(1).unwrap().as_deref(), Some("first"));
        assert_eq!(s.get(2).unwrap(), None);
        assert!(s.recovery().torn_bytes > 0);
        assert!(!s.degraded(), "a torn tail alone must not degrade");
        // the segment is truncated on a line boundary: appending works and
        // a further reopen sees both records
        s.put(3, "third").unwrap();
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(3).unwrap().as_deref(), Some("third"));
        assert_eq!(s.recovery().torn_bytes, 0, "second open is clean");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_garbage_quarantines_but_recovers_good_records() {
        let dir = tmp("garbage");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "keep-before").unwrap();
        drop(s);
        // corruption in the middle: garbage line between two good records
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(b"this is not a record\n");
        bytes.extend_from_slice(encode_record(2, "keep-after").as_bytes());
        std::fs::write(&seg, &bytes).unwrap();
        let mut s = Store::open(&dir).unwrap();
        // both good records survive — the old recovery would have dropped
        // everything after the garbage line
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().as_deref(), Some("keep-before"));
        assert_eq!(s.get(2).unwrap().as_deref(), Some("keep-after"));
        let rec = s.recovery();
        assert_eq!(rec.checksum_failures, 1);
        assert_eq!(rec.quarantined_segments, 1);
        assert_eq!(rec.recovered_records, 2);
        // the segment was moved whole into quarantine/
        assert!(!seg.exists());
        assert!(dir.join("quarantine").join("seg-00000.jsonl").exists());
        // and the store is read-only now
        assert!(s.degraded());
        assert!(!s.put(3, "refused").unwrap());
        assert_eq!(s.get(3).unwrap(), None);
        // a restart reads quarantine/: still degraded, records still served
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert!(s.degraded(), "degradation must survive a restart");
        assert_eq!(s.get(1).unwrap().as_deref(), Some("keep-before"));
        assert_eq!(s.get(2).unwrap().as_deref(), Some("keep-after"));
        assert!(!s.put(3, "still refused").unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_caught_by_the_checksum() {
        let dir = tmp("bitflip");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "pristine-value").unwrap();
        s.put(2, "other").unwrap();
        drop(s);
        // flip one bit inside the first record's value
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let pos = bytes
            .windows(8)
            .position(|w| w == b"pristine")
            .expect("value is on disk");
        bytes[pos] ^= 0x20;
        std::fs::write(&seg, &bytes).unwrap();
        let mut s = Store::open(&dir).unwrap();
        // the flipped record is quarantined with the segment; the intact
        // one is recovered and served
        assert_eq!(s.get(1).unwrap(), None, "corrupt record must not serve");
        assert_eq!(s.get(2).unwrap().as_deref(), Some("other"));
        assert!(s.recovery().checksum_failures >= 1);
        assert!(s.degraded());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_lines_start_with_the_resync_marker() {
        assert!(
            encode_record(7, "anything")
                .as_bytes()
                .starts_with(RECORD_MARKER),
            "salvage resync marker out of sync with the record encoding"
        );
    }

    #[test]
    fn corrupted_newline_only_loses_the_flipped_record() {
        let dir = tmp("mergedline");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "first-record").unwrap();
        s.put(2, "second-record").unwrap();
        s.put(3, "third-record").unwrap();
        drop(s);
        // flip the newline between record 1 and record 2: lines merge
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[nl] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
        let mut s = Store::open(&dir).unwrap();
        // record 1's framing is corrupt (trailing garbage byte) — gone;
        // records 2 and 3 are byte-intact and must both survive, record 2
        // salvaged from inside the merged bad line
        assert_eq!(s.get(1).unwrap(), None);
        assert_eq!(s.get(2).unwrap().as_deref(), Some("second-record"));
        assert_eq!(s.get(3).unwrap().as_deref(), Some("third-record"));
        assert!(s.degraded());
        assert_eq!(s.recovery().quarantined_segments, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_rescues_quarantined_records_and_lifts_degradation() {
        let dir = tmp("repair");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "keep-before").unwrap();
        drop(s);
        // corrupt the middle of the segment: a garbage line between two
        // good records, so the whole segment is quarantined on open
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(b"this is not a record\n");
        bytes.extend_from_slice(encode_record(2, "keep-after").as_bytes());
        std::fs::write(&seg, &bytes).unwrap();
        let mut s = Store::open(&dir).unwrap();
        assert!(s.degraded());
        assert_eq!(s.recovery().quarantined_segments, 1);
        let before: Vec<Option<String>> = (1..=2).map(|k| s.get(k).unwrap()).collect();

        let stats = s.repair().unwrap();
        assert_eq!(stats.repaired_records, 2, "{stats:?}");
        assert_eq!(stats.removed_files, 1, "{stats:?}");
        // zero record loss: the same keys answer with the same bytes
        assert!(!s.degraded(), "repair must lift the degradation");
        for (k, old) in (1..=2).zip(before) {
            assert_eq!(s.get(k).unwrap(), old, "record {k} changed in repair");
        }
        // the store is writable again
        assert!(s.put(3, "fresh-write").unwrap());
        assert_eq!(s.get(3).unwrap().as_deref(), Some("fresh-write"));
        // quarantine/ is empty and stays cleared across a restart: the
        // degradation was sticky, the repair must be too
        assert_eq!(
            std::fs::read_dir(dir.join("quarantine"))
                .map(|d| d.count())
                .unwrap_or(0),
            0
        );
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert!(!s.degraded(), "repair must survive a restart");
        assert_eq!(s.recovery().quarantined_segments, 0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1).unwrap().as_deref(), Some("keep-before"));
        assert_eq!(s.get(2).unwrap().as_deref(), Some("keep-after"));
        assert_eq!(s.get(3).unwrap().as_deref(), Some("fresh-write"));
        assert!(s.put(4, "still writable").unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_on_a_healthy_store_is_a_no_op() {
        let dir = tmp("repair-noop");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "value").unwrap();
        let stats = s.repair().unwrap();
        assert_eq!(stats, RepairStats::default());
        assert_eq!(s.num_segments(), 1, "no fresh segment on a no-op");
        assert_eq!(s.get(1).unwrap().as_deref(), Some("value"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_records_without_checksums_still_read() {
        let dir = tmp("v1compat");
        std::fs::create_dir_all(&dir).unwrap();
        // a first-generation line: key + value, no "sum"
        let line = format!(
            "{}\n",
            Json::obj([
                ("key", Json::Str(key_hex(9))),
                ("value", Json::Str("legacy".to_string())),
            ])
        );
        std::fs::write(segment_path(&dir, 0), line).unwrap();
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.get(9).unwrap().as_deref(), Some("legacy"));
        assert!(!s.degraded());
        // new writes use the checksummed format alongside old records
        s.put(10, "modern").unwrap();
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.get(9).unwrap().as_deref(), Some("legacy"));
        assert_eq!(s.get(10).unwrap().as_deref(), Some("modern"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_over() {
        let dir = tmp("rollover");
        let mut s = Store::open(&dir).unwrap();
        // values sized so a handful of records exceed the threshold is not
        // practical at 4 MiB; drive rollover through many medium records
        let value = "x".repeat(128 * 1024);
        for k in 0..40u64 {
            s.put(k, &value).unwrap();
        }
        assert!(s.num_segments() > 1, "expected a rollover");
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 40);
        for k in 0..40u64 {
            assert_eq!(s.get(k).unwrap().unwrap().len(), value.len());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memio_backend_matches_disk_semantics() {
        let io = MemIo::new();
        let mut s = mem_store(&io);
        s.put(1, "one").unwrap();
        s.put(2, "two").unwrap();
        drop(s);
        let mut s = mem_store(&io);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().as_deref(), Some("one"));
        assert_eq!(s.get(2).unwrap().as_deref(), Some("two"));
    }

    #[test]
    fn unflushed_tail_lost_in_a_crash_is_recovered_as_torn() {
        let mut io = MemIo::new();
        let mut s = mem_store(&io);
        s.put(1, "durable").unwrap();
        drop(s);
        // simulate an unflushed partial append (a crash mid-put would
        // leave exactly this)
        use crate::io::Io as _;
        io.append(Path::new("/store/seg-00000.jsonl"), b"{\"key\": \"00")
            .unwrap();
        io.crash(|_, unflushed| unflushed / 2);
        let mut s = mem_store(&io);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1).unwrap().as_deref(), Some("durable"));
        assert!(s.recovery().torn_bytes > 0);
        assert!(!s.degraded());
    }

    #[test]
    fn external_mutation_under_an_indexed_record_degrades_on_read() {
        let mut io = MemIo::new();
        let mut s = mem_store(&io);
        s.put(1, "value-one").unwrap();
        // corrupt the live bytes *after* open, under the running index
        use crate::io::Io as _;
        let path = Path::new("/store/seg-00000.jsonl");
        let mut bytes = io.read(path).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0x01;
        io.truncate(path, 0).unwrap();
        io.append(path, &bytes).unwrap();
        assert_eq!(s.get(1).unwrap(), None, "corrupt bytes must not serve");
        assert!(s.degraded());
        assert!(!s.put(2, "refused").unwrap());
    }

    #[test]
    fn solve_cache_impl_serves_the_core_entry_point() {
        use iis_core::cache::solve_up_to_cached;
        use iis_core::solvability::SolveOptions;
        use iis_tasks::library::approximate_agreement;
        let dir = tmp("solvecache");
        let task = approximate_agreement(1, 3);
        let cold_bytes;
        {
            let mut store = Store::open(&dir).unwrap();
            let cold = solve_up_to_cached(&task, 2, &SolveOptions::new(), &mut store);
            assert!(!cold.hit);
            cold_bytes = store.get(cold.key).unwrap().expect("record persisted");
        }
        // a different process lifetime, a different thread count: same bytes
        let mut store = Store::open(&dir).unwrap();
        let warm = solve_up_to_cached(&task, 2, &SolveOptions::new().jobs(4), &mut store);
        assert!(warm.hit, "reopened store must hit");
        assert_eq!(
            iis_core::cache::report_to_json(&warm.report).to_string(),
            cold_bytes
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
