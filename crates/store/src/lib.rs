//! `iis-store` — the persistent, content-addressed result store behind
//! `iis serve` and `iis solve --store`.
//!
//! A [`Store`] is a directory of append-only JSONL **segment files**
//! (`seg-00000.jsonl`, `seg-00001.jsonl`, …) plus an in-memory index from
//! 64-bit content keys to byte ranges. Each record is one line:
//!
//! ```text
//! {"key": "b5c5fdcbdc1fc4c6", "value": "<record bytes, JSON-escaped>"}
//! ```
//!
//! The design follows three rules, each carrying one acceptance property:
//!
//! - **First write wins.** [`Store::put`] on a present key is a no-op, so
//!   every [`Store::get`] for a key returns the same bytes for the life of
//!   the store — the bit-identity the solve service advertises (see
//!   `iis_core::cache` for why the solver's answers are content-addressable
//!   in the first place).
//! - **Append-only with torn-tail recovery.** Writes only ever append and
//!   flush one complete line. On open, each segment is scanned to the last
//!   byte that parses as a complete record; a torn tail (a crash mid-write,
//!   a truncated copy) is cut off and the store continues from the last
//!   good record — never refusing to open, never indexing garbage.
//! - **Warm across restarts.** The index is rebuilt from the segments on
//!   [`Store::open`], so a repeated request after a process restart is
//!   still a hit.
//!
//! Segments roll over at [`Store::MAX_SEGMENT_BYTES`] so no single file
//! grows without bound; the live segment is the highest-numbered one.
//!
//! # Examples
//!
//! ```
//! let dir = std::env::temp_dir().join("iis-store-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = iis_store::Store::open(&dir).unwrap();
//! let key = iis_core::cache::fnv1a64(b"question");
//! store.put(key, "answer").unwrap();
//! drop(store);
//! // a reopened store still knows the answer — and always the same bytes
//! let store = iis_store::Store::open(&dir).unwrap();
//! assert_eq!(store.get(key).unwrap().as_deref(), Some("answer"));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use iis_obs::{Json, ToJson};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Where a record's line lives on disk.
#[derive(Clone, Copy, Debug)]
struct Loc {
    /// Index into [`Store::segments`].
    segment: usize,
    /// Byte offset of the record's line start.
    offset: u64,
    /// Line length in bytes, including the trailing newline.
    len: u64,
}

/// Counters for what [`Store::open`] found and fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Complete records indexed across all segments.
    pub records: u64,
    /// Bytes of torn tail truncated from the live segment (0 on a clean
    /// open).
    pub torn_bytes: u64,
    /// Records dropped because a lower-numbered (earlier) record already
    /// held their key — can only happen if two processes appended
    /// concurrently; first write still wins deterministically.
    pub duplicate_keys: u64,
}

/// A persistent content-addressed key-value store. See the crate docs.
pub struct Store {
    dir: PathBuf,
    /// Segment file paths, sorted by segment number; the last is live.
    segments: Vec<PathBuf>,
    /// Append handle on the live segment.
    live: File,
    /// Size of the live segment in bytes.
    live_len: u64,
    index: HashMap<u64, Loc>,
    recovery: RecoveryStats,
}

/// Renders a key as the fixed-width hex used in record lines.
fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

fn parse_key_hex(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

fn segment_path(dir: &Path, n: usize) -> PathBuf {
    dir.join(format!("seg-{n:05}.jsonl"))
}

impl Store {
    /// Segment rollover threshold: an append that would grow the live
    /// segment past this many bytes starts a new segment instead.
    pub const MAX_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

    /// Opens (or creates) the store rooted at `dir`, rebuilding the index
    /// from every segment and truncating any torn tail on the live segment.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created
    /// or a segment cannot be read. A *corrupt* segment is not an error —
    /// scanning stops at the first incomplete record (see
    /// [`Store::recovery`]).
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".jsonl"))
            })
            .collect();
        segments.sort();
        if segments.is_empty() {
            segments.push(segment_path(&dir, 0));
            File::create(&segments[0])?;
        }
        let mut index = HashMap::new();
        let mut recovery = RecoveryStats::default();
        let mut live_len = 0;
        for (si, path) in segments.iter().enumerate() {
            let good = scan_segment(path, si, &mut index, &mut recovery)?;
            let disk_len = std::fs::metadata(path)?.len();
            if disk_len > good {
                // torn tail: cut the segment back to its last complete
                // record so the next append starts on a line boundary
                recovery.torn_bytes += disk_len - good;
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(good)?;
            }
            live_len = good;
        }
        let live = OpenOptions::new()
            .append(true)
            .open(segments.last().expect("at least one segment"))?;
        iis_obs::metrics::add("store.records_indexed", recovery.records);
        if recovery.torn_bytes > 0 {
            iis_obs::metrics::add("store.torn_bytes_recovered", recovery.torn_bytes);
        }
        Ok(Store {
            dir,
            segments,
            live,
            live_len,
            index,
            recovery,
        })
    }

    /// The directory the store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` iff no record is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of on-disk segment files.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// What the most recent [`Store::open`] found and fixed.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// `true` iff `key` has a record.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Reads the record stored under `key` from disk.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the segment cannot be read, or
    /// `InvalidData` if the line on disk no longer matches the index (an
    /// externally modified segment).
    pub fn get(&self, key: u64) -> std::io::Result<Option<String>> {
        let Some(loc) = self.index.get(&key) else {
            iis_obs::metrics::add("store.misses", 1);
            return Ok(None);
        };
        let mut f = File::open(&self.segments[loc.segment])?;
        f.seek(SeekFrom::Start(loc.offset))?;
        let mut line = vec![0u8; loc.len as usize];
        f.read_exact(&mut line)?;
        let text = std::str::from_utf8(&line)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 record"))?;
        let (k, value) = decode_record(text.trim_end_matches('\n')).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "indexed line is not a record",
            )
        })?;
        if k != key {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "indexed line holds a different key",
            ));
        }
        iis_obs::metrics::add("store.hits", 1);
        Ok(Some(value))
    }

    /// Appends a record for `key` unless one exists (**first write wins** —
    /// a present key is left untouched so earlier readers' bytes stay
    /// valid). Returns `true` iff a record was written. The line is flushed
    /// before returning, so a record acknowledged here survives a crash.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the index is only updated after a
    /// successful flush.
    pub fn put(&mut self, key: u64, value: &str) -> std::io::Result<bool> {
        if self.index.contains_key(&key) {
            return Ok(false);
        }
        let line = format!(
            "{}\n",
            Json::obj([("key", Json::Str(key_hex(key))), ("value", value.to_json()),])
        );
        if self.live_len + line.len() as u64 > Self::MAX_SEGMENT_BYTES && self.live_len > 0 {
            let next = segment_path(&self.dir, self.segments.len());
            File::create(&next)?;
            self.live = OpenOptions::new().append(true).open(&next)?;
            self.live_len = 0;
            self.segments.push(next);
        }
        self.live.write_all(line.as_bytes())?;
        self.live.flush()?;
        let loc = Loc {
            segment: self.segments.len() - 1,
            offset: self.live_len,
            len: line.len() as u64,
        };
        self.live_len += line.len() as u64;
        self.index.insert(key, loc);
        iis_obs::metrics::add("store.puts", 1);
        Ok(true)
    }
}

/// The store is a [`iis_core::cache::SolveCache`], so
/// [`iis_core::cache::solve_up_to_cached`] can run straight against disk.
/// I/O errors degrade to cache misses / dropped writes — the solver must
/// keep answering when the disk does not.
impl iis_core::cache::SolveCache for Store {
    fn get(&mut self, key: u64) -> Option<String> {
        Store::get(self, key).ok().flatten()
    }

    fn put(&mut self, key: u64, value: &str) {
        let _ = Store::put(self, key, value);
    }
}

/// Decodes one record line into `(key, value)`.
fn decode_record(line: &str) -> Option<(u64, String)> {
    let v = Json::parse(line).ok()?;
    let key = parse_key_hex(v.get("key")?.as_str()?)?;
    let value = v.get("value")?.as_str()?.to_string();
    Some((key, value))
}

/// Scans `path`, indexing complete records, and returns the byte offset
/// just past the last complete record (the segment's "good length").
fn scan_segment(
    path: &Path,
    segment: usize,
    index: &mut HashMap<u64, Loc>,
    recovery: &mut RecoveryStats,
) -> std::io::Result<u64> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut offset = 0u64;
    let mut line = Vec::new();
    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(offset);
        }
        if line.last() != Some(&b'\n') {
            // no trailing newline: the write was interrupted mid-line
            return Ok(offset);
        }
        let Some((key, _)) = std::str::from_utf8(&line[..n - 1])
            .ok()
            .and_then(decode_record)
        else {
            // a complete line that is not a record: treat everything from
            // here on as torn — appends only ever produce record lines
            return Ok(offset);
        };
        // first-write-wins: an earlier segment's record for this key stays
        // authoritative; later duplicates are counted but not indexed
        if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(key) {
            slot.insert(Loc {
                segment,
                offset,
                len: n as u64,
            });
            recovery.records += 1;
        } else {
            recovery.duplicate_keys += 1;
        }
        offset += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iis-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_first_write_wins() {
        let dir = tmp("roundtrip");
        let mut s = Store::open(&dir).unwrap();
        assert!(s.is_empty());
        assert!(s.put(7, "alpha").unwrap());
        assert!(!s.put(7, "beta").unwrap(), "second write must be ignored");
        assert_eq!(s.get(7).unwrap().as_deref(), Some("alpha"));
        assert_eq!(s.get(8).unwrap(), None);
        assert!(s.contains(7) && !s.contains(8));
        assert_eq!(s.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn values_with_newlines_and_quotes_survive() {
        let dir = tmp("escaping");
        let mut s = Store::open(&dir).unwrap();
        let value = "line one\nline \"two\"\n\tline three \\ end";
        s.put(1, value).unwrap();
        assert_eq!(s.get(1).unwrap().as_deref(), Some(value));
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(1).unwrap().as_deref(), Some(value));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_across_reopen() {
        let dir = tmp("reopen");
        let mut s = Store::open(&dir).unwrap();
        for k in 0..50u64 {
            s.put(k, &format!("value-{k}")).unwrap();
        }
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 50);
        assert_eq!(s.recovery().records, 50);
        assert_eq!(s.recovery().torn_bytes, 0);
        for k in 0..50u64 {
            assert_eq!(s.get(k).unwrap().unwrap(), format!("value-{k}"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_the_store_stays_consistent() {
        let dir = tmp("torn");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "first").unwrap();
        s.put(2, "second").unwrap();
        drop(s);
        // crash simulation: chop one byte off the live segment, leaving a
        // complete first record and a torn second one
        let seg = segment_path(&dir, 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap();
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 1, "torn record must be dropped");
        assert_eq!(s.get(1).unwrap().as_deref(), Some("first"));
        assert_eq!(s.get(2).unwrap(), None);
        assert!(s.recovery().torn_bytes > 0);
        // the segment is truncated on a line boundary: appending works and
        // a further reopen sees both records
        s.put(3, "third").unwrap();
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(3).unwrap().as_deref(), Some("third"));
        assert_eq!(s.recovery().torn_bytes, 0, "second open is clean");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_garbage_stops_the_scan_conservatively() {
        let dir = tmp("garbage");
        let mut s = Store::open(&dir).unwrap();
        s.put(1, "keep").unwrap();
        drop(s);
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(b"this is not a record\n");
        std::fs::write(&seg, &bytes).unwrap();
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.recovery().torn_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_over() {
        let dir = tmp("rollover");
        let mut s = Store::open(&dir).unwrap();
        // values sized so a handful of records exceed the threshold is not
        // practical at 4 MiB; drive rollover through many medium records
        let value = "x".repeat(128 * 1024);
        for k in 0..40u64 {
            s.put(k, &value).unwrap();
        }
        assert!(s.num_segments() > 1, "expected a rollover");
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 40);
        for k in 0..40u64 {
            assert_eq!(s.get(k).unwrap().unwrap().len(), value.len());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn solve_cache_impl_serves_the_core_entry_point() {
        use iis_core::cache::solve_up_to_cached;
        use iis_core::solvability::SolveOptions;
        use iis_tasks::library::approximate_agreement;
        let dir = tmp("solvecache");
        let task = approximate_agreement(1, 3);
        let cold_bytes;
        {
            let mut store = Store::open(&dir).unwrap();
            let cold = solve_up_to_cached(&task, 2, &SolveOptions::new(), &mut store);
            assert!(!cold.hit);
            cold_bytes = store.get(cold.key).unwrap().expect("record persisted");
        }
        // a different process lifetime, a different thread count: same bytes
        let mut store = Store::open(&dir).unwrap();
        let warm = solve_up_to_cached(&task, 2, &SolveOptions::new().jobs(4), &mut store);
        assert!(warm.hit, "reopened store must hit");
        assert_eq!(
            iis_core::cache::report_to_json(&warm.report).to_string(),
            cold_bytes
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
