//! The storage I/O boundary: every byte the store reads or writes goes
//! through the [`Io`] trait, so the whole durability stack can be driven
//! by a deterministic fault injector (`iis_adversary::store::FaultyIo`)
//! as easily as by the real filesystem.
//!
//! Two implementations live here:
//!
//! - [`FsIo`] — the real filesystem, used by [`crate::Store::open`];
//! - [`MemIo`] — an in-memory filesystem with explicit flush tracking and
//!   a [`MemIo::crash`] operation that models what a process or machine
//!   crash leaves behind (flushed bytes survive, an arbitrary prefix of
//!   the unflushed tail may or may not).
//!
//! The trait is deliberately segment-shaped (append/flush/truncate/rename
//! over whole files) rather than POSIX-shaped: these are exactly the
//! operations whose partial failures the store must survive, and nothing
//! else.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// The store's backend: segment-file operations, each of which may fail —
/// partially, loudly, or (for an injected bit flip) silently.
///
/// Implementations must be `Send` so a store can live behind the solve
/// service's shared cache lock.
pub trait Io: Send {
    /// Creates `dir` and any missing ancestors.
    fn create_dir_all(&mut self, dir: &Path) -> std::io::Result<()>;
    /// The files directly inside `dir` (no recursion, no directories).
    fn list(&mut self, dir: &Path) -> std::io::Result<Vec<PathBuf>>;
    /// The current length of `path` in bytes.
    fn len(&mut self, path: &Path) -> std::io::Result<u64>;
    /// The full contents of `path`.
    fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Exactly `len` bytes of `path` starting at `offset`.
    fn read_range(&mut self, path: &Path, offset: u64, len: u64) -> std::io::Result<Vec<u8>>;
    /// Creates `path` as an empty file (truncating any existing file).
    fn create(&mut self, path: &Path) -> std::io::Result<()>;
    /// Appends `bytes` to `path`. A failed append may still have persisted
    /// a prefix of `bytes` — the caller owns cleaning up the tail.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Flushes buffered appends to `path`. Only flushed bytes are
    /// guaranteed to survive a crash.
    fn flush(&mut self, path: &Path) -> std::io::Result<()>;
    /// Truncates `path` to `len` bytes.
    fn truncate(&mut self, path: &Path, len: u64) -> std::io::Result<()>;
    /// Renames `from` to `to` (the quarantine move).
    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Deletes `path` (clearing a quarantined segment after repair).
    fn remove(&mut self, path: &Path) -> std::io::Result<()>;
}

/// The real filesystem. Keeps one cached append handle (the live segment)
/// so a put does not reopen the file every time.
#[derive(Default)]
pub struct FsIo {
    /// `(path, handle)` of the most recently appended-to file.
    live: Option<(PathBuf, File)>,
}

impl FsIo {
    /// A fresh backend with no cached handle.
    pub fn new() -> FsIo {
        FsIo::default()
    }

    fn append_handle(&mut self, path: &Path) -> std::io::Result<&mut File> {
        let stale = self.live.as_ref().is_none_or(|(p, _)| p != path);
        if stale {
            let f = OpenOptions::new().create(true).append(true).open(path)?;
            self.live = Some((path.to_path_buf(), f));
        }
        Ok(&mut self.live.as_mut().expect("cached above").1)
    }

    fn drop_handle(&mut self, path: &Path) {
        if self.live.as_ref().is_some_and(|(p, _)| p == path) {
            self.live = None;
        }
    }
}

impl Io for FsIo {
    fn create_dir_all(&mut self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&mut self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_file() {
                out.push(path);
            }
        }
        Ok(out)
    }

    fn len(&mut self, path: &Path) -> std::io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: u64) -> std::io::Result<Vec<u8>> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn create(&mut self, path: &Path) -> std::io::Result<()> {
        self.drop_handle(path);
        File::create(path)?;
        Ok(())
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.append_handle(path)?.write_all(bytes)
    }

    fn flush(&mut self, path: &Path) -> std::io::Result<()> {
        self.append_handle(path)?.flush()
    }

    fn truncate(&mut self, path: &Path, len: u64) -> std::io::Result<()> {
        self.drop_handle(path);
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.drop_handle(from);
        std::fs::rename(from, to)
    }

    fn remove(&mut self, path: &Path) -> std::io::Result<()> {
        self.drop_handle(path);
        std::fs::remove_file(path)
    }
}

/// One in-memory file: its bytes and how many of them are flushed.
#[derive(Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    flushed: usize,
}

#[derive(Default)]
struct MemState {
    files: BTreeMap<PathBuf, MemFile>,
    dirs: std::collections::BTreeSet<PathBuf>,
}

/// An in-memory filesystem with flush tracking.
///
/// Clones share the same state (the handle is an `Arc`), so a "process
/// restart" is modeled by opening a second store over a clone of the same
/// `MemIo`. [`MemIo::crash`] models power loss: flushed bytes survive,
/// and the caller decides (deterministically) how much of each unflushed
/// tail does.
#[derive(Clone, Default)]
pub struct MemIo {
    state: Arc<Mutex<MemState>>,
}

fn not_found(path: &Path) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl MemIo {
    /// An empty in-memory filesystem.
    pub fn new() -> MemIo {
        MemIo::default()
    }

    fn with<T>(&self, f: impl FnOnce(&mut MemState) -> T) -> T {
        f(&mut self.state.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Simulates a crash: for every file, the flushed prefix survives and
    /// `keep_of(path, unflushed_len)` bytes of the unflushed tail are
    /// retained (clamped to the tail's length). After the crash everything
    /// still present counts as flushed — it is "on disk" now.
    pub fn crash(&self, mut keep_of: impl FnMut(&Path, usize) -> usize) {
        self.with(|st| {
            for (path, file) in st.files.iter_mut() {
                let unflushed = file.data.len() - file.flushed;
                let keep = keep_of(path, unflushed).min(unflushed);
                file.data.truncate(file.flushed + keep);
                file.flushed = file.data.len();
            }
        });
    }

    /// Total bytes across all files (test/diagnostic helper).
    pub fn total_bytes(&self) -> usize {
        self.with(|st| st.files.values().map(|f| f.data.len()).sum())
    }
}

impl Io for MemIo {
    fn create_dir_all(&mut self, dir: &Path) -> std::io::Result<()> {
        self.with(|st| {
            st.dirs.insert(dir.to_path_buf());
        });
        Ok(())
    }

    fn list(&mut self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        Ok(self.with(|st| {
            st.files
                .keys()
                .filter(|p| p.parent() == Some(dir))
                .cloned()
                .collect()
        }))
    }

    fn len(&mut self, path: &Path) -> std::io::Result<u64> {
        self.with(|st| {
            st.files
                .get(path)
                .map(|f| f.data.len() as u64)
                .ok_or_else(|| not_found(path))
        })
    }

    fn read(&mut self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.with(|st| {
            st.files
                .get(path)
                .map(|f| f.data.clone())
                .ok_or_else(|| not_found(path))
        })
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: u64) -> std::io::Result<Vec<u8>> {
        self.with(|st| {
            let file = st.files.get(path).ok_or_else(|| not_found(path))?;
            let (start, end) = (offset as usize, (offset + len) as usize);
            if end > file.data.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "read past end of file",
                ));
            }
            Ok(file.data[start..end].to_vec())
        })
    }

    fn create(&mut self, path: &Path) -> std::io::Result<()> {
        self.with(|st| {
            st.files.insert(path.to_path_buf(), MemFile::default());
        });
        Ok(())
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.with(|st| {
            st.files
                .entry(path.to_path_buf())
                .or_default()
                .data
                .extend_from_slice(bytes);
        });
        Ok(())
    }

    fn flush(&mut self, path: &Path) -> std::io::Result<()> {
        self.with(|st| {
            let file = st.files.get_mut(path).ok_or_else(|| not_found(path))?;
            file.flushed = file.data.len();
            Ok(())
        })
    }

    fn truncate(&mut self, path: &Path, len: u64) -> std::io::Result<()> {
        self.with(|st| {
            let file = st.files.get_mut(path).ok_or_else(|| not_found(path))?;
            file.data.truncate(len as usize);
            file.flushed = file.flushed.min(file.data.len());
            Ok(())
        })
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.with(|st| {
            let file = st.files.remove(from).ok_or_else(|| not_found(from))?;
            st.files.insert(to.to_path_buf(), file);
            Ok(())
        })
    }

    fn remove(&mut self, path: &Path) -> std::io::Result<()> {
        self.with(|st| {
            st.files.remove(path).ok_or_else(|| not_found(path))?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memio_models_flush_and_crash() {
        let mut io = MemIo::new();
        let p = Path::new("/s/seg-00000.jsonl");
        io.create(p).unwrap();
        io.append(p, b"flushed\n").unwrap();
        io.flush(p).unwrap();
        io.append(p, b"unflushed tail").unwrap();
        assert_eq!(io.len(p).unwrap(), 22);
        // crash keeping 4 bytes of the unflushed tail
        io.crash(|_, _| 4);
        assert_eq!(io.read(p).unwrap(), b"flushed\nunfl");
        // post-crash content counts as flushed: a second crash drops nothing
        io.crash(|_, _| 0);
        assert_eq!(io.read(p).unwrap(), b"flushed\nunfl");
    }

    #[test]
    fn memio_clones_share_state_and_rename_moves() {
        let mut a = MemIo::new();
        let mut b = a.clone();
        a.append(Path::new("/d/x"), b"hello").unwrap();
        assert_eq!(b.read(Path::new("/d/x")).unwrap(), b"hello");
        b.rename(Path::new("/d/x"), Path::new("/d/q/x")).unwrap();
        assert!(a.read(Path::new("/d/x")).is_err());
        assert_eq!(a.read(Path::new("/d/q/x")).unwrap(), b"hello");
        assert_eq!(a.list(Path::new("/d")).unwrap(), Vec::<PathBuf>::new());
        assert_eq!(b.list(Path::new("/d/q")).unwrap().len(), 1);
    }

    #[test]
    fn memio_read_range_is_bounds_checked() {
        let mut io = MemIo::new();
        let p = Path::new("/f");
        io.append(p, b"0123456789").unwrap();
        assert_eq!(io.read_range(p, 2, 3).unwrap(), b"234");
        assert!(io.read_range(p, 8, 3).is_err());
        assert!(io.read_range(Path::new("/nope"), 0, 1).is_err());
    }

    #[test]
    fn fsio_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("iis-fsio-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut io = FsIo::new();
        io.create_dir_all(&dir).unwrap();
        let p = dir.join("seg-00000.jsonl");
        io.create(&p).unwrap();
        io.append(&p, b"one\n").unwrap();
        io.flush(&p).unwrap();
        io.append(&p, b"two\n").unwrap();
        io.flush(&p).unwrap();
        assert_eq!(io.len(&p).unwrap(), 8);
        assert_eq!(io.read(&p).unwrap(), b"one\ntwo\n");
        assert_eq!(io.read_range(&p, 4, 4).unwrap(), b"two\n");
        io.truncate(&p, 4).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"one\n");
        let q = dir.join("quarantine");
        io.create_dir_all(&q).unwrap();
        io.rename(&p, &q.join("seg-00000.jsonl")).unwrap();
        assert_eq!(io.list(&dir).unwrap(), Vec::<PathBuf>::new());
        assert_eq!(io.list(&q).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
