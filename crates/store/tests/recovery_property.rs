//! Exhaustive byte-level mutation property: for a committed multi-record
//! segment, *every* truncation point and *every* single-bit flip must
//! leave `Store::open` total (no panic, no error) and must never cause the
//! store to serve a value that was not written — the FNV checksum plus
//! quarantine/salvage recovery degrade corruption to data loss, never to
//! wrong answers.

use iis_store::io::{Io, MemIo};
use iis_store::Store;
use std::collections::BTreeMap;
use std::path::Path;

const DIR: &str = "prop-store";

/// The committed workload: a handful of keys with distinctive values.
fn written() -> BTreeMap<u64, String> {
    (1u64..=5)
        .map(|k| (k, format!("value-{k}-{}", "x".repeat(k as usize * 3))))
        .collect()
}

/// Builds a pristine store over fresh in-memory I/O and returns the
/// committed segment's bytes.
fn pristine_segment() -> Vec<u8> {
    let io = MemIo::new();
    let mut store = Store::open_with(DIR, Box::new(io.clone())).unwrap();
    for (k, v) in written() {
        assert!(store.put(k, &v).unwrap());
    }
    store.flush().unwrap();
    drop(store);
    let mut io: Box<dyn Io> = Box::new(io);
    io.read(&Path::new(DIR).join("seg-00000.jsonl")).unwrap()
}

/// Opens a store over a fresh in-memory volume holding exactly `bytes` as
/// the one segment, and checks the two recovery invariants: open is total,
/// and every served value is one that was actually written for that key.
fn check_mutation(bytes: &[u8], what: &str) {
    let io = MemIo::new();
    {
        let mut io: Box<dyn Io> = Box::new(io.clone());
        let dir = Path::new(DIR);
        io.create_dir_all(dir).unwrap();
        let seg = dir.join("seg-00000.jsonl");
        io.create(&seg).unwrap();
        io.append(&seg, bytes).unwrap();
        io.flush(&seg).unwrap();
    }
    let expected = written();
    let mut store = match Store::open_with(DIR, Box::new(io)) {
        Ok(store) => store,
        Err(e) => panic!("{what}: open must survive any mutation, got {e}"),
    };
    for (&k, v) in &expected {
        match store.get(k) {
            Ok(None) | Err(_) => {} // lost to corruption: acceptable
            Ok(Some(served)) => {
                assert_eq!(
                    &served, v,
                    "{what}: served a value never written for key {k}"
                );
            }
        }
    }
}

#[test]
fn every_truncation_recovers_without_panics_or_phantom_values() {
    let bytes = pristine_segment();
    for cut in 0..=bytes.len() {
        check_mutation(&bytes[..cut], &format!("truncate at {cut}"));
    }
}

#[test]
fn every_single_bit_flip_recovers_without_panics_or_phantom_values() {
    let bytes = pristine_segment();
    for index in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[index] ^= 1 << bit;
            check_mutation(&mutated, &format!("flip bit {bit} of byte {index}"));
        }
    }
}
