//! The wait-free solvability decision procedure — Proposition 3.1 made
//! effective for a fixed number of rounds.
//!
//! A bounded-input task `T = (I, O, Δ)` is wait-free solvable in the IIS
//! model iff for some `b` there is a color-preserving simplicial map
//! `δ : SDS^b(I) → O` with `δ(s) ∈ Δ(carrier(s))` for every simplex `s`
//! (Proposition 3.1); by the emulation theorem (§4) the same condition
//! characterizes the atomic snapshot model. Solvability over *all* `b` is
//! undecidable for three or more processes (\[9\]), so this module decides
//! the fixed-`b` question exactly and sweeps `b = 0..=max`.
//!
//! The search is a finite CSP: one variable per vertex of `SDS^b(I)`
//! (domain: output vertices of the same color allowed at the vertex's
//! carrier), one constraint per simplex (the image must extend to a tuple
//! in `Δ` of the simplex's carrier). We run generalized arc consistency to
//! a fixpoint, then backtrack with propagation — complete for both
//! solvable and unsolvable instances.

pub use crate::csp::Kernel;
use crate::csp::{CompiledTable, ConstraintCache};
use crate::parallel::{run_pool, FirstWins, SharedBudget};
use iis_tasks::Task;
use iis_topology::arena::ArenaSds;
use iis_topology::{sds_iterated, sds_next, Color, Simplex, SimplicialMap, Subdivision, VertexId};
use std::fmt;
use std::sync::Arc;

/// A witness that a task is solvable in `b` IIS rounds: the decision map
/// `δ : SDS^b(I) → O` together with the subdivision it lives on.
#[derive(Clone, Debug)]
pub struct DecisionMap {
    b: usize,
    // shared, not owned: warm cache replays hand out one memoized
    // `SDS^b(I)` to every witness loaded against it
    subdivision: Arc<Subdivision>,
    map: SimplicialMap,
}

impl DecisionMap {
    /// Reassembles a witness from its parts (the persistent-cache load
    /// path). The caller is responsible for semantic validation — see
    /// [`crate::cache::report_from_json`], which rebuilds the subdivision
    /// from the task itself and re-validates the map, so a corrupted store
    /// can never smuggle in an ill-formed witness.
    pub(crate) fn from_parts(b: usize, subdivision: Arc<Subdivision>, map: SimplicialMap) -> Self {
        DecisionMap {
            b,
            subdivision,
            map,
        }
    }

    /// The number of IIS rounds.
    pub fn rounds(&self) -> usize {
        self.b
    }

    /// The subdivision `SDS^b(I)` the map is defined on.
    pub fn subdivision(&self) -> &Subdivision {
        &self.subdivision
    }

    /// The vertex map `δ`.
    pub fn map(&self) -> &SimplicialMap {
        &self.map
    }
}

/// The outcome of sweeping `b = 0..=max_rounds`.
#[derive(Debug)]
pub struct SolvabilityReport {
    task_name: String,
    results: Vec<(usize, bool)>,
    witness: Option<DecisionMap>,
}

impl SolvabilityReport {
    /// Reassembles a report from its parts (the persistent-cache load path;
    /// see [`crate::cache`]).
    pub(crate) fn from_parts(
        task_name: String,
        results: Vec<(usize, bool)>,
        witness: Option<DecisionMap>,
    ) -> Self {
        SolvabilityReport {
            task_name,
            results,
            witness,
        }
    }

    /// The task's name.
    pub fn task_name(&self) -> &str {
        &self.task_name
    }

    /// Per-`b` verdicts, in increasing `b`.
    pub fn results(&self) -> &[(usize, bool)] {
        &self.results
    }

    /// The smallest `b` at which a decision map exists, if any was found.
    pub fn first_solvable(&self) -> Option<usize> {
        self.results.iter().find(|(_, ok)| *ok).map(|(b, _)| *b)
    }

    /// The decision map at `first_solvable`, if any.
    pub fn witness(&self) -> Option<&DecisionMap> {
        self.witness.as_ref()
    }
}

impl fmt::Display for SolvabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.first_solvable() {
            Some(b) => write!(f, "{}: solvable at b = {b}", self.task_name),
            None => {
                let max = self.results.last().map(|(b, _)| *b).unwrap_or(0);
                write!(f, "{}: no decision map up to b = {max}", self.task_name)
            }
        }
    }
}

/// Validates a decision map against Proposition 3.1's conditions:
/// simpliciality, color preservation, and `δ(s) ∈ Δ(carrier(s))` for every
/// simplex of the subdivision.
///
/// # Errors
///
/// Returns a description of the first violated condition.
pub fn validate_decision_map(
    task: &Task,
    sub: &Subdivision,
    map: &SimplicialMap,
) -> Result<(), String> {
    let c = sub.complex();
    map.verify_simplicial(c, task.output())
        .map_err(|e| format!("not simplicial: {e}"))?;
    for v in c.vertex_ids() {
        let w = map.image(v).ok_or_else(|| format!("vertex {v} unmapped"))?;
        if c.color(v) != task.output().color(w) {
            return Err(format!("vertex {v} changes color"));
        }
    }
    let mut violation = None;
    c.for_each_simplex(|s| {
        if violation.is_some() {
            return;
        }
        let carrier = sub.carrier_of_simplex(s);
        let image = map.image_simplex(s);
        if !task.allows(&carrier, &image) {
            violation = Some(format!(
                "simplex {s} (carrier {carrier}) decides {image} ∉ Δ(carrier)"
            ));
        }
    });
    match violation {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Arena twin of [`validate_decision_map`]: checks the same Proposition 3.1
/// conditions against the flat `SDS^b(I)` tower without materializing the
/// `BTreeSet`-based face poset — the fast revalidation path behind
/// [`crate::cache::report_from_json`].
///
/// Accept/reject behavior is identical to the reference validator:
/// totality, image range, and color preservation are per-vertex checks, and
/// `δ(s) ∈ Δ(carrier(s))` is checked for every non-empty vertex subset of
/// every facet (carriers composed by the subset recurrence
/// `c[m] = c[m∖low] ∪ c[low]`). Simpliciality needs no separate pass: a
/// task's `Δ` images are simplices of `O`, so `δ(s) ∈ Δ(carrier(s))`
/// already places every image in the output complex. Shared faces are
/// checked once per containing facet; the repeats are harmless and cheaper
/// than deduplication.
///
/// # Errors
///
/// Returns a description of the first violated condition.
pub fn validate_decision_map_arena(
    task: &Task,
    arena: &ArenaSds,
    map: &SimplicialMap,
) -> Result<(), String> {
    let out = task.output();
    let c = arena.complex();
    // Totality, image range, color preservation — and a dense image table
    // for the facet walk.
    let mut image: Vec<VertexId> = Vec::with_capacity(c.num_vertices());
    for v in 0..c.num_vertices() as u32 {
        let vid = VertexId(v);
        let w = map
            .image(vid)
            .ok_or_else(|| format!("vertex {vid} unmapped"))?;
        if w.index() >= out.num_vertices() {
            return Err(format!("not simplicial: image vertex {w} not in target"));
        }
        if c.color(v) != out.color(w) {
            return Err(format!("vertex {vid} changes color"));
        }
        image.push(w);
    }
    let mut carriers: Vec<Simplex> = Vec::new();
    let mut img_buf: Vec<VertexId> = Vec::new();
    for fi in 0..c.num_facets() {
        let fv = c.facet(fi);
        let n = fv.len();
        if carriers.len() < 1 << n {
            carriers.resize(1 << n, Simplex::empty());
        }
        for m in 1usize..(1 << n) {
            let low = m & m.wrapping_neg();
            let rest = m & (m - 1);
            let lowv = fv[low.trailing_zeros() as usize];
            let low_carrier = Simplex::new(arena.carrier(lowv).iter().map(|&u| VertexId(u)));
            carriers[m] = if rest == 0 {
                low_carrier
            } else {
                carriers[rest].union(&low_carrier)
            };
            img_buf.clear();
            let mut bits = m;
            while bits != 0 {
                img_buf.push(image[fv[bits.trailing_zeros() as usize] as usize]);
                bits &= bits - 1;
            }
            let img = Simplex::new(img_buf.iter().copied());
            if !task.allows(&carriers[m], &img) {
                return Err(format!(
                    "simplex of facet {fi} (carrier {}) decides {img} ∉ Δ(carrier)",
                    carriers[m]
                ));
            }
        }
    }
    Ok(())
}

/// Searches for a decision map on `SDS^b(I)`. Returns the witness if the
/// task is solvable in exactly `b` IIS rounds, `None` if provably no map
/// exists at this `b`.
///
/// Complete but potentially exponential on *unsolvable* instances whose
/// contradiction is global (e.g. Sperner-parity obstructions at large `b`);
/// use [`solve_at_bounded`] when a time budget matters, and the Sperner
/// certificate (`iis-topology::sperner`) for all-`b` impossibility of set
/// consensus.
///
/// # Examples
///
/// ```
/// use iis_core::solvability::solve_at;
/// use iis_tasks::library::{approximate_agreement, consensus};
///
/// // FLP: no decision map for consensus at b = 1 …
/// assert!(solve_at(&consensus(1, &[0, 1]), 1).is_none());
/// // … but ε-agreement (ε = 1/3) has one: a single round trisects the edge.
/// let witness = solve_at(&approximate_agreement(1, 3), 1).unwrap();
/// assert_eq!(witness.rounds(), 1);
/// ```
pub fn solve_at(task: &Task, b: usize) -> Option<DecisionMap> {
    match solve_at_bounded(task, b, u64::MAX) {
        BoundedOutcome::Solvable(m) => Some(*m),
        BoundedOutcome::Unsolvable => None,
        BoundedOutcome::Exhausted => unreachable!("unbounded budget"),
        BoundedOutcome::TimedOut => unreachable!("no timeout configured"),
    }
}

/// Outcome of a budgeted decision-map search.
#[derive(Debug)]
pub enum BoundedOutcome {
    /// A decision map was found.
    Solvable(Box<DecisionMap>),
    /// The search space was exhausted: provably no map at this `b`.
    Unsolvable,
    /// The node budget ran out before the search completed.
    Exhausted,
    /// The wall-clock timeout ([`SolveOptions::timeout`]) elapsed before the
    /// search completed. Like [`Exhausted`](BoundedOutcome::Exhausted), this
    /// verdict is **inconclusive** — it says nothing about solvability at
    /// this `b`, and in particular is *not* an `Unsolvable` verdict.
    TimedOut,
}

/// Like [`solve_at`] but giving up after exploring `max_nodes` backtracking
/// nodes. `Unsolvable` and `Solvable` verdicts are exact; `Exhausted` means
/// the budget was too small to decide.
///
/// # Examples
///
/// ```
/// use iis_core::solvability::{solve_at_bounded, BoundedOutcome};
/// use iis_tasks::library::approximate_agreement;
///
/// let task = approximate_agreement(1, 3);
/// // A zero budget cannot even confirm a witness …
/// assert!(matches!(
///     solve_at_bounded(&task, 1, 0),
///     BoundedOutcome::Exhausted
/// ));
/// // … an ample budget decides the round exactly.
/// assert!(matches!(
///     solve_at_bounded(&task, 1, u64::MAX),
///     BoundedOutcome::Solvable(_)
/// ));
/// ```
pub fn solve_at_bounded(task: &Task, b: usize, max_nodes: u64) -> BoundedOutcome {
    solve_at_with(task, b, max_nodes, SearchStrategy::Mac)
}

/// The search algorithm used by the decision procedure — exposed for the
/// ablation benchmark (DESIGN.md §5).
///
/// # Examples
///
/// Both strategies are complete, so they always agree on the verdict:
///
/// ```
/// use iis_core::solvability::{solve_at_with, BoundedOutcome, SearchStrategy};
/// use iis_tasks::library::consensus;
///
/// let task = consensus(1, &[0, 1]);
/// for strategy in [SearchStrategy::Mac, SearchStrategy::PlainBacktracking] {
///     assert!(matches!(
///         solve_at_with(&task, 1, u64::MAX, strategy),
///         BoundedOutcome::Unsolvable
///     ));
/// }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchStrategy {
    /// Maintaining (generalized) arc consistency during backtracking — the
    /// default, and dramatically faster on refutations.
    #[default]
    Mac,
    /// Chronological backtracking with constraint checks only — the naive
    /// baseline.
    PlainBacktracking,
}

/// [`solve_at_bounded`] with an explicit [`SearchStrategy`].
pub fn solve_at_with(
    task: &Task,
    b: usize,
    max_nodes: u64,
    strategy: SearchStrategy,
) -> BoundedOutcome {
    solve_at_opts(
        task,
        b,
        &SolveOptions::new().budget(max_nodes).strategy(strategy),
    )
}

/// Configuration of a decision-map search: node budget, algorithm, and
/// degree of parallelism.
///
/// The default is an unbounded sequential MAC search — exactly
/// [`solve_at`]'s behavior.
///
/// # Examples
///
/// A parallel search returns the same classification *and the same witness*
/// as the sequential one (DESIGN.md §7):
///
/// ```
/// use iis_core::solvability::{solve_at_opts, BoundedOutcome, SolveOptions};
/// use iis_tasks::library::approximate_agreement;
///
/// let task = approximate_agreement(1, 3);
/// let seq = solve_at_opts(&task, 1, &SolveOptions::new());
/// let par = solve_at_opts(&task, 1, &SolveOptions::new().jobs(4));
/// match (seq, par) {
///     (BoundedOutcome::Solvable(s), BoundedOutcome::Solvable(p)) => {
///         let mut vs = s.subdivision().complex().vertex_ids();
///         assert!(vs.all(|v| s.map().image(v) == p.map().image(v)));
///     }
///     _ => panic!("ε-agreement is solvable at b = 1"),
/// }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    pub(crate) max_nodes: u64,
    pub(crate) strategy: SearchStrategy,
    pub(crate) jobs: usize,
    pub(crate) kernel: Kernel,
    pub(crate) timeout: Option<std::time::Duration>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: u64::MAX,
            strategy: SearchStrategy::Mac,
            jobs: 1,
            kernel: Kernel::Compiled,
            timeout: None,
        }
    }
}

impl SolveOptions {
    /// Unbounded, sequential, MAC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gives up after exploring `max_nodes` backtracking nodes
    /// ([`BoundedOutcome::Exhausted`]).
    pub fn budget(mut self, max_nodes: u64) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Selects the search algorithm.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Distributes the search over up to `jobs` worker threads (`0` and `1`
    /// both mean sequential). Verdicts and witnesses do not depend on this
    /// value; only wall-clock time does.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Selects the CSP engine ([`Kernel::Compiled`] by default). Verdicts,
    /// witnesses, and node accounting do not depend on this value; only
    /// speed does.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Gives up after `timeout` of wall-clock time
    /// ([`BoundedOutcome::TimedOut`]). Both kernels poll the clock in their
    /// node loop (every 64 budget charges), so the search stops promptly
    /// even deep inside a subtree. Like the node budget, the timeout applies
    /// **per round**; a timed-out round is inconclusive, not `Unsolvable`.
    pub fn timeout(mut self, timeout: std::time::Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// [`solve_at_bounded`] with full [`SolveOptions`] control (budget,
/// strategy, and parallelism).
pub fn solve_at_opts(task: &Task, b: usize, opts: &SolveOptions) -> BoundedOutcome {
    let sub = sds_iterated(task.input(), b);
    solve_on(task, &sub, b, opts, &mut ConstraintCache::default())
}

/// The shared per-round body: search `sub` (= `SDS^b(I)`) under `opts`,
/// with instrumentation.
fn solve_on(
    task: &Task,
    sub: &Subdivision,
    b: usize,
    opts: &SolveOptions,
    cache: &mut ConstraintCache,
) -> BoundedOutcome {
    let timer = iis_obs::span::span("solve.search_ns");
    iis_obs::progress::solve_round_started(task.name(), b as u64, opts.max_nodes);
    // the round span is the top of this round's causal profile tree; its
    // sample carries the whole round's node count and wall time
    let round_span =
        iis_obs::profile::register(iis_obs::profile::SpanId::ROOT, &format!("round:{b}"));
    let profile_t0 = profile_now();
    let budget = SharedBudget::new(opts.max_nodes);
    let deadline = opts.timeout.map(|t| std::time::Instant::now() + t);
    let result = search_map(task, sub, &budget, deadline, opts, cache, round_span);
    if let Some(t0) = profile_t0 {
        iis_obs::profile::sample(
            round_span,
            1,
            opts.max_nodes.saturating_sub(budget.remaining()),
            t0.elapsed().as_nanos() as u64,
        );
    }
    iis_obs::progress::solve_round_finished();
    iis_obs::metrics::gauge_set(
        "solve.budget_remaining",
        i64::try_from(budget.remaining()).unwrap_or(i64::MAX),
    );
    if iis_obs::trace::active() {
        iis_obs::trace::event(
            "solve.round",
            task.name(),
            &[
                ("b", iis_obs::Json::Num(b as f64)),
                (
                    "outcome",
                    iis_obs::Json::Str(
                        match &result {
                            Ok(Some(_)) => "solvable",
                            Ok(None) => "unsolvable",
                            Err(Halt::Timeout) => "timed_out",
                            Err(_) => "exhausted",
                        }
                        .to_string(),
                    ),
                ),
                (
                    "nodes",
                    iis_obs::Json::Num(opts.max_nodes.saturating_sub(budget.remaining()) as f64),
                ),
            ],
        );
    }
    drop(timer);
    match result {
        Ok(Some(map)) => {
            debug_assert!(validate_decision_map(task, sub, &map).is_ok());
            BoundedOutcome::Solvable(Box::new(DecisionMap {
                b,
                subdivision: Arc::new(sub.clone()),
                map,
            }))
        }
        Ok(None) => BoundedOutcome::Unsolvable,
        Err(Halt::Timeout) => BoundedOutcome::TimedOut,
        Err(_) => BoundedOutcome::Exhausted,
    }
}

/// An incremental round-by-round solver: each [`step`](Solver::step)
/// decides one more round count, extending `SDS^b(I)` to `SDS^{b+1}(I)` by
/// a *single* subdivision (Lemma 3.3 via [`iis_topology::sds_next`]) and
/// reusing compiled constraint tables whose carriers are unchanged —
/// instead of rebuilding everything from scratch per round the way repeated
/// [`solve_at`] calls would.
///
/// The node budget in the options applies per round.
///
/// # Examples
///
/// ```
/// use iis_core::solvability::{BoundedOutcome, SolveOptions, Solver};
/// use iis_tasks::library::approximate_agreement;
///
/// let task = approximate_agreement(1, 3);
/// let mut solver = Solver::new(&task, SolveOptions::new());
/// assert!(matches!(solver.step(), BoundedOutcome::Unsolvable)); // b = 0
/// assert!(matches!(solver.step(), BoundedOutcome::Solvable(_))); // b = 1
/// assert_eq!(solver.round(), 1);
/// ```
pub struct Solver<'t> {
    task: &'t Task,
    opts: SolveOptions,
    acc: Subdivision,
    b: usize,
    started: bool,
    cache: ConstraintCache,
}

impl<'t> Solver<'t> {
    /// A solver for `task`, positioned before round `b = 0`.
    pub fn new(task: &'t Task, opts: SolveOptions) -> Self {
        Solver {
            task,
            opts,
            acc: Subdivision::identity(task.input().clone()),
            b: 0,
            started: false,
            cache: ConstraintCache::default(),
        }
    }

    /// The round count the most recent [`step`](Solver::step) decided
    /// (`0` before any step).
    pub fn round(&self) -> usize {
        self.b
    }

    /// Decides the next round count and returns its outcome.
    pub fn step(&mut self) -> BoundedOutcome {
        if self.started {
            self.acc = sds_next(&self.acc);
            self.b += 1;
        } else {
            self.started = true;
        }
        solve_on(self.task, &self.acc, self.b, &self.opts, &mut self.cache)
    }
}

/// Sweeps `b = 0..=max_rounds`, recording per-`b` solvability; stops the
/// sweep at the first solvable `b` (larger `b` remain solvable by running
/// the extra rounds obliviously).
///
/// The sweep is incremental: round `b+1` reuses round `b`'s subdivision
/// (see [`Solver`]).
pub fn solve_up_to(task: &Task, max_rounds: usize) -> SolvabilityReport {
    solve_up_to_opts(task, max_rounds, &SolveOptions::new())
}

/// [`solve_up_to`] with explicit [`SolveOptions`]. If a round exhausts its
/// node budget or wall-clock timeout the sweep stops without recording a
/// verdict for that round (an `Exhausted` or `TimedOut` round decides
/// nothing about larger `b` either).
pub fn solve_up_to_opts(task: &Task, max_rounds: usize, opts: &SolveOptions) -> SolvabilityReport {
    let mut results = Vec::new();
    let mut witness = None;
    let mut solver = Solver::new(task, *opts);
    for b in 0..=max_rounds {
        match solver.step() {
            BoundedOutcome::Solvable(w) => {
                results.push((b, true));
                witness = Some(*w);
                break;
            }
            BoundedOutcome::Unsolvable => results.push((b, false)),
            BoundedOutcome::Exhausted | BoundedOutcome::TimedOut => break,
        }
    }
    SolvabilityReport {
        task_name: task.name().to_string(),
        results,
        witness,
    }
}

/// One constraint of the *reference engine*: a simplex of the subdivision,
/// compiled to its vertex list and the shared [`CompiledTable`] whose
/// `allowed` field holds the legal image tuples (the restrictions of
/// `Δ(carrier)` to the simplex's colors, aligned positionally with the
/// vertex list). The table cache itself lives in [`crate::csp`] and is
/// shared with the compiled kernel.
struct Constraint {
    verts: Vec<VertexId>,
    table: Arc<CompiledTable>,
}

/// Lifts a decision map one round up: composes the canonical
/// "forget-the-last-round" map `SDS^{b+1}(I) → SDS^b(I)`
/// ([`iis_topology::sds_forget_map`]) with the witness — the constructive
/// proof that solvability at `b` implies solvability at `b+1` (processes
/// run one extra oblivious round).
///
/// The lifted map is re-validated in debug builds.
pub fn lift_decision_map(task: &Task, dm: &DecisionMap) -> DecisionMap {
    let (finer, coarser, forget) = iis_topology::sds_forget_map(task.input(), dm.rounds());
    // translate the witness's subdivision vertex ids into `coarser`'s
    // (labels are canonical, so the lookup is exact)
    let translated = SimplicialMap::from_fn(coarser.complex(), |v| {
        let w = dm
            .subdivision()
            .complex()
            .vertex_id(coarser.complex().color(v), coarser.complex().label(v))
            .expect("same construction, same labels");
        dm.map().image(w).expect("decision map is total")
    });
    let lifted = forget.then(&translated);
    debug_assert!(validate_decision_map(task, &finer, &lifted).is_ok());
    DecisionMap {
        b: dm.rounds() + 1,
        subdivision: Arc::new(finer),
        map: lifted,
    }
}

/// An executable protocol induced by a [`DecisionMap`]: run the map's
/// number of full-information IIS rounds, locate the resulting local state
/// as a vertex of `SDS^b(I)`, and decide its image — the constructive half
/// of Proposition 3.1 for *any* task.
///
/// The output is a vertex id of the task's output complex.
///
/// # Examples
///
/// ```
/// use iis_core::solvability::{solve_at, DecisionProtocol};
/// use iis_sched::{IisRunner, IisSchedule};
/// use iis_tasks::library::approximate_agreement;
/// use iis_topology::{Color, Label};
/// use std::sync::Arc;
///
/// let task = approximate_agreement(1, 3);
/// let witness = Arc::new(solve_at(&task, 1).expect("solvable at one round"));
/// let machines = vec![
///     DecisionProtocol::new(Color(0), Label::scalar(0), Arc::clone(&witness)),
///     DecisionProtocol::new(Color(1), Label::scalar(3), Arc::clone(&witness)),
/// ];
/// let mut runner = IisRunner::new(machines);
/// runner.run(IisSchedule::lockstep(2, 1));
/// assert!(runner.output(0).is_some() && runner.output(1).is_some());
/// ```
pub struct DecisionProtocol {
    color: iis_topology::Color,
    state: iis_topology::Label,
    witness: std::sync::Arc<DecisionMap>,
}

impl DecisionProtocol {
    /// A machine for the process of the given color and input label.
    pub fn new(
        color: iis_topology::Color,
        input: iis_topology::Label,
        witness: std::sync::Arc<DecisionMap>,
    ) -> Self {
        DecisionProtocol {
            color,
            state: input,
            witness,
        }
    }

    fn decide(&self) -> VertexId {
        let c = self.witness.subdivision().complex();
        let v = c
            .vertex_id(self.color, &self.state)
            .expect("full-information state is a vertex of SDS^b(I)");
        self.witness.map().image(v).expect("decision map is total")
    }
}

impl iis_sched::IisMachine for DecisionProtocol {
    type Value = iis_topology::Label;
    type Output = VertexId;

    fn initial_value(&mut self) -> iis_topology::Label {
        self.state.clone()
    }

    fn on_view(
        &mut self,
        round: usize,
        view: &[(usize, iis_topology::Label)],
    ) -> iis_sched::MachineStep<iis_topology::Label, VertexId> {
        if self.witness.rounds() == 0 {
            return iis_sched::MachineStep::Decide(self.decide());
        }
        self.state = iis_topology::Label::view(
            view.iter()
                .map(|(p, l)| (iis_topology::Color(*p as u32), l)),
        );
        if round + 1 >= self.witness.rounds() {
            iis_sched::MachineStep::Decide(self.decide())
        } else {
            iis_sched::MachineStep::Continue(self.state.clone())
        }
    }
}

/// The CSP engine: variables = subdivision vertices, constraints = simplex
/// carriers with precompiled allowed tuples.
struct Csp {
    constraints: Vec<Constraint>,
    /// For each vertex, the indices of constraints containing it.
    containing: Vec<Vec<usize>>,
    /// Search nodes charged against the budget (`solve.nodes`).
    nodes: iis_obs::metrics::Counter,
    /// Dead ends where every candidate failed (`solve.backtracks`).
    backtracks: iis_obs::metrics::Counter,
    /// Domain values removed by propagation (`solve.prunes`).
    prunes: iis_obs::metrics::Counter,
    /// Constraint revisions performed (`solve.propagations`).
    propagations: iis_obs::metrics::Counter,
}

/// Why a search stopped before reaching a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Halt {
    /// The shared node budget ran out.
    Budget,
    /// A lower-indexed subtree already found the winning witness.
    Cancelled,
    /// The wall-clock deadline passed.
    Timeout,
}

/// Per-worker search context: the shared budget, the optional wall-clock
/// deadline, plus (in parallel runs) this worker's subtree index and the
/// first-solution cell to poll. Shared by both engines so the charging
/// discipline is identical.
pub(crate) struct SearchCtx<'a> {
    pub(crate) budget: &'a SharedBudget,
    deadline: Option<std::time::Instant>,
    /// Charges since construction, used to poll the clock only every 64th
    /// node (clock reads are much slower than the atomic budget charge).
    ticks: std::cell::Cell<u32>,
    /// Successful charges through this context — the nodes this worker
    /// (subtree) spent, attributed to its profile span.
    spent: std::cell::Cell<u64>,
    pub(crate) cancel: Option<(&'a FirstWins<Vec<VertexId>>, usize)>,
}

impl<'a> SearchCtx<'a> {
    /// A context charging `budget`, stopping at `deadline`, and (for
    /// parallel workers) polling `cancel`.
    pub(crate) fn new(
        budget: &'a SharedBudget,
        deadline: Option<std::time::Instant>,
        cancel: Option<(&'a FirstWins<Vec<VertexId>>, usize)>,
    ) -> Self {
        SearchCtx {
            budget,
            deadline,
            ticks: std::cell::Cell::new(0),
            spent: std::cell::Cell::new(0),
            cancel,
        }
    }

    /// Nodes charged successfully through this context.
    pub(crate) fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Charges one node, or reports why the search must stop. `solve.nodes`
    /// is incremented iff the charge succeeds, so on exhaustion the counter
    /// equals the budget consumed exactly — across all workers. The
    /// deadline is polled on the first charge and every 64th thereafter.
    pub(crate) fn charge(&self, nodes: &iis_obs::metrics::Counter) -> Result<(), Halt> {
        if let Some((cell, index)) = self.cancel {
            if cell.should_cancel(index) {
                return Err(Halt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            let t = self.ticks.get().wrapping_add(1);
            self.ticks.set(t);
            if t & 63 == 1 && std::time::Instant::now() >= deadline {
                return Err(Halt::Timeout);
            }
        }
        if !self.budget.try_charge() {
            return Err(Halt::Budget);
        }
        self.spent.set(self.spent.get() + 1);
        nodes.incr();
        iis_obs::progress::charge_node();
        Ok(())
    }
}

/// `Some(now)` iff span profiling is on — the pattern every sampled phase
/// uses so that a disabled profiler never reads the clock.
pub(crate) fn profile_now() -> Option<std::time::Instant> {
    iis_obs::profile::enabled().then(std::time::Instant::now)
}

/// Compiles the CSP for `sub`: per-simplex constraints with allowed-tuple
/// tables (via `cache`) and initial domains from the unary constraints.
/// `None` means a constraint admits no tuple — provably unsolvable.
fn compile_csp(
    task: &Task,
    sub: &Subdivision,
    cache: &mut ConstraintCache,
) -> Option<(Csp, Vec<Vec<VertexId>>)> {
    let c = sub.complex();
    let nv = c.num_vertices();
    // Compile constraints: for every simplex, the allowed image tuples.
    // A color-preserving image of a simplex with distinct colors is a
    // same-size tuple, and it extends to Δ(carrier) iff it equals the
    // restriction of some allowed output tuple to the simplex's colors.
    let mut constraints: Vec<Constraint> = Vec::new();
    let mut empty_table = false;
    c.for_each_simplex(|s| {
        if empty_table {
            return;
        }
        let verts: Vec<VertexId> = s.iter().collect();
        let colors: Vec<Color> = verts.iter().map(|&v| c.color(v)).collect();
        let carrier = sub.carrier_of_simplex(s);
        let table = cache.table(task, &carrier, &colors);
        if table.allowed.is_empty() {
            empty_table = true;
            return;
        }
        constraints.push(Constraint { verts, table });
    });
    if empty_table {
        return None;
    }
    let mut containing: Vec<Vec<usize>> = vec![Vec::new(); nv];
    for (i, con) in constraints.iter().enumerate() {
        for &v in &con.verts {
            containing[v.index()].push(i);
        }
    }
    // initial domains from the unary (vertex) constraints
    let mut domains: Vec<Vec<VertexId>> = vec![Vec::new(); nv];
    for con in &constraints {
        if con.verts.len() == 1 {
            let v = con.verts[0];
            let mut dom: Vec<VertexId> = con.table.allowed.iter().map(|t| t[0]).collect();
            dom.sort();
            dom.dedup();
            domains[v.index()] = dom;
        }
    }
    if domains.iter().any(Vec::is_empty) {
        return None;
    }
    let csp = Csp {
        constraints,
        containing,
        nodes: iis_obs::metrics::Counter::handle("solve.nodes"),
        backtracks: iis_obs::metrics::Counter::handle("solve.backtracks"),
        prunes: iis_obs::metrics::Counter::handle("solve.prunes"),
        propagations: iis_obs::metrics::Counter::handle("solve.propagations"),
    };
    Some((csp, domains))
}

/// Dispatches the search to the selected engine. Both paths explore the
/// same tree in the same order; see [`crate::csp`] for the determinism
/// argument.
fn search_map(
    task: &Task,
    sub: &Subdivision,
    budget: &SharedBudget,
    deadline: Option<std::time::Instant>,
    opts: &SolveOptions,
    cache: &mut ConstraintCache,
    round: iis_obs::profile::SpanId,
) -> Result<Option<SimplicialMap>, Halt> {
    if opts.kernel == Kernel::Compiled {
        return crate::csp::search_map(task, sub, budget, deadline, opts, cache, round);
    }
    let compile_t0 = profile_now();
    let compiled = compile_csp(task, sub, cache);
    if let Some(t0) = compile_t0 {
        iis_obs::profile::sample_under(round, "compile", 2, 0, t0.elapsed().as_nanos() as u64);
    }
    let Some((csp, mut domains)) = compiled else {
        return Ok(None);
    };
    let ctx = SearchCtx::new(budget, deadline, None);
    // sequential searches sample one `search` leaf under the round; the
    // sample is recorded even when the search halts (timeout/budget), so
    // truncated rounds still show up in the flamegraph
    let sample_search = |ctx: &SearchCtx<'_>, t0: Option<std::time::Instant>| {
        if let Some(t0) = t0 {
            iis_obs::profile::sample_under(
                round,
                "search",
                2,
                ctx.spent(),
                t0.elapsed().as_nanos() as u64,
            );
        }
    };
    let assignment = match opts.strategy {
        SearchStrategy::Mac => {
            if !csp.propagate(&mut domains, None) {
                return Ok(None);
            }
            if opts.jobs > 1 {
                search_parallel(&csp, domains, budget, deadline, opts, round)?
            } else {
                let t0 = profile_now();
                let found = csp.backtrack(domains, &ctx);
                sample_search(&ctx, t0);
                found?
            }
        }
        SearchStrategy::PlainBacktracking => {
            if opts.jobs > 1 {
                search_parallel(&csp, domains, budget, deadline, opts, round)?
            } else {
                let t0 = profile_now();
                let found = csp.backtrack_plain(&domains, &ctx);
                sample_search(&ctx, t0);
                found?
            }
        }
    };
    Ok(assignment.map(|a| {
        SimplicialMap::from_pairs(
            a.into_iter()
                .enumerate()
                .map(|(i, w)| (VertexId(i as u32), w)),
        )
    }))
}

/// Splits the search into independent subtrees (in the sequential
/// depth-first order) and runs them on the work-stealing pool. The
/// lowest-indexed witness wins, and only higher-indexed subtrees are
/// cancelled, so the outcome is the sequential one at any thread count
/// (DESIGN.md §7).
fn search_parallel(
    csp: &Csp,
    root: Vec<Vec<VertexId>>,
    budget: &SharedBudget,
    deadline: Option<std::time::Instant>,
    opts: &SolveOptions,
    round: iis_obs::profile::SpanId,
) -> Result<Option<Vec<VertexId>>, Halt> {
    let splitter = SearchCtx::new(budget, deadline, None);
    let split_t0 = profile_now();
    let subtrees = csp.split(root, opts.jobs * 4, opts.strategy, &splitter);
    if let Some(t0) = split_t0 {
        iis_obs::profile::sample_under(
            round,
            "split",
            2,
            splitter.spent(),
            t0.elapsed().as_nanos() as u64,
        );
    }
    let subtrees = subtrees?;
    iis_obs::metrics::add("solve.subtrees", subtrees.len() as u64);
    iis_obs::progress::set_subtrees(subtrees.len() as u64);
    let cell: FirstWins<Vec<VertexId>> = FirstWins::new();
    let verdicts = run_pool(subtrees, opts.jobs, |index, domains| {
        let ctx = SearchCtx::new(budget, deadline, Some((&cell, index)));
        let t0 = profile_now();
        let found = match opts.strategy {
            SearchStrategy::Mac => csp.backtrack(domains, &ctx),
            SearchStrategy::PlainBacktracking => csp.backtrack_plain(&domains, &ctx),
        };
        if let Some(t0) = t0 {
            let subtree = iis_obs::profile::register(round, &format!("subtree:{index}"));
            iis_obs::profile::sample_under(
                subtree,
                "search",
                3,
                ctx.spent(),
                t0.elapsed().as_nanos() as u64,
            );
        }
        iis_obs::progress::subtree_done();
        match found {
            Ok(Some(solution)) => {
                cell.offer(index, solution);
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(halt) => Err(halt),
        }
    });
    let cancelled = verdicts
        .iter()
        .filter(|v| **v == Err(Halt::Cancelled))
        .count();
    iis_obs::metrics::add("solve.cancelled", cancelled as u64);
    match cell.take() {
        Some((_, solution)) => Ok(Some(solution)),
        None if verdicts.contains(&Err(Halt::Timeout)) => Err(Halt::Timeout),
        None if verdicts.contains(&Err(Halt::Budget)) => Err(Halt::Budget),
        None => Ok(None),
    }
}

impl Csp {
    /// `true` iff some allowed tuple of constraint `ci` has `w` at `pos`
    /// and every other position inside its vertex's current domain.
    fn supported(&self, ci: usize, pos: usize, w: VertexId, domains: &[Vec<VertexId>]) -> bool {
        let con = &self.constraints[ci];
        con.table.allowed.iter().any(|tuple| {
            tuple[pos] == w
                && tuple
                    .iter()
                    .enumerate()
                    .all(|(j, &x)| j == pos || domains[con.verts[j].index()].contains(&x))
        })
    }

    /// Generalized arc consistency to a fixpoint. Returns `false` on a
    /// domain wipeout. `seed` restricts the initial queue to the
    /// constraints containing one vertex (after an assignment).
    fn propagate(&self, domains: &mut [Vec<VertexId>], seed: Option<VertexId>) -> bool {
        let mut queue: Vec<usize> = match seed {
            Some(v) => self.containing[v.index()].clone(),
            None => (0..self.constraints.len()).collect(),
        };
        let mut in_queue = vec![false; self.constraints.len()];
        for &i in &queue {
            in_queue[i] = true;
        }
        while let Some(ci) = queue.pop() {
            in_queue[ci] = false;
            self.propagations.incr();
            for (pos, &v) in self.constraints[ci].verts.iter().enumerate() {
                let before = domains[v.index()].len();
                let kept: Vec<VertexId> = domains[v.index()]
                    .iter()
                    .copied()
                    .filter(|&w| self.supported(ci, pos, w, domains))
                    .collect();
                if kept.is_empty() {
                    self.prunes.add(before as u64);
                    return false;
                }
                if kept.len() < before {
                    self.prunes.add((before - kept.len()) as u64);
                    domains[v.index()] = kept;
                    for &cj in &self.containing[v.index()] {
                        if !in_queue[cj] {
                            in_queue[cj] = true;
                            queue.push(cj);
                        }
                    }
                }
            }
        }
        true
    }

    /// Expands the root state breadth-first, in the sequential search's
    /// branching order, until at least `target` independent subtree states
    /// exist (or the tree stops branching). For MAC the expansion performs
    /// the same charge-pick-propagate steps the sequential search would, so
    /// node accounting is unchanged; for plain backtracking the expansion
    /// just restricts the first branching variable's domain.
    fn split(
        &self,
        root: Vec<Vec<VertexId>>,
        target: usize,
        strategy: SearchStrategy,
        ctx: &SearchCtx<'_>,
    ) -> Result<Vec<Vec<Vec<VertexId>>>, Halt> {
        let mut frontier = vec![root];
        loop {
            if frontier.len() >= target {
                return Ok(frontier);
            }
            let mut next: Vec<Vec<Vec<VertexId>>> = Vec::new();
            let mut expanded = false;
            for state in frontier {
                if expanded && next.len() + 1 >= target {
                    // enough subtrees; keep the rest unexpanded, in order
                    next.push(state);
                    continue;
                }
                match strategy {
                    SearchStrategy::Mac => {
                        let pick = state
                            .iter()
                            .enumerate()
                            .filter(|(_, d)| d.len() > 1)
                            .min_by_key(|(_, d)| d.len());
                        let Some((vi, _)) = pick else {
                            next.push(state);
                            continue;
                        };
                        ctx.charge(&self.nodes)?;
                        expanded = true;
                        let before = next.len();
                        for &w in &state[vi] {
                            let mut child = state.clone();
                            child[vi] = vec![w];
                            if self.propagate(&mut child, Some(VertexId(vi as u32))) {
                                next.push(child);
                            }
                        }
                        if next.len() == before {
                            self.backtracks.incr();
                        }
                    }
                    SearchStrategy::PlainBacktracking => {
                        let Some(vi) = state.iter().position(|d| d.len() > 1) else {
                            next.push(state);
                            continue;
                        };
                        expanded = true;
                        for &w in &state[vi] {
                            let mut child = state.clone();
                            child[vi] = vec![w];
                            next.push(child);
                        }
                    }
                }
            }
            if !expanded {
                return Ok(next);
            }
            frontier = next;
            if frontier.is_empty() {
                return Ok(frontier);
            }
        }
    }

    /// Chronological backtracking without propagation — the ablation
    /// baseline. Checks each constraint as soon as all of its variables are
    /// assigned.
    fn backtrack_plain(
        &self,
        domains: &[Vec<VertexId>],
        ctx: &SearchCtx<'_>,
    ) -> Result<Option<Vec<VertexId>>, Halt> {
        let n = domains.len();
        // constraints indexed by their highest variable
        let mut closing: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, con) in self.constraints.iter().enumerate() {
            let hi = con
                .verts
                .iter()
                .map(|v| v.index())
                .max()
                .expect("non-empty");
            closing[hi].push(ci);
        }
        let mut assignment: Vec<VertexId> = vec![VertexId(0); n];
        fn rec(
            csp: &Csp,
            domains: &[Vec<VertexId>],
            closing: &[Vec<usize>],
            assignment: &mut Vec<VertexId>,
            k: usize,
            ctx: &SearchCtx<'_>,
        ) -> Result<bool, Halt> {
            ctx.charge(&csp.nodes)?;
            if k == domains.len() {
                return Ok(true);
            }
            'cand: for &w in &domains[k] {
                assignment[k] = w;
                for &ci in &closing[k] {
                    let con = &csp.constraints[ci];
                    let tuple: Vec<VertexId> =
                        con.verts.iter().map(|v| assignment[v.index()]).collect();
                    if !con.table.allowed.contains(&tuple) {
                        continue 'cand;
                    }
                }
                if rec(csp, domains, closing, assignment, k + 1, ctx)? {
                    return Ok(true);
                }
            }
            csp.backtracks.incr();
            Ok(false)
        }
        match rec(self, domains, &closing, &mut assignment, 0, ctx)? {
            true => Ok(Some(assignment)),
            false => Ok(None),
        }
    }

    /// Complete backtracking with propagation (MAC). Returns a full
    /// assignment, `Ok(None)` if none exists, or `Err` when the node budget
    /// runs out (or the subtree is cancelled).
    fn backtrack(
        &self,
        domains: Vec<Vec<VertexId>>,
        ctx: &SearchCtx<'_>,
    ) -> Result<Option<Vec<VertexId>>, Halt> {
        ctx.charge(&self.nodes)?;
        // pick the unassigned variable with the smallest domain > 1
        let pick = domains
            .iter()
            .enumerate()
            .filter(|(_, d)| d.len() > 1)
            .min_by_key(|(_, d)| d.len());
        let Some((vi, _)) = pick else {
            // all singleton: done
            return Ok(Some(domains.into_iter().map(|d| d[0]).collect()));
        };
        let candidates = domains[vi].clone();
        for w in candidates {
            let mut next = domains.clone();
            next[vi] = vec![w];
            if self.propagate(&mut next, Some(VertexId(vi as u32))) {
                if let Some(sol) = self.backtrack(next, ctx)? {
                    return Ok(Some(sol));
                }
            }
        }
        self.backtracks.incr();
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_tasks::library::{
        approximate_agreement, chromatic_simplex_agreement, consensus, k_set_consensus,
        one_shot_immediate_snapshot_task, renaming, trivial,
    };

    #[test]
    fn trivial_task_solvable_at_zero() {
        let t = trivial(2);
        let report = solve_up_to(&t, 2);
        assert_eq!(report.first_solvable(), Some(0));
        let w = report.witness().unwrap();
        validate_decision_map(&t, w.subdivision(), w.map()).unwrap();
        assert!(!report.to_string().is_empty());
        assert_eq!(report.task_name(), "trivial");
    }

    #[test]
    fn binary_consensus_unsolvable_flp() {
        let t = consensus(1, &[0, 1]);
        let report = solve_up_to(&t, 3);
        assert_eq!(report.first_solvable(), None, "FLP: consensus unsolvable");
        assert_eq!(report.results().len(), 4);
        assert!(report.witness().is_none());
    }

    #[test]
    fn three_process_consensus_unsolvable() {
        let t = consensus(2, &[0, 1]);
        assert!(solve_at(&t, 0).is_none());
        assert!(solve_at(&t, 1).is_none());
    }

    #[test]
    fn two_set_consensus_three_procs_unsolvable() {
        let t = k_set_consensus(2, 2);
        assert!(solve_at(&t, 0).is_none());
        assert!(
            solve_at(&t, 1).is_none(),
            "(3,2)-set consensus impossible (Sperner)"
        );
    }

    #[test]
    fn full_set_consensus_trivially_solvable() {
        let t = k_set_consensus(2, 3);
        let report = solve_up_to(&t, 1);
        assert_eq!(report.first_solvable(), Some(0));
    }

    #[test]
    fn one_set_consensus_two_procs_is_consensus() {
        let t = k_set_consensus(1, 1);
        assert!(solve_at(&t, 0).is_none());
        assert!(solve_at(&t, 1).is_none());
        assert!(solve_at(&t, 2).is_none());
    }

    #[test]
    fn renaming_with_ids_solvable_immediately() {
        let t = renaming(1, 3);
        let report = solve_up_to(&t, 1);
        assert_eq!(report.first_solvable(), Some(0));
    }

    #[test]
    fn approximate_agreement_needs_rounds() {
        // grid = 3 (ε = 1/3): one IIS round trisects the edge — solvable at 1
        let t = approximate_agreement(1, 3);
        let report = solve_up_to(&t, 2);
        assert_eq!(report.first_solvable(), Some(1));
        let w = report.witness().unwrap();
        validate_decision_map(&t, w.subdivision(), w.map()).unwrap();
    }

    #[test]
    fn approximate_agreement_grid9_needs_two_rounds() {
        let t = approximate_agreement(1, 9);
        assert!(solve_at(&t, 1).is_none(), "3 intervals can't cover grid 9");
        assert!(solve_at(&t, 2).is_some(), "9 intervals cover grid 9");
    }

    #[test]
    fn one_shot_is_task_solvable_at_one_round() {
        let t = one_shot_immediate_snapshot_task(1);
        let report = solve_up_to(&t, 1);
        assert_eq!(report.first_solvable(), Some(1));
    }

    #[test]
    fn one_shot_is_task_three_procs() {
        let t = one_shot_immediate_snapshot_task(2);
        assert!(solve_at(&t, 0).is_none(), "needs communication");
        let w = solve_at(&t, 1).expect("identity map solves it");
        validate_decision_map(&t, w.subdivision(), w.map()).unwrap();
    }

    #[test]
    fn csass_over_sds_squared_needs_two_rounds() {
        let sub = iis_topology::sds_iterated(&iis_topology::Complex::standard_simplex(1), 2);
        let t = chromatic_simplex_agreement(&sub);
        assert!(solve_at(&t, 1).is_none());
        assert!(solve_at(&t, 2).is_some(), "Theorem 5.1 witness at b = 2");
    }

    #[test]
    fn lifted_maps_stay_valid() {
        // lift the ε-agreement witness twice and re-validate (release-mode
        // safe: validate explicitly, not just via debug_assert)
        let t = approximate_agreement(1, 3);
        let w1 = solve_at(&t, 1).unwrap();
        let w2 = lift_decision_map(&t, &w1);
        assert_eq!(w2.rounds(), 2);
        validate_decision_map(&t, w2.subdivision(), w2.map()).unwrap();
        let w3 = lift_decision_map(&t, &w2);
        assert_eq!(w3.rounds(), 3);
        validate_decision_map(&t, w3.subdivision(), w3.map()).unwrap();
    }

    #[test]
    fn strategies_agree() {
        for (task, b) in [
            (trivial(1), 0usize),
            (approximate_agreement(1, 3), 1),
            (consensus(1, &[0, 1]), 1),
            (one_shot_immediate_snapshot_task(1), 1),
        ] {
            let mac = matches!(
                solve_at_with(&task, b, u64::MAX, SearchStrategy::Mac),
                BoundedOutcome::Solvable(_)
            );
            let plain = matches!(
                solve_at_with(&task, b, u64::MAX, SearchStrategy::PlainBacktracking),
                BoundedOutcome::Solvable(_)
            );
            assert_eq!(mac, plain, "strategies must agree on {} b={b}", task.name());
        }
    }

    #[test]
    fn lifted_trivial_map() {
        let t = trivial(1);
        let w0 = solve_at(&t, 0).unwrap();
        let w1 = lift_decision_map(&t, &w0);
        validate_decision_map(&t, w1.subdivision(), w1.map()).unwrap();
    }

    #[test]
    fn decision_map_accessor_roundtrip() {
        let t = trivial(1);
        let w = solve_at(&t, 0).unwrap();
        assert_eq!(w.rounds(), 0);
        assert!(w.subdivision().complex().num_vertices() > 0);
        assert!(!w.map().is_empty());
    }
}
