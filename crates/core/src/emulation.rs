//! Emulation of atomic snapshot memory by iterated immediate snapshot
//! memory — the paper's main theorem (§4, Figure 2).
//!
//! Any protocol written for the SWMR atomic snapshot model (an
//! [`AtomicMachine`]) runs unchanged in the IIS model through
//! [`EmulatorMachine`]. The emulator for process `Pᵢ` maintains the union
//! `∪S` of all tuple-sets it has seen; to emulate the `sq`-th **write** of
//! value `v` it submits `∪S ∪ {(i, sq, v)}` to successive one-shot memories
//! until `(i, sq, v)` appears in the **intersection** `∩S` of the sets
//! returned; to emulate a **snapshot** it does the same with the placeholder
//! tuple `(i, sq, ⊥)` and, once the placeholder is in the intersection,
//! returns for every cell `C_p` the value of the `(p, q, v)` tuple in `∩S`
//! with the largest `q` (Figure 2's `SnapshotRead`).
//!
//! Claim 4.1 (once in everybody's intersection, forever in every later
//! intersection), Corollary 4.1 (reads see preceding writes) and the
//! containment of returned intersections make the emulated snapshots
//! atomic; the emulation is *non-blocking* (progress is system-wide, a
//! single emulated operation is not bounded) — exactly as the paper remarks
//! at the end of §4.

use iis_sched::{AtomicMachine, IisMachine, MachineStep};
use std::collections::BTreeSet;
use std::fmt;

/// A memory tuple of Figure 2: `(id, sequence-number, value-or-⊥)`.
///
/// `Write` tuples record "process `pid`, on its `sq`-th time around, wrote
/// `v`"; `ReadMarker` is the placeholder for `pid`'s `sq`-th snapshot.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Tuple<V> {
    /// The emulated process id.
    pub pid: usize,
    /// The emulated operation's sequence number (1-based).
    pub sq: usize,
    /// `Some(v)` for a write of `v`; `None` for a read placeholder `⊥`.
    pub value: Option<V>,
}

impl<V> Tuple<V> {
    /// A write tuple `(pid, sq, v)`.
    pub fn write(pid: usize, sq: usize, v: V) -> Self {
        Tuple {
            pid,
            sq,
            value: Some(v),
        }
    }

    /// A read placeholder `(pid, sq, ⊥)`.
    pub fn marker(pid: usize, sq: usize) -> Self {
        Tuple {
            pid,
            sq,
            value: None,
        }
    }
}

/// The tuple-set values the emulator exchanges through the one-shot
/// memories.
pub type TupleSet<V> = BTreeSet<Tuple<V>>;

/// Which emulated operation is in flight.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Mode<V> {
    /// Waiting for `(pid, sq, v)` to enter the intersection.
    Write { sq: usize, value: V },
    /// Waiting for `(pid, sq, ⊥)` to enter the intersection.
    Snapshot { sq: usize },
    /// The inner machine decided.
    Done,
}

/// Per-operation and aggregate counters for the benchmark harness.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EmulationStats {
    /// One entry per completed emulated operation: how many one-shot
    /// memories it consumed.
    pub memories_per_op: Vec<usize>,
    /// Total IIS rounds this emulator participated in.
    pub rounds: usize,
    /// Completed emulated writes.
    pub writes_done: usize,
    /// Completed emulated snapshots.
    pub snapshots_done: usize,
}

impl EmulationStats {
    /// The largest number of memories any single operation consumed.
    pub fn max_memories_per_op(&self) -> usize {
        self.memories_per_op.iter().copied().max().unwrap_or(0)
    }
}

/// Runs an [`AtomicMachine`] in the IIS model (Figure 2).
///
/// Implements [`IisMachine`] with tuple-set values, so it can be driven by
/// the deterministic [`iis_sched::IisRunner`] under arbitrary schedules, or
/// adapted onto the real concurrent IIS memory (see
/// [`run_emulation_concurrent`]).
pub struct EmulatorMachine<M: AtomicMachine> {
    pid: usize,
    n: usize,
    inner: M,
    mode: Mode<M::Value>,
    known: TupleSet<M::Value>,
    /// The round at which the current operation started (for stats).
    op_started_round: usize,
    stats: EmulationStats,
    /// Snapshot history: `(sq, cells)` per completed emulated snapshot.
    snapshots: Vec<(usize, Vec<Option<M::Value>>)>,
}

impl<M: AtomicMachine> EmulatorMachine<M>
where
    M::Value: Ord + Clone,
{
    /// Wraps `inner`, emulating it as process `pid` out of `n` (the
    /// emulated memory has `n` cells).
    pub fn new(pid: usize, n: usize, inner: M) -> Self {
        EmulatorMachine {
            pid,
            n,
            inner,
            mode: Mode::Done, // replaced in initial_value
            known: BTreeSet::new(),
            op_started_round: 0,
            stats: EmulationStats::default(),
            snapshots: Vec::new(),
        }
    }

    /// The emulation statistics collected so far.
    pub fn stats(&self) -> &EmulationStats {
        &self.stats
    }

    /// The emulated snapshots this process has completed, each as
    /// `(sq, cell values)`.
    pub fn snapshot_history(&self) -> &[(usize, Vec<Option<M::Value>>)] {
        &self.snapshots
    }

    /// The wrapped machine.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The emulated process id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    fn begin_write(&mut self) -> TupleSet<M::Value> {
        let sq = self.stats.writes_done + 1;
        let value = self.inner.next_write();
        self.mode = Mode::Write {
            sq,
            value: value.clone(),
        };
        let mut submit = self.known.clone();
        submit.insert(Tuple::write(self.pid, sq, value));
        submit
    }

    fn begin_snapshot(&mut self) -> TupleSet<M::Value> {
        let sq = self.stats.snapshots_done + 1;
        self.mode = Mode::Snapshot { sq };
        let mut submit = self.known.clone();
        submit.insert(Tuple::marker(self.pid, sq));
        submit
    }

    /// Reconstructs the snapshot contents from the intersection: for each
    /// cell, the written value with the highest sequence number.
    fn snapshot_from(inter: &TupleSet<M::Value>, cells: usize) -> Vec<Option<M::Value>> {
        let mut snap: Vec<Option<(usize, M::Value)>> = vec![None; cells];
        for t in inter {
            if let Some(v) = &t.value {
                if t.pid < cells {
                    match &snap[t.pid] {
                        Some((q, _)) if *q >= t.sq => {}
                        _ => snap[t.pid] = Some((t.sq, v.clone())),
                    }
                }
            }
        }
        snap.into_iter().map(|o| o.map(|(_, v)| v)).collect()
    }
}

impl<M: AtomicMachine> IisMachine for EmulatorMachine<M>
where
    M::Value: Ord + Clone,
{
    type Value = TupleSet<M::Value>;
    type Output = M::Output;

    fn initial_value(&mut self) -> TupleSet<M::Value> {
        self.begin_write()
    }

    fn on_view(
        &mut self,
        round: usize,
        view: &[(usize, TupleSet<M::Value>)],
    ) -> MachineStep<TupleSet<M::Value>, M::Output> {
        self.stats.rounds += 1;
        iis_obs::metrics::add("emu.rounds", 1);
        // ∩S and ∪S over the collection of sets returned
        let first = view.first().expect("view includes self").1.clone();
        let (inter, union) =
            view.iter()
                .skip(1)
                .fold((first.clone(), first), |(mut inter, mut union), (_, s)| {
                    inter.retain(|t| s.contains(t));
                    union.extend(s.iter().cloned());
                    (inter, union)
                });
        self.known = union;
        let cells = self.n;
        match self.mode.clone() {
            Mode::Write { sq, value } => {
                let confirmed = inter.contains(&Tuple::write(self.pid, sq, value));
                if confirmed {
                    self.stats.writes_done += 1;
                    let memories = round + 1 - self.op_started_round;
                    self.stats.memories_per_op.push(memories);
                    iis_obs::metrics::add("emu.writes", 1);
                    iis_obs::metrics::record("emu.memories_per_op", memories as u64);
                    self.op_started_round = round + 1;
                    MachineStep::Continue(self.begin_snapshot())
                } else {
                    MachineStep::Continue(self.known.clone())
                }
            }
            Mode::Snapshot { sq } => {
                let confirmed = inter.contains(&Tuple::marker(self.pid, sq));
                if confirmed {
                    self.stats.snapshots_done += 1;
                    let memories = round + 1 - self.op_started_round;
                    self.stats.memories_per_op.push(memories);
                    iis_obs::metrics::add("emu.snapshots", 1);
                    iis_obs::metrics::record("emu.memories_per_op", memories as u64);
                    self.op_started_round = round + 1;
                    let snap = Self::snapshot_from(&inter, cells);
                    self.snapshots.push((sq, snap.clone()));
                    match self.inner.on_snapshot(&snap) {
                        Some(out) => {
                            self.mode = Mode::Done;
                            MachineStep::Decide(out)
                        }
                        None => MachineStep::Continue(self.begin_write()),
                    }
                } else {
                    MachineStep::Continue(self.known.clone())
                }
            }
            Mode::Done => unreachable!("decided machines take no steps"),
        }
    }
}

impl<M: AtomicMachine> fmt::Debug for EmulatorMachine<M>
where
    M::Value: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EmulatorMachine")
            .field("pid", &self.pid)
            .field("rounds", &self.stats.rounds)
            .field("writes_done", &self.stats.writes_done)
            .field("snapshots_done", &self.stats.snapshots_done)
            .finish()
    }
}

/// The per-process result of [`run_emulation_concurrent`]: the decision,
/// emulation statistics, and the snapshot history `(sq, cells)`.
pub type EmulationResult<M> = (
    Option<<M as AtomicMachine>::Output>,
    EmulationStats,
    Vec<(usize, Vec<Option<<M as AtomicMachine>::Value>>)>,
);

/// Runs a set of [`AtomicMachine`]s to completion over the **real
/// concurrent** IIS memory (`iis-memory`), one OS thread per emulator.
///
/// Returns each process's decision together with its emulation stats and
/// snapshot history. Panics in emulator threads propagate.
///
/// This is the "it actually runs" form of the main theorem: the same
/// Figure 2 logic, driven by genuinely concurrent one-shot immediate
/// snapshots instead of a schedule.
pub fn run_emulation_concurrent<M>(machines: Vec<M>) -> Vec<EmulationResult<M>>
where
    M: AtomicMachine + Send + 'static,
    M::Value: Ord + Clone + Send + Sync + 'static,
    M::Output: Send + 'static,
{
    use iis_memory::IteratedImmediateSnapshot;
    use std::sync::Arc;

    let n = machines.len();
    let iis: Arc<IteratedImmediateSnapshot<TupleSet<M::Value>>> =
        Arc::new(IteratedImmediateSnapshot::new(n));
    let mut handles = Vec::new();
    for (pid, inner) in machines.into_iter().enumerate() {
        let iis = Arc::clone(&iis);
        handles.push(std::thread::spawn(move || {
            let mut em = EmulatorMachine::new(pid, n, inner);
            let mut value = em.initial_value();
            let mut round = 0usize;
            loop {
                let view = iis.write_read(round, pid, value);
                match em.on_view(round, &view) {
                    MachineStep::Continue(v) => value = v,
                    MachineStep::Decide(out) => {
                        return (
                            Some(out),
                            em.stats().clone(),
                            em.snapshot_history().to_vec(),
                        );
                    }
                }
                round += 1;
            }
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("emulator thread panicked"))
        .collect()
}

/// A violation of snapshot-history atomicity found by
/// [`validate_snapshot_histories`].
///
/// Each variant pinpoints the offending snapshot(s) by `(pid, sq)` so
/// machine consumers (the fuzzer's shrink reports) can act on the failure;
/// the [`fmt::Display`] rendering matches the historical string messages
/// byte for byte.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotHistoryError {
    /// Two snapshots report memories of different widths.
    WidthMismatch {
        /// `(pid, sq)` of the first snapshot in the offending pair.
        first: (usize, usize),
        /// `(pid, sq)` of the second snapshot in the offending pair.
        second: (usize, usize),
        /// Cell count of the first snapshot.
        first_width: usize,
        /// Cell count of the second snapshot.
        second_width: usize,
    },
    /// Two snapshots' sequence-number vectors are coordinatewise
    /// incomparable — no linearization orders them.
    Incomparable {
        /// `(pid, sq)` of the first snapshot in the offending pair.
        first: (usize, usize),
        /// `(pid, sq)` of the second snapshot in the offending pair.
        second: (usize, usize),
    },
    /// A process's snapshot does not reflect its own preceding write
    /// (self-inclusion, Corollary 4.1 applied to the snapshotter).
    MissingOwnWrite {
        /// The snapshotting process.
        pid: usize,
        /// The snapshot's sequence number.
        sq: usize,
        /// The (too small) sequence number the snapshot shows in its own
        /// cell.
        shown: u64,
    },
    /// A process's later snapshot fails to dominate its earlier one.
    NotMonotone {
        /// The snapshotting process.
        pid: usize,
        /// The sequence number of the regressing snapshot.
        sq: usize,
    },
}

impl fmt::Display for SnapshotHistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotHistoryError::WidthMismatch {
                first_width,
                second_width,
                ..
            } => write!(
                f,
                "snapshot width mismatch: {first_width} vs {second_width}"
            ),
            SnapshotHistoryError::Incomparable { first, second } => write!(
                f,
                "incomparable snapshots: P{} #{} vs P{} #{}",
                first.0, first.1, second.0, second.1
            ),
            SnapshotHistoryError::MissingOwnWrite { pid, sq, shown } => write!(
                f,
                "P{pid} snapshot #{sq} misses its own write (cell shows {shown})"
            ),
            SnapshotHistoryError::NotMonotone { pid, sq } => {
                write!(f, "P{pid} snapshot #{sq} went backwards")
            }
        }
    }
}

impl std::error::Error for SnapshotHistoryError {}

/// Validates that a collection of emulated snapshot histories is atomic:
///
/// 1. **comparability** — the per-writer max-sequence-number vectors of all
///    snapshots are pairwise coordinatewise ordered;
/// 2. **self-inclusion** — process `p`'s `sq`-th snapshot shows its own cell
///    at sequence number ≥ `sq` (it snapshots after its own `sq`-th write,
///    Corollary 4.1 applied to itself);
/// 3. **per-process monotonicity** — later snapshots by the same process
///    dominate earlier ones.
///
/// `histories[p]` is process `p`'s list of `(sq, cells)` snapshots where
/// each cell is `(writer_sq)` extracted by the caller; here we take the raw
/// cell values as sequence numbers computed by the emulator — so the caller
/// passes vectors of per-cell sequence numbers (0 for `None`).
///
/// # Errors
///
/// Returns a [`SnapshotHistoryError`] locating the first violated
/// condition; its `Display` is the historical string description.
pub fn validate_snapshot_histories(
    histories: &[Vec<(usize, Vec<u64>)>],
) -> Result<(), SnapshotHistoryError> {
    let mut all: Vec<(usize, usize, &Vec<u64>)> = Vec::new();
    for (p, h) in histories.iter().enumerate() {
        for (sq, cells) in h {
            all.push((p, *sq, cells));
        }
    }
    // 1. pairwise comparability
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            let (a, b) = (all[i].2, all[j].2);
            if a.len() != b.len() {
                return Err(SnapshotHistoryError::WidthMismatch {
                    first: (all[i].0, all[i].1),
                    second: (all[j].0, all[j].1),
                    first_width: a.len(),
                    second_width: b.len(),
                });
            }
            let le = a.iter().zip(b).all(|(x, y)| x <= y);
            let ge = a.iter().zip(b).all(|(x, y)| x >= y);
            if !le && !ge {
                return Err(SnapshotHistoryError::Incomparable {
                    first: (all[i].0, all[i].1),
                    second: (all[j].0, all[j].1),
                });
            }
        }
    }
    // 2. self-inclusion, 3. monotonicity
    for (p, h) in histories.iter().enumerate() {
        let mut prev: Option<&Vec<u64>> = None;
        for (sq, cells) in h {
            if p < cells.len() && (cells[p] as usize) < *sq {
                return Err(SnapshotHistoryError::MissingOwnWrite {
                    pid: p,
                    sq: *sq,
                    shown: cells[p],
                });
            }
            if let Some(q) = prev {
                if !q.iter().zip(cells).all(|(x, y)| x <= y) {
                    return Err(SnapshotHistoryError::NotMonotone { pid: p, sq: *sq });
                }
            }
            prev = Some(cells);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_obs::Rng;
    use iis_sched::{IisRunner, IisSchedule, OrderedPartition};

    /// A k-shot counter machine: writes `(pid, sq)` pairs encoded as u64 and
    /// decides on the vector of per-cell sequence numbers it saw last.
    #[derive(Clone)]
    struct KShot {
        pid: usize,
        k: usize,
        sq: usize,
    }

    impl AtomicMachine for KShot {
        type Value = u64; // encodes (pid << 16) | sq
        type Output = Vec<u64>;
        fn next_write(&mut self) -> u64 {
            self.sq += 1;
            ((self.pid as u64) << 16) | self.sq as u64
        }
        fn on_snapshot(&mut self, snap: &[Option<u64>]) -> Option<Vec<u64>> {
            if self.sq >= self.k {
                Some(snap.iter().map(|c| c.map_or(0, |v| v & 0xffff)).collect())
            } else {
                None
            }
        }
    }

    fn kshots(n: usize, k: usize) -> Vec<EmulatorMachine<KShot>> {
        (0..n)
            .map(|pid| EmulatorMachine::new(pid, n, KShot { pid, k, sq: 0 }))
            .collect()
    }

    #[test]
    fn lockstep_emulation_completes_and_all_see_all() {
        let n = 3;
        let mut runner = IisRunner::new(kshots(n, 1));
        // lockstep: each op needs 2 memories — the tuple reaches everyone's
        // union in the first memory and everyone's intersection in the next
        let rounds = runner.run(IisSchedule::lockstep(n, 10));
        assert_eq!(rounds, 4);
        for p in 0..n {
            assert_eq!(runner.output(p), Some(&vec![1, 1, 1]));
        }
    }

    #[test]
    fn sequential_emulation_first_sees_only_self() {
        let n = 2;
        let mut runner = IisRunner::new(kshots(n, 1));
        runner.run(IisSchedule::sequential(n, 10));
        // P0 always first: sees only its own write at its snapshot? In the
        // sequential partition P0 precedes P1 in every memory, so P0 cannot
        // have P1's write in its intersection at snapshot time... but P1
        // submitted its write to M0 too; P0's view of M0 excludes P1
        // (P0 first). Intersection for P0 = its own set only.
        assert_eq!(runner.output(0), Some(&vec![1, 0]));
        assert_eq!(runner.output(1), Some(&vec![1, 1]));
    }

    #[test]
    fn emulation_snapshots_are_atomic_under_random_schedules() {
        let mut rng = Rng::seed_from_u64(2024);
        for n in [2usize, 3, 4] {
            for _case in 0..40 {
                let k = 1 + (n % 3);
                let machines = kshots(n, k);
                let mut runner = IisRunner::new(machines);
                let mut rounds_used = 0;
                while !runner.is_quiescent() && rounds_used < 500 {
                    let pids: Vec<usize> = runner.active();
                    let p = OrderedPartition::random(&pids, &mut rng);
                    runner.step_round(&p);
                    rounds_used += 1;
                }
                assert!(runner.is_quiescent(), "emulation must complete");
                // extract snapshot histories by re-running? instead gather
                // from outputs: we validate only final snapshots here —
                // stronger history validation happens in integration tests.
                let finals: Vec<Vec<u64>> =
                    (0..n).map(|p| runner.output(p).unwrap().clone()).collect();
                // final snapshots must be pairwise comparable
                let hist: Vec<Vec<(usize, Vec<u64>)>> =
                    finals.iter().map(|f| vec![(1, f.clone())]).collect();
                // skip self-inclusion index (sq numbering differs); check
                // comparability only:
                for i in 0..n {
                    for j in i + 1..n {
                        let (a, b) = (&finals[i], &finals[j]);
                        let le = a.iter().zip(b).all(|(x, y)| x <= y);
                        let ge = a.iter().zip(b).all(|(x, y)| x >= y);
                        assert!(le || ge, "incomparable final snapshots");
                    }
                }
                let _ = hist;
            }
        }
    }

    #[test]
    fn nonblocking_under_laggard_adversary() {
        // the laggard never blocks others; everyone still finishes
        let n = 3;
        let mut runner = IisRunner::new(kshots(n, 2));
        let rounds = runner.run(IisSchedule::laggard(n, 100));
        assert!(rounds < 100, "emulation should complete");
        assert!(runner.is_quiescent());
    }

    #[test]
    fn crash_does_not_block_others() {
        let n = 3;
        let mut runner = IisRunner::new(kshots(n, 2));
        runner.step_round(&OrderedPartition::simultaneous(0..n));
        runner.crash(2);
        let mut guard = 0;
        while !runner.active().is_empty() && guard < 100 {
            runner.step_round(&OrderedPartition::simultaneous(0..n));
            guard += 1;
        }
        assert!(runner.output(0).is_some());
        assert!(runner.output(1).is_some());
        assert!(runner.output(2).is_none());
    }

    #[test]
    fn stats_track_memories_per_op() {
        let mut em = EmulatorMachine::new(
            0,
            1,
            KShot {
                pid: 0,
                k: 1,
                sq: 0,
            },
        );
        let v0 = em.initial_value();
        // solo view: only self
        let step = em.on_view(0, &[(0, v0)]);
        let v1 = match step {
            MachineStep::Continue(v) => v,
            _ => panic!("write phase first"),
        };
        assert_eq!(em.stats().writes_done, 1);
        assert_eq!(em.stats().memories_per_op, vec![1]);
        let step2 = em.on_view(1, &[(0, v1)]);
        assert!(matches!(step2, MachineStep::Decide(_)));
        assert_eq!(em.stats().snapshots_done, 1);
        assert_eq!(em.stats().max_memories_per_op(), 1);
    }

    #[test]
    fn snapshot_from_picks_highest_sq() {
        let mut s: TupleSet<u64> = BTreeSet::new();
        s.insert(Tuple::write(0, 1, 10));
        s.insert(Tuple::write(0, 3, 30));
        s.insert(Tuple::write(0, 2, 20));
        s.insert(Tuple::marker(1, 1));
        let snap = EmulatorMachine::<KShot>::snapshot_from(&s, 2);
        assert_eq!(snap, vec![Some(30), None]);
    }

    #[test]
    fn validate_snapshot_histories_catches_violations() {
        // comparable, monotone, self-inclusive
        let good = vec![
            vec![(1, vec![1, 0]), (2, vec![2, 1])],
            vec![(1, vec![1, 1])],
        ];
        validate_snapshot_histories(&good).unwrap();
        // incomparable
        let bad = vec![vec![(1, vec![1, 0])], vec![(1, vec![0, 1])]];
        let err = validate_snapshot_histories(&bad).unwrap_err();
        assert_eq!(
            err,
            SnapshotHistoryError::Incomparable {
                first: (0, 1),
                second: (1, 1),
            }
        );
        assert_eq!(err.to_string(), "incomparable snapshots: P0 #1 vs P1 #1");
        // missing own write
        let bad2 = vec![vec![(1, vec![0, 0])]];
        let err2 = validate_snapshot_histories(&bad2).unwrap_err();
        assert_eq!(
            err2,
            SnapshotHistoryError::MissingOwnWrite {
                pid: 0,
                sq: 1,
                shown: 0,
            }
        );
        assert_eq!(
            err2.to_string(),
            "P0 snapshot #1 misses its own write (cell shows 0)"
        );
        // non-monotone (snapshots comparable — the later one is strictly
        // below in cell 1 — so only the per-process monotone check fires)
        let bad3 = vec![vec![(1, vec![2, 1]), (2, vec![2, 0])]];
        let err3 = validate_snapshot_histories(&bad3).unwrap_err();
        assert_eq!(err3, SnapshotHistoryError::NotMonotone { pid: 0, sq: 2 });
        assert_eq!(err3.to_string(), "P0 snapshot #2 went backwards");
        // width mismatch
        let bad4 = vec![vec![(1, vec![1, 0])], vec![(1, vec![1, 1, 0])]];
        let err4 = validate_snapshot_histories(&bad4).unwrap_err();
        assert_eq!(
            err4,
            SnapshotHistoryError::WidthMismatch {
                first: (0, 1),
                second: (1, 1),
                first_width: 2,
                second_width: 3,
            }
        );
        assert_eq!(err4.to_string(), "snapshot width mismatch: 2 vs 3");
    }

    #[test]
    fn crash_inside_write_read_preserves_atomicity() {
        // a process that crashes mid-WriteRead leaves its tuple set visible;
        // survivors' emulated snapshots must still be atomic
        let mut rng = Rng::seed_from_u64(555);
        for case in 0..40 {
            let n = 3;
            let mut runner = IisRunner::new(kshots(n, 2));
            let victim = case % n;
            let crash_round = case % 5;
            let mut round = 0;
            while !runner.is_quiescent() && round < 200 {
                let active = runner.active();
                let p = OrderedPartition::random(&active, &mut rng);
                if round == crash_round && active.contains(&victim) {
                    runner.step_round_with_failures(&p, &[victim]);
                } else {
                    runner.step_round(&p);
                }
                round += 1;
            }
            for p in 0..n {
                if !runner.is_crashed(p) {
                    assert!(runner.output(p).is_some(), "survivor {p} must finish");
                }
            }
            let finals: Vec<&Vec<u64>> = runner.outputs().iter().flatten().collect();
            for i in 0..finals.len() {
                for j in i + 1..finals.len() {
                    let (a, b) = (finals[i], finals[j]);
                    let le = a.iter().zip(b).all(|(x, y)| x <= y);
                    let ge = a.iter().zip(b).all(|(x, y)| x >= y);
                    assert!(le || ge, "incomparable snapshots after mid-op crash");
                }
            }
        }
    }

    #[test]
    fn concurrent_emulation_on_real_iis() {
        for _round in 0..10 {
            let n = 3;
            let machines: Vec<KShot> = (0..n).map(|pid| KShot { pid, k: 2, sq: 0 }).collect();
            let results = run_emulation_concurrent(machines);
            assert_eq!(results.len(), n);
            let histories: Vec<Vec<(usize, Vec<u64>)>> = results
                .iter()
                .map(|(_, _, h)| {
                    h.iter()
                        .map(|(sq, cells)| {
                            (
                                *sq,
                                cells.iter().map(|c| c.map_or(0, |v| v & 0xffff)).collect(),
                            )
                        })
                        .collect()
                })
                .collect();
            validate_snapshot_histories(&histories).unwrap();
            for (out, stats, _) in &results {
                assert!(out.is_some());
                assert_eq!(stats.writes_done, 2);
                assert_eq!(stats.snapshots_done, 2);
            }
        }
    }
}
