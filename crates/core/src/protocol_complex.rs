//! Protocol complexes and the structure lemmas (§3.6).
//!
//! Lemma 3.2: the one-shot immediate snapshot complex is the standard
//! chromatic subdivision. Lemma 3.3: the `b`-shot complex is `SDS^b`. Both
//! are checked here *constructively*: the complex produced by exhaustively
//! executing the full-information protocol (via `iis-sched`) is compared —
//! label-for-label and as a carrier-carrying subdivision — with the
//! combinatorial construction (via `iis-topology`).

use iis_sched::iis_protocol_complex;
use iis_topology::{sds_iterated, Complex, Simplex, Subdivision};

/// The `b`-round IIS protocol complex of an input complex, produced by
/// exhaustive execution enumeration, *as a subdivision*: carriers are
/// decoded from the view labels (the carrier of a view is the set of inputs
/// it transitively mentions — the participating set the process observed).
///
/// # Panics
///
/// Panics if `input` is not chromatic or too large to enumerate.
pub fn protocol_subdivision(input: &Complex, b: usize) -> Subdivision {
    if b == 0 {
        return Subdivision::identity(input.clone());
    }
    let complex = iis_protocol_complex(input, b);
    let carriers: Vec<Simplex> = complex
        .vertex_ids()
        .map(|v| decode_carrier(input, complex.label(v)))
        .collect();
    Subdivision::from_parts(input.clone(), complex, carriers)
}

/// Decodes the carrier of a (possibly nested) view label: the base vertices
/// whose inputs the view transitively mentions.
fn decode_carrier(input: &Complex, label: &iis_topology::Label) -> Simplex {
    match label.as_view() {
        None => {
            // a bare input label: find it among base vertices (any color)
            Simplex::new(input.vertex_ids().filter(|&u| input.label(u) == label))
        }
        Some(entries) => {
            let mut acc = Simplex::empty();
            for (c, l) in entries {
                // leaf entries are (color, input) pairs of base vertices
                if let Some(u) = input.vertex_id(c, &l) {
                    acc = acc.with(u);
                } else {
                    acc = acc.union(&decode_carrier(input, &l));
                }
            }
            acc
        }
    }
}

/// Checks Lemma 3.2 on an input complex: the 1-round execution-enumerated
/// protocol complex equals the standard chromatic subdivision, both as
/// labeled complexes and as validated subdivisions.
///
/// Returns the pair `(enumerated, constructed)` so callers can inspect.
///
/// # Panics
///
/// Panics (with an explanatory message) if the lemma fails — it cannot, but
/// this function is the executable proof obligation.
pub fn check_lemma_3_2(input: &Complex) -> (Subdivision, Subdivision) {
    let enumerated = protocol_subdivision(input, 1);
    let constructed = iis_topology::sds(input);
    assert!(
        enumerated.complex().same_labeled(constructed.complex()),
        "Lemma 3.2 violated: execution enumeration disagrees with SDS"
    );
    enumerated.validate().expect("enumerated subdivision valid");
    constructed
        .validate()
        .expect("constructed subdivision valid");
    (enumerated, constructed)
}

/// Checks Lemma 3.3: the `b`-round protocol complex equals `SDS^b`.
///
/// # Panics
///
/// Panics if the lemma fails.
pub fn check_lemma_3_3(input: &Complex, b: usize) -> (Subdivision, Subdivision) {
    let enumerated = protocol_subdivision(input, b);
    let constructed = sds_iterated(input, b);
    assert!(
        enumerated.complex().same_labeled(constructed.complex()),
        "Lemma 3.3 violated: execution enumeration disagrees with SDS^b"
    );
    // carriers must agree vertex-by-vertex (same labels → comparable)
    for v in enumerated.complex().vertex_ids() {
        let w = constructed
            .complex()
            .vertex_id(enumerated.complex().color(v), enumerated.complex().label(v))
            .expect("same_labeled");
        assert_eq!(
            enumerated.carrier_of_vertex(v),
            constructed.carrier_of_vertex(w),
            "carrier mismatch at {v}"
        );
    }
    (enumerated, constructed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_topology::{Color, Label};

    #[test]
    fn lemma_3_2_two_processes() {
        let (e, c) = check_lemma_3_2(&Complex::standard_simplex(1));
        assert_eq!(e.complex().num_facets(), 3);
        assert_eq!(c.complex().num_facets(), 3);
    }

    #[test]
    fn lemma_3_2_three_processes() {
        let (e, _) = check_lemma_3_2(&Complex::standard_simplex(2));
        assert_eq!(e.complex().num_facets(), 13);
    }

    #[test]
    fn lemma_3_2_four_processes() {
        let (e, _) = check_lemma_3_2(&Complex::standard_simplex(3));
        assert_eq!(e.complex().num_facets(), 75);
    }

    #[test]
    fn lemma_3_3_two_rounds_two_processes() {
        let (e, _) = check_lemma_3_3(&Complex::standard_simplex(1), 2);
        assert_eq!(e.complex().num_facets(), 9);
    }

    #[test]
    fn lemma_3_3_three_rounds_two_processes() {
        let (e, _) = check_lemma_3_3(&Complex::standard_simplex(1), 3);
        assert_eq!(e.complex().num_facets(), 27);
    }

    #[test]
    fn lemma_3_3_two_rounds_three_processes() {
        let (e, _) = check_lemma_3_3(&Complex::standard_simplex(2), 2);
        assert_eq!(e.complex().num_facets(), 169);
    }

    #[test]
    fn lemma_3_3_general_input_complex() {
        // butterfly input: SDS^b over a multi-facet complex (the remark
        // after Lemma 3.3: the b-shot complex of I is SDS^b(I))
        let mut input = Complex::new();
        let a = input.ensure_vertex(Color(0), Label::scalar(10));
        let b2 = input.ensure_vertex(Color(1), Label::scalar(11));
        let x = input.ensure_vertex(Color(2), Label::scalar(12));
        let y = input.ensure_vertex(Color(2), Label::scalar(13));
        input.add_facet([a, b2, x]);
        input.add_facet([a, b2, y]);
        let (e, _) = check_lemma_3_3(&input, 1);
        assert_eq!(e.complex().num_facets(), 26);
    }

    #[test]
    fn decode_carrier_depth_two() {
        let input = Complex::standard_simplex(1);
        let sub = protocol_subdivision(&input, 2);
        for v in sub.complex().vertex_ids() {
            let carrier = sub.carrier_of_vertex(v);
            assert!(!carrier.is_empty());
            assert!(input.contains_simplex(carrier));
        }
        sub.validate().unwrap();
    }
}
