//! The compiled CSP kernel for the Proposition 3.1 search.
//!
//! [`crate::solvability`] decides wait-free solvability by searching for a
//! color-preserving simplicial map `δ : SDS^b(I) → O` with
//! `δ(s) ∈ Δ(carrier(s))` — a finite CSP. The *reference engine* (kept in
//! `solvability.rs`, selectable with [`Kernel::Reference`]) represents
//! domains as `Vec<VertexId>` and clones the whole domain vector at every
//! search node. This module compiles the same CSP into flat, cache-friendly
//! arrays and searches it without allocating on the hot path:
//!
//! - **Per-color candidate tables** (`OutputEncoder`): the output
//!   vertices of each color, sorted ascending, give every variable a
//!   fixed-width `u64` bitword domain whose bit order *is* the reference
//!   engine's sorted `VertexId` order.
//! - **Flat tuple arena + support lists** (`CompiledTable`): each
//!   allowed-tuple table is one `Vec<u32>` of bit indices with stride =
//!   arity, plus a CSR of per-`(pos, value)` support lists (tuple indices)
//!   and AC-3rm-style last-support residues, so a support check scans only
//!   the tuples that can match instead of the whole table, and domain
//!   membership is a single bit test instead of a linear probe.
//! - **Trail-based undo** (`SearchState`): `propagate`/`backtrack`
//!   mutate one domain state in place, recording overwritten words on a
//!   trail and rewinding to a mark on backtrack.
//! - **CSR adjacency**: the vertex → constraints map and the compilation
//!   itself stream over [`iis_topology::Complex::for_each_simplex`] instead
//!   of materializing the `BTreeSet<Simplex>` face poset.
//!
//! **Determinism.** The kernel preserves the reference engine's variable
//! order (lowest index among smallest domains > 1), value order (ascending
//! `VertexId`, which equals ascending bit index within a color universe),
//! propagation queue discipline (LIFO with an in-queue flag, revisions in
//! position order), and node-charging points (one charge per `backtrack`
//! entry and per split expansion). Residues are a pure cache: they change
//! which support is *found first*, never whether one exists. Verdicts,
//! witnesses, and the `solve.nodes`/`solve.subtrees` accounting are
//! therefore bit-identical to the reference engine at every thread count —
//! enforced by the differential suites in `crates/core/tests/`.

use crate::parallel::{run_pool, FirstWins, SharedBudget};
use crate::solvability::{Halt, SearchCtx, SearchStrategy, SolveOptions};
use iis_tasks::Task;
use iis_topology::{Color, Complex, Simplex, SimplicialMap, Subdivision, VertexId};
use std::collections::HashMap;
use std::sync::Arc;

/// Which CSP engine runs the Proposition 3.1 search.
///
/// Both engines explore the same tree in the same order and return
/// bit-identical verdicts, witnesses, and node accounting; they differ only
/// in speed. The CLI exposes this as `--kernel compiled|reference`.
///
/// # Examples
///
/// ```
/// use iis_core::solvability::{solve_at_opts, BoundedOutcome, Kernel, SolveOptions};
/// use iis_tasks::library::consensus;
///
/// let task = consensus(1, &[0, 1]);
/// for kernel in [Kernel::Compiled, Kernel::Reference] {
///     let out = solve_at_opts(&task, 1, &SolveOptions::new().kernel(kernel));
///     assert!(matches!(out, BoundedOutcome::Unsolvable)); // FLP, twice
/// }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Kernel {
    /// The flat bitset kernel in this module — the default.
    #[default]
    Compiled,
    /// The pointer-and-hash engine in `solvability.rs`, retained as the
    /// differential-testing oracle and escape hatch.
    Reference,
}

/// Per-color output-candidate tables: for each color of the output complex,
/// its vertices in ascending `VertexId` order. A variable's domain is a
/// bitset over its color's universe, `words` `u64`s wide for every color.
pub(crate) struct OutputEncoder {
    /// Sorted distinct colors of the output complex's vertices.
    colors: Vec<Color>,
    /// Per dense color index: output vertices of that color, ascending.
    universes: Vec<Vec<VertexId>>,
    /// Per output vertex id: (dense color index, bit index).
    slot: Vec<(u32, u32)>,
    /// Uniform domain width: `ceil(max universe size / 64)`, at least 1.
    words: usize,
}

impl OutputEncoder {
    fn new(output: &Complex) -> Self {
        let mut colors: Vec<Color> = output.vertex_ids().map(|v| output.color(v)).collect();
        colors.sort_unstable();
        colors.dedup();
        let mut universes: Vec<Vec<VertexId>> = vec![Vec::new(); colors.len()];
        let mut slot = vec![(0u32, 0u32); output.num_vertices()];
        for v in output.vertex_ids() {
            let ci = colors
                .binary_search(&output.color(v))
                .expect("color collected above");
            slot[v.index()] = (ci as u32, universes[ci].len() as u32);
            universes[ci].push(v);
        }
        let max = universes.iter().map(Vec::len).max().unwrap_or(0);
        OutputEncoder {
            colors,
            universes,
            slot,
            words: max.div_ceil(64).max(1),
        }
    }

    /// The bit index of output vertex `w` within its color's universe.
    fn bit_of(&self, w: VertexId) -> u32 {
        self.slot[w.index()].1
    }

    /// Largest universe size across colors (the per-position value stride
    /// of every [`CompiledTable`]).
    fn val_stride(&self) -> usize {
        self.universes
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(1)
    }
}

/// One allowed-tuple table compiled to flat arrays, shared (via `Arc`)
/// between every constraint with the same `(carrier, colors)` key and
/// between both engines.
pub(crate) struct CompiledTable {
    /// The reference representation: sorted, deduplicated allowed tuples of
    /// output vertices, in variable order. The reference engine searches
    /// this directly.
    pub(crate) allowed: Vec<Vec<VertexId>>,
    /// The same tuples as per-color bit indices, stride = `arity`.
    tuples: Vec<u32>,
    /// Number of positions (= the constraint's simplex size).
    arity: usize,
    /// Per-position value range of the support CSR.
    val_stride: usize,
    /// CSR offsets over `(pos, value)` slots into `supports`.
    support_off: Vec<u32>,
    /// Tuple indices supporting each `(pos, value)`, ascending.
    supports: Vec<u32>,
}

impl CompiledTable {
    fn new(allowed: Vec<Vec<VertexId>>, arity: usize, enc: &OutputEncoder) -> Self {
        let val_stride = enc.val_stride();
        let mut tuples = Vec::with_capacity(allowed.len() * arity);
        for t in &allowed {
            for &w in t {
                tuples.push(enc.bit_of(w));
            }
        }
        let slots = arity * val_stride;
        let mut support_off = vec![0u32; slots + 1];
        for (ti, _) in allowed.iter().enumerate() {
            for pos in 0..arity {
                let val = tuples[ti * arity + pos] as usize;
                support_off[pos * val_stride + val + 1] += 1;
            }
        }
        for i in 0..slots {
            support_off[i + 1] += support_off[i];
        }
        let mut cursor = support_off.clone();
        let mut supports = vec![0u32; tuples.len()];
        for (ti, _) in allowed.iter().enumerate() {
            for pos in 0..arity {
                let s = pos * val_stride + tuples[ti * arity + pos] as usize;
                supports[cursor[s] as usize] = ti as u32;
                cursor[s] += 1;
            }
        }
        CompiledTable {
            allowed,
            tuples,
            arity,
            val_stride,
            support_off,
            supports,
        }
    }

    /// The tuple indices whose value at `pos` is `val`.
    fn supports_of(&self, pos: usize, val: u32) -> &[u32] {
        let s = pos * self.val_stride + val as usize;
        &self.supports[self.support_off[s] as usize..self.support_off[s + 1] as usize]
    }

    /// Number of residue slots this table needs per constraint.
    fn residue_slots(&self) -> usize {
        self.arity * self.val_stride
    }
}

/// Memoized compiled tables, keyed by `(carrier, colors)` — the only inputs
/// a table depends on. Carriers are simplices of the *base* complex and
/// tuples are vertices of the output complex, both fixed for the life of a
/// task, so a [`crate::solvability::Solver`] carries one cache across its
/// whole round sweep (`solve.constraint_cache_hits`).
///
/// The map is two-level (`carrier → colors → table`), so the hit path is
/// two borrowed lookups — no `(carrier.clone(), colors.to_vec())` composite
/// key, no allocation.
#[derive(Default)]
pub(crate) struct ConstraintCache {
    tables: HashMap<Simplex, HashMap<Box<[Color]>, Arc<CompiledTable>>>,
    encoder: Option<Arc<OutputEncoder>>,
}

impl ConstraintCache {
    /// The per-color candidate tables of `task`'s output complex, built
    /// once per cache.
    fn encoder(&mut self, task: &Task) -> &Arc<OutputEncoder> {
        self.encoder
            .get_or_insert_with(|| Arc::new(OutputEncoder::new(task.output())))
    }

    /// The compiled table for a simplex with the given carrier and colors.
    pub(crate) fn table(
        &mut self,
        task: &Task,
        carrier: &Simplex,
        colors: &[Color],
    ) -> Arc<CompiledTable> {
        if let Some(hit) = self.tables.get(carrier).and_then(|m| m.get(colors)) {
            iis_obs::metrics::add("solve.constraint_cache_hits", 1);
            iis_obs::progress::cache_lookup(true);
            return Arc::clone(hit);
        }
        iis_obs::progress::cache_lookup(false);
        let mut allowed: Vec<Vec<VertexId>> = Vec::new();
        for so in task.delta(carrier) {
            let mut tuple = Vec::with_capacity(colors.len());
            let mut ok = true;
            for &col in colors {
                match so.iter().find(|&w| task.output().color(w) == col) {
                    Some(w) => tuple.push(w),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                allowed.push(tuple);
            }
        }
        allowed.sort();
        allowed.dedup();
        let enc = Arc::clone(self.encoder(task));
        let table = Arc::new(CompiledTable::new(allowed, colors.len(), &enc));
        self.tables
            .entry(carrier.clone())
            .or_default()
            .insert(colors.into(), Arc::clone(&table));
        table
    }
}

/// The compiled CSP: flat constraint/variable arrays over bitword domains.
pub(crate) struct BitsetCsp {
    num_vars: usize,
    /// Domain width per variable, in `u64` words.
    words: usize,
    /// Flat constraint variable lists (CSR via `coff`).
    cvar: Vec<u32>,
    coff: Vec<u32>,
    tables: Vec<Arc<CompiledTable>>,
    /// CSR adjacency: for each variable, the constraints containing it.
    cont: Vec<u32>,
    cont_off: Vec<u32>,
    /// Per-constraint base index into the residue array.
    res_off: Vec<u32>,
    /// CSR: constraints indexed by their highest variable (plain engine).
    closing: Vec<u32>,
    closing_off: Vec<u32>,
    /// Per variable: dense color index into the encoder's universes.
    var_color: Vec<u32>,
    encoder: Arc<OutputEncoder>,
    nodes: iis_obs::metrics::Counter,
    backtracks: iis_obs::metrics::Counter,
    prunes: iis_obs::metrics::Counter,
    propagations: iis_obs::metrics::Counter,
}

/// One search worker's mutable state: the domain bitwords, the undo trail,
/// the residue cache, and reusable scratch buffers — everything the inner
/// loop touches, allocated once per (sub)search instead of per node.
pub(crate) struct SearchState {
    /// `num_vars * words` domain bitwords.
    dom: Vec<u64>,
    /// `(word index, overwritten value)` pairs; rewound to a mark on undo.
    trail: Vec<(u32, u64)>,
    /// Last supporting tuple index per `(constraint, pos, value)`, or
    /// `u32::MAX`. A cache in the AC-3rm style: never trailed, because a
    /// stale residue only costs a rescan, never a wrong answer.
    residues: Vec<u32>,
    /// Propagation queue scratch (LIFO, like the reference engine).
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    /// Stack-disciplined candidate-value scratch for `backtrack`.
    cands: Vec<u32>,
}

impl SearchState {
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (idx, old) = self.trail.pop().expect("len checked");
            self.dom[idx as usize] = old;
        }
    }
}

impl BitsetCsp {
    /// A fresh search state over the given domain words.
    fn new_state(&self, dom: Vec<u64>) -> SearchState {
        debug_assert_eq!(dom.len(), self.num_vars * self.words);
        SearchState {
            dom,
            trail: Vec::new(),
            residues: vec![u32::MAX; *self.res_off.last().expect("nc+1 offsets") as usize],
            queue: Vec::new(),
            in_queue: vec![false; self.tables.len()],
            cands: Vec::new(),
        }
    }

    /// The variable indices of constraint `ci`.
    fn verts(&self, ci: usize) -> &[u32] {
        &self.cvar[self.coff[ci] as usize..self.coff[ci + 1] as usize]
    }

    /// The constraints containing variable `vi`.
    fn containing(&self, vi: usize) -> &[u32] {
        &self.cont[self.cont_off[vi] as usize..self.cont_off[vi + 1] as usize]
    }

    fn dom_len(&self, dom: &[u64], vi: usize) -> u32 {
        dom[vi * self.words..(vi + 1) * self.words]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// Appends the set bits of `vi`'s domain (ascending — i.e. ascending
    /// `VertexId` within the color universe) to `out`.
    fn push_values(&self, dom: &[u64], vi: usize, out: &mut Vec<u32>) {
        for wi in 0..self.words {
            let mut bits = dom[vi * self.words + wi];
            while bits != 0 {
                out.push((wi * 64) as u32 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
    }

    /// Restricts `vi`'s domain to the singleton `{val}`, recording the
    /// overwritten words on the trail.
    fn assign(&self, st: &mut SearchState, vi: usize, val: u32) {
        for wi in 0..self.words {
            let idx = vi * self.words + wi;
            let target = if wi == (val as usize) / 64 {
                1u64 << (val % 64)
            } else {
                0
            };
            if st.dom[idx] != target {
                st.trail.push((idx as u32, st.dom[idx]));
                st.dom[idx] = target;
            }
        }
    }

    /// `true` iff tuple `ti` of constraint `ci` lies inside the current
    /// domains at every position except `skip`.
    fn tuple_alive(&self, dom: &[u64], ci: usize, ti: u32, skip: usize) -> bool {
        let t = &self.tables[ci];
        let base = ti as usize * t.arity;
        let verts = self.verts(ci);
        for (j, &vj) in verts.iter().enumerate() {
            if j == skip {
                continue;
            }
            let val = t.tuples[base + j] as usize;
            if dom[vj as usize * self.words + val / 64] & (1u64 << (val % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// `true` iff some allowed tuple of constraint `ci` has `val` at `pos`
    /// and every other position inside its variable's current domain.
    /// Checks the cached residue first, then scans the `(pos, val)` support
    /// list — never the whole table.
    fn supported(
        &self,
        dom: &[u64],
        residues: &mut [u32],
        ci: usize,
        pos: usize,
        val: u32,
    ) -> bool {
        let t = &self.tables[ci];
        let slot = self.res_off[ci] as usize + pos * t.val_stride + val as usize;
        let r = residues[slot];
        if r != u32::MAX && self.tuple_alive(dom, ci, r, pos) {
            return true;
        }
        for &ti in t.supports_of(pos, val) {
            if self.tuple_alive(dom, ci, ti, pos) {
                residues[slot] = ti;
                return true;
            }
        }
        false
    }

    /// Generalized arc consistency to a fixpoint, in place, trail-recorded.
    /// Returns `false` on a domain wipeout. Mirrors the reference engine's
    /// queue discipline exactly (LIFO, in-queue dedup, revisions in
    /// position order), so it reaches the same fixpoint with the same
    /// counter increments.
    fn propagate(&self, st: &mut SearchState, seed: Option<usize>) -> bool {
        let nc = self.tables.len();
        st.queue.clear();
        st.in_queue.iter_mut().for_each(|b| *b = false);
        match seed {
            Some(v) => st.queue.extend_from_slice(self.containing(v)),
            None => st.queue.extend(0..nc as u32),
        }
        for &i in &st.queue {
            st.in_queue[i as usize] = true;
        }
        while let Some(ci) = st.queue.pop() {
            let ci = ci as usize;
            st.in_queue[ci] = false;
            self.propagations.incr();
            let arity = self.tables[ci].arity;
            for pos in 0..arity {
                let v = self.cvar[self.coff[ci] as usize + pos] as usize;
                let vbase = v * self.words;
                let mut before = 0u32;
                let mut after = 0u32;
                for wi in 0..self.words {
                    let old = st.dom[vbase + wi];
                    before += old.count_ones();
                    let mut kept = old;
                    let mut bits = old;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        bits &= bits - 1;
                        let val = (wi * 64) as u32 + b;
                        if !self.supported(&st.dom, &mut st.residues, ci, pos, val) {
                            kept &= !(1u64 << b);
                        }
                    }
                    if kept != old {
                        st.trail.push(((vbase + wi) as u32, old));
                        st.dom[vbase + wi] = kept;
                    }
                    after += kept.count_ones();
                }
                if after == 0 {
                    self.prunes.add(before as u64);
                    return false;
                }
                if after < before {
                    self.prunes.add((before - after) as u64);
                    for &cj in self.containing(v) {
                        if !st.in_queue[cj as usize] {
                            st.in_queue[cj as usize] = true;
                            st.queue.push(cj);
                        }
                    }
                }
            }
        }
        true
    }

    /// Decodes a fully-singleton state into the assignment vector.
    fn extract(&self, st: &SearchState) -> Vec<VertexId> {
        let mut scratch = Vec::with_capacity(1);
        (0..self.num_vars)
            .map(|vi| {
                scratch.clear();
                self.push_values(&st.dom, vi, &mut scratch);
                debug_assert_eq!(scratch.len(), 1, "extract requires singleton domains");
                self.decode(vi, scratch[0])
            })
            .collect()
    }

    /// The output vertex for value `val` of variable `vi`.
    fn decode(&self, vi: usize, val: u32) -> VertexId {
        self.encoder.universes[self.var_color[vi] as usize][val as usize]
    }

    /// Complete backtracking with propagation (MAC), trail-undo instead of
    /// domain cloning. Same variable pick (lowest index among smallest
    /// domains > 1), same value order, same charging points as the
    /// reference engine.
    pub(crate) fn backtrack(
        &self,
        st: &mut SearchState,
        ctx: &SearchCtx<'_>,
    ) -> Result<Option<Vec<VertexId>>, Halt> {
        ctx.charge(&self.nodes)?;
        let mut pick = None;
        let mut best = u32::MAX;
        for vi in 0..self.num_vars {
            let len = self.dom_len(&st.dom, vi);
            if len > 1 && len < best {
                best = len;
                pick = Some(vi);
            }
        }
        let Some(vi) = pick else {
            // all singleton: done
            return Ok(Some(self.extract(st)));
        };
        let cbase = st.cands.len();
        {
            // split the borrow: push_values reads dom, writes cands
            let (dom, cands) = (&st.dom, &mut st.cands);
            self.push_values(dom, vi, cands);
        }
        let cnt = st.cands.len() - cbase;
        let mut result = Ok(None);
        for k in 0..cnt {
            let val = st.cands[cbase + k];
            let mark = st.trail.len();
            self.assign(st, vi, val);
            if self.propagate(st, Some(vi)) {
                match self.backtrack(st, ctx) {
                    Ok(None) => {}
                    other => {
                        result = other;
                        break;
                    }
                }
            }
            st.undo_to(mark);
        }
        st.cands.truncate(cbase);
        if matches!(result, Ok(None)) {
            self.backtracks.incr();
        }
        result
    }

    /// `true` iff every constraint whose highest variable is `k` accepts
    /// the assignment prefix `0..=k` (membership via the position-0 support
    /// list — equivalent to the reference engine's table scan).
    fn closing_ok(&self, assignment: &[u32], k: usize) -> bool {
        let cs = &self.closing[self.closing_off[k] as usize..self.closing_off[k + 1] as usize];
        'con: for &ci in cs {
            let ci = ci as usize;
            let t = &self.tables[ci];
            let verts = self.verts(ci);
            let first = assignment[verts[0] as usize];
            for &ti in t.supports_of(0, first) {
                let base = ti as usize * t.arity;
                if verts
                    .iter()
                    .enumerate()
                    .all(|(j, &vj)| t.tuples[base + j] == assignment[vj as usize])
                {
                    continue 'con;
                }
            }
            return false;
        }
        true
    }

    /// Chronological backtracking without propagation — the ablation
    /// baseline, on the bitword domains. Domains are read-only here, so no
    /// trail is needed.
    pub(crate) fn backtrack_plain(
        &self,
        dom: &[u64],
        ctx: &SearchCtx<'_>,
    ) -> Result<Option<Vec<VertexId>>, Halt> {
        fn rec(
            csp: &BitsetCsp,
            dom: &[u64],
            assignment: &mut [u32],
            k: usize,
            ctx: &SearchCtx<'_>,
        ) -> Result<bool, Halt> {
            ctx.charge(&csp.nodes)?;
            if k == csp.num_vars {
                return Ok(true);
            }
            for wi in 0..csp.words {
                let mut bits = dom[k * csp.words + wi];
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    assignment[k] = (wi * 64) as u32 + b;
                    if csp.closing_ok(assignment, k) && rec(csp, dom, assignment, k + 1, ctx)? {
                        return Ok(true);
                    }
                }
            }
            csp.backtracks.incr();
            Ok(false)
        }
        let mut assignment = vec![0u32; self.num_vars];
        match rec(self, dom, &mut assignment, 0, ctx)? {
            true => Ok(Some(
                assignment
                    .iter()
                    .enumerate()
                    .map(|(vi, &val)| self.decode(vi, val))
                    .collect(),
            )),
            false => Ok(None),
        }
    }

    /// Expands the root state breadth-first, in the sequential search's
    /// branching order, until at least `target` independent subtree states
    /// exist (or the tree stops branching) — the same shape as the
    /// reference engine's splitter, over domain-word snapshots. Subtree
    /// roots are plain word vectors: a worker wraps one in a fresh
    /// [`SearchState`] (empty trail) and searches in place.
    fn split(
        &self,
        root: Vec<u64>,
        target: usize,
        strategy: SearchStrategy,
        ctx: &SearchCtx<'_>,
    ) -> Result<Vec<Vec<u64>>, Halt> {
        let mut scratch = self.new_state(vec![0u64; self.num_vars * self.words]);
        let mut values: Vec<u32> = Vec::new();
        let mut frontier = vec![root];
        loop {
            if frontier.len() >= target {
                return Ok(frontier);
            }
            let mut next: Vec<Vec<u64>> = Vec::new();
            let mut expanded = false;
            for state in frontier {
                if expanded && next.len() + 1 >= target {
                    // enough subtrees; keep the rest unexpanded, in order
                    next.push(state);
                    continue;
                }
                match strategy {
                    SearchStrategy::Mac => {
                        let mut pick = None;
                        let mut best = u32::MAX;
                        for vi in 0..self.num_vars {
                            let len = self.dom_len(&state, vi);
                            if len > 1 && len < best {
                                best = len;
                                pick = Some(vi);
                            }
                        }
                        let Some(vi) = pick else {
                            next.push(state);
                            continue;
                        };
                        ctx.charge(&self.nodes)?;
                        expanded = true;
                        let before = next.len();
                        values.clear();
                        self.push_values(&state, vi, &mut values);
                        for &val in &values {
                            scratch.dom.copy_from_slice(&state);
                            scratch.trail.clear();
                            self.assign(&mut scratch, vi, val);
                            if self.propagate(&mut scratch, Some(vi)) {
                                next.push(scratch.dom.clone());
                            }
                        }
                        if next.len() == before {
                            self.backtracks.incr();
                        }
                    }
                    SearchStrategy::PlainBacktracking => {
                        let Some(vi) = (0..self.num_vars).find(|&vi| self.dom_len(&state, vi) > 1)
                        else {
                            next.push(state);
                            continue;
                        };
                        expanded = true;
                        values.clear();
                        self.push_values(&state, vi, &mut values);
                        for &val in &values {
                            let mut child = state.clone();
                            for wi in 0..self.words {
                                child[vi * self.words + wi] = if wi == (val as usize) / 64 {
                                    1u64 << (val % 64)
                                } else {
                                    0
                                };
                            }
                            next.push(child);
                        }
                    }
                }
            }
            if !expanded {
                return Ok(next);
            }
            frontier = next;
            if frontier.is_empty() {
                return Ok(frontier);
            }
        }
    }
}

/// Compiles the CSP for `sub` into the flat kernel representation, plus the
/// initial domain words from the unary constraints. `None` means a
/// constraint admits no tuple or a domain starts empty — provably
/// unsolvable, exactly as in the reference `compile_csp`.
fn compile(
    task: &Task,
    sub: &Subdivision,
    cache: &mut ConstraintCache,
) -> Option<(BitsetCsp, Vec<u64>)> {
    let c = sub.complex();
    let nv = c.num_vertices();
    let encoder = Arc::clone(cache.encoder(task));
    let words = encoder.words;
    let mut cvar: Vec<u32> = Vec::new();
    let mut coff: Vec<u32> = vec![0];
    let mut tables: Vec<Arc<CompiledTable>> = Vec::new();
    let mut empty_table = false;
    let mut colors: Vec<Color> = Vec::new();
    c.for_each_simplex(|s| {
        if empty_table {
            return;
        }
        colors.clear();
        colors.extend(s.iter().map(|v| c.color(v)));
        let carrier = sub.carrier_of_simplex(s);
        let table = cache.table(task, &carrier, &colors);
        if table.allowed.is_empty() {
            empty_table = true;
            return;
        }
        cvar.extend(s.iter().map(|v| v.0));
        coff.push(cvar.len() as u32);
        tables.push(table);
    });
    if empty_table {
        return None;
    }
    let nc = tables.len();
    // CSR adjacency, constraints in index order per vertex (as the
    // reference engine's push order)
    let mut cont_off = vec![0u32; nv + 1];
    for &v in &cvar {
        cont_off[v as usize + 1] += 1;
    }
    for i in 0..nv {
        cont_off[i + 1] += cont_off[i];
    }
    let mut cursor = cont_off.clone();
    let mut cont = vec![0u32; cvar.len()];
    for ci in 0..nc {
        for &v in &cvar[coff[ci] as usize..coff[ci + 1] as usize] {
            cont[cursor[v as usize] as usize] = ci as u32;
            cursor[v as usize] += 1;
        }
    }
    // initial domains from the unary (vertex) constraints
    let mut dom = vec![0u64; nv * words];
    for ci in 0..nc {
        if tables[ci].arity == 1 {
            let v = cvar[coff[ci] as usize] as usize;
            for t in &tables[ci].allowed {
                let bit = encoder.bit_of(t[0]) as usize;
                dom[v * words + bit / 64] |= 1u64 << (bit % 64);
            }
        }
    }
    if (0..nv).any(|vi| dom[vi * words..(vi + 1) * words].iter().all(|&w| w == 0)) {
        return None;
    }
    let var_color: Vec<u32> = (0..nv)
        .map(|vi| {
            let col = c.color(VertexId(vi as u32));
            encoder
                .colors
                .binary_search(&col)
                .expect("non-empty domain implies the color exists in the output")
                as u32
        })
        .collect();
    let mut res_off = vec![0u32; nc + 1];
    for ci in 0..nc {
        res_off[ci + 1] = res_off[ci] + tables[ci].residue_slots() as u32;
    }
    // constraints indexed by their highest variable (verts are sorted, so
    // the last entry is the max — same lists as the reference engine)
    let mut closing_off = vec![0u32; nv + 1];
    for ci in 0..nc {
        let hi = *cvar[coff[ci] as usize..coff[ci + 1] as usize]
            .last()
            .expect("non-empty constraint") as usize;
        closing_off[hi + 1] += 1;
    }
    for i in 0..nv {
        closing_off[i + 1] += closing_off[i];
    }
    let mut cursor = closing_off.clone();
    let mut closing = vec![0u32; nc];
    for ci in 0..nc {
        let hi = *cvar[coff[ci] as usize..coff[ci + 1] as usize]
            .last()
            .expect("non-empty constraint") as usize;
        closing[cursor[hi] as usize] = ci as u32;
        cursor[hi] += 1;
    }
    let csp = BitsetCsp {
        num_vars: nv,
        words,
        cvar,
        coff,
        tables,
        cont,
        cont_off,
        res_off,
        closing,
        closing_off,
        var_color,
        encoder,
        nodes: iis_obs::metrics::Counter::handle("solve.nodes"),
        backtracks: iis_obs::metrics::Counter::handle("solve.backtracks"),
        prunes: iis_obs::metrics::Counter::handle("solve.prunes"),
        propagations: iis_obs::metrics::Counter::handle("solve.propagations"),
    };
    Some((csp, dom))
}

/// The kernel's search entry: compile, propagate the root, then search —
/// sequentially or via the parallel splitter. The control flow mirrors the
/// reference engine's `search_map` line by line.
pub(crate) fn search_map(
    task: &Task,
    sub: &Subdivision,
    budget: &SharedBudget,
    deadline: Option<std::time::Instant>,
    opts: &SolveOptions,
    cache: &mut ConstraintCache,
    round: iis_obs::profile::SpanId,
) -> Result<Option<SimplicialMap>, Halt> {
    let compile_t0 = crate::solvability::profile_now();
    let compiled = compile(task, sub, cache);
    if let Some(t0) = compile_t0 {
        iis_obs::profile::sample_under(round, "compile", 2, 0, t0.elapsed().as_nanos() as u64);
    }
    let Some((csp, root)) = compiled else {
        return Ok(None);
    };
    let ctx = SearchCtx::new(budget, deadline, None);
    // mirrors the reference engine: one sampled `search` leaf under the
    // round, recorded even when the search halts mid-tree
    let sample_search = |ctx: &SearchCtx<'_>, t0: Option<std::time::Instant>| {
        if let Some(t0) = t0 {
            iis_obs::profile::sample_under(
                round,
                "search",
                2,
                ctx.spent(),
                t0.elapsed().as_nanos() as u64,
            );
        }
    };
    let assignment = match opts.strategy {
        SearchStrategy::Mac => {
            let mut st = csp.new_state(root);
            if !csp.propagate(&mut st, None) {
                return Ok(None);
            }
            if opts.jobs > 1 {
                search_parallel(&csp, st.dom, budget, deadline, opts, round)?
            } else {
                let t0 = crate::solvability::profile_now();
                let found = csp.backtrack(&mut st, &ctx);
                sample_search(&ctx, t0);
                found?
            }
        }
        SearchStrategy::PlainBacktracking => {
            if opts.jobs > 1 {
                search_parallel(&csp, root, budget, deadline, opts, round)?
            } else {
                let t0 = crate::solvability::profile_now();
                let found = csp.backtrack_plain(&root, &ctx);
                sample_search(&ctx, t0);
                found?
            }
        }
    };
    Ok(assignment.map(|a| {
        SimplicialMap::from_pairs(
            a.into_iter()
                .enumerate()
                .map(|(i, w)| (VertexId(i as u32), w)),
        )
    }))
}

/// Parallel search over kernel subtree snapshots: split in sequential
/// depth-first order, run on the work-stealing pool, lowest-indexed witness
/// wins (DESIGN.md §7 — unchanged by the kernel; only the subtree state
/// representation differs).
fn search_parallel(
    csp: &BitsetCsp,
    root: Vec<u64>,
    budget: &SharedBudget,
    deadline: Option<std::time::Instant>,
    opts: &SolveOptions,
    round: iis_obs::profile::SpanId,
) -> Result<Option<Vec<VertexId>>, Halt> {
    let splitter = SearchCtx::new(budget, deadline, None);
    let split_t0 = crate::solvability::profile_now();
    let subtrees = csp.split(root, opts.jobs * 4, opts.strategy, &splitter);
    if let Some(t0) = split_t0 {
        iis_obs::profile::sample_under(
            round,
            "split",
            2,
            splitter.spent(),
            t0.elapsed().as_nanos() as u64,
        );
    }
    let subtrees = subtrees?;
    iis_obs::metrics::add("solve.subtrees", subtrees.len() as u64);
    iis_obs::progress::set_subtrees(subtrees.len() as u64);
    let cell: FirstWins<Vec<VertexId>> = FirstWins::new();
    let verdicts = run_pool(subtrees, opts.jobs, |index, dom| {
        let ctx = SearchCtx::new(budget, deadline, Some((&cell, index)));
        let t0 = crate::solvability::profile_now();
        let found = match opts.strategy {
            SearchStrategy::Mac => {
                let mut st = csp.new_state(dom);
                csp.backtrack(&mut st, &ctx)
            }
            SearchStrategy::PlainBacktracking => csp.backtrack_plain(&dom, &ctx),
        };
        if let Some(t0) = t0 {
            let subtree = iis_obs::profile::register(round, &format!("subtree:{index}"));
            iis_obs::profile::sample_under(
                subtree,
                "search",
                3,
                ctx.spent(),
                t0.elapsed().as_nanos() as u64,
            );
        }
        iis_obs::progress::subtree_done();
        match found {
            Ok(Some(solution)) => {
                cell.offer(index, solution);
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(halt) => Err(halt),
        }
    });
    let cancelled = verdicts
        .iter()
        .filter(|v| **v == Err(Halt::Cancelled))
        .count();
    iis_obs::metrics::add("solve.cancelled", cancelled as u64);
    match cell.take() {
        Some((_, solution)) => Ok(Some(solution)),
        None if verdicts.contains(&Err(Halt::Timeout)) => Err(Halt::Timeout),
        None if verdicts.contains(&Err(Halt::Budget)) => Err(Halt::Budget),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_tasks::library::k_set_consensus;
    use iis_topology::sds_iterated;

    /// The support CSR must index exactly the tuples a linear scan finds.
    #[test]
    fn support_lists_match_linear_scan() {
        let task = k_set_consensus(2, 2);
        let sub = sds_iterated(task.input(), 1);
        let mut cache = ConstraintCache::default();
        let (csp, _) = compile(&task, &sub, &mut cache).expect("compiles");
        for t in &csp.tables {
            for pos in 0..t.arity {
                for val in 0..t.val_stride as u32 {
                    let listed: Vec<u32> = t.supports_of(pos, val).to_vec();
                    let scanned: Vec<u32> = (0..t.allowed.len() as u32)
                        .filter(|&ti| t.tuples[ti as usize * t.arity + pos] == val)
                        .collect();
                    assert_eq!(listed, scanned);
                }
            }
        }
    }

    /// Trail undo must restore the exact pre-assignment domain words.
    #[test]
    fn trail_undo_restores_domains() {
        let task = k_set_consensus(2, 2);
        let sub = sds_iterated(task.input(), 1);
        let mut cache = ConstraintCache::default();
        let (csp, root) = compile(&task, &sub, &mut cache).expect("compiles");
        let mut st = csp.new_state(root);
        assert!(csp.propagate(&mut st, None));
        let snapshot = st.dom.clone();
        // branch on the first undecided variable, then rewind
        let vi = (0..csp.num_vars)
            .find(|&vi| csp.dom_len(&st.dom, vi) > 1)
            .expect("(3,2)-set consensus at b=1 is not decided by propagation alone");
        let mut vals = Vec::new();
        csp.push_values(&st.dom, vi, &mut vals);
        for &val in &vals {
            let mark = st.trail.len();
            csp.assign(&mut st, vi, val);
            csp.propagate(&mut st, Some(vi));
            st.undo_to(mark);
            assert_eq!(st.dom, snapshot, "undo must restore the domain state");
        }
    }

    /// The bit order of a domain equals the reference engine's sorted
    /// `VertexId` value order.
    #[test]
    fn bit_order_is_vertex_id_order() {
        let task = k_set_consensus(2, 3);
        let enc = OutputEncoder::new(task.output());
        for universe in &enc.universes {
            let mut sorted = universe.clone();
            sorted.sort();
            assert_eq!(*universe, sorted);
        }
        for v in task.output().vertex_ids() {
            let (ci, bit) = enc.slot[v.index()];
            assert_eq!(enc.universes[ci as usize][bit as usize], v);
        }
    }
}
