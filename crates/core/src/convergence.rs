//! Simplex convergence — §5 of the paper, Theorem 5.1 and the CSASS/NCSASS
//! tasks, made executable.
//!
//! Theorem 5.1: for every chromatic subdivision `A` of `sⁿ` and all large
//! enough `k` there is a color- and carrier-preserving simplicial map
//! `SDS^k(sⁿ) → A`. The paper proves it by exhibiting a wait-free algorithm
//! for chromatic simplex agreement (CSASS); conversely any wait-free
//! algorithm *is* such a map (Proposition 3.1). We exploit that equivalence
//! in both directions:
//!
//! - [`theorem_5_1_witness`] *finds* the map for a concrete `A` by running
//!   the complete decision-map search on the CSASS task — the effective
//!   form of the theorem (and of the "large implicit table" the paper's
//!   algorithm consults);
//! - [`SimplexAgreementMachine`] turns the witness into an actual IIS
//!   protocol: run `k` full-information rounds, then decide through the map
//!   — solving CSASS under every schedule;
//! - [`EdgeConvergence`] and [`PathConvergence`] implement the *direct*
//!   distributed convergence algorithms for the one-dimensional base case
//!   (two processes bisecting toward each other along a path — the
//!   "predefined path that lives in the face carrying the two cores" of
//!   §5), with no precomputed map at all.

use crate::solvability::{solve_at, DecisionMap};
use iis_sched::{IisMachine, MachineStep};
use iis_tasks::library::chromatic_simplex_agreement;
use iis_topology::{Color, Complex, Label, Simplex, Subdivision, VertexId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Finds the Theorem 5.1 witness for a chromatic subdivision `A` of a
/// simplex: the smallest `k ≤ max_rounds` with a color-preserving
/// simplicial map `SDS^k(sⁿ) → A` sending every simplex into its carrier,
/// packaged as a CSASS decision map.
///
/// Returns `None` only if `max_rounds` was too small (the theorem
/// guarantees existence for large enough `k`).
pub fn theorem_5_1_witness(target: &Subdivision, max_rounds: usize) -> Option<DecisionMap> {
    let task = chromatic_simplex_agreement(target);
    (0..=max_rounds).find_map(|b| solve_at(&task, b))
}

/// An IIS protocol solving chromatic simplex agreement over a subdivision,
/// driven by a Theorem 5.1 witness: run the witness's number of
/// full-information rounds, locate the resulting local state as a vertex of
/// `SDS^k(sⁿ)`, and decide its image under the map.
///
/// The output is a vertex id of the target subdivision's complex.
pub struct SimplexAgreementMachine {
    color: Color,
    state: Label,
    witness: Arc<DecisionMap>,
}

impl SimplexAgreementMachine {
    /// A machine for process `pid`, deciding through `witness`.
    ///
    /// The process's input label is its corner of the base simplex
    /// (`Label::scalar(pid)` in the standard construction).
    pub fn new(pid: usize, witness: Arc<DecisionMap>) -> Self {
        SimplexAgreementMachine {
            color: Color(pid as u32),
            state: Label::scalar(pid as u64),
            witness,
        }
    }

    fn decide(&self) -> VertexId {
        let c = self.witness.subdivision().complex();
        let v = c
            .vertex_id(self.color, &self.state)
            .expect("full-information state is a vertex of SDS^k");
        self.witness.map().image(v).expect("decision map is total")
    }
}

impl IisMachine for SimplexAgreementMachine {
    type Value = Label;
    type Output = VertexId;

    fn initial_value(&mut self) -> Label {
        self.state.clone()
    }

    fn on_view(&mut self, round: usize, view: &[(usize, Label)]) -> MachineStep<Label, VertexId> {
        if self.witness.rounds() == 0 {
            // degenerate target (identity subdivision): decide the corner
            return MachineStep::Decide(self.decide());
        }
        self.state = Label::view(view.iter().map(|(p, l)| (Color(*p as u32), l)));
        if round + 1 >= self.witness.rounds() {
            MachineStep::Decide(self.decide())
        } else {
            MachineStep::Continue(self.state.clone())
        }
    }
}

/// Validates a CSASS outcome (§5's task statement): decided outputs must
/// have each process's own color, form a simplex of `A`, and be carried
/// within the participating corners.
///
/// `outputs[p]` is `None` for processes that crashed undecided;
/// `participated[p]` says whether `p` took at least one step.
///
/// # Errors
///
/// Returns a description of the violated clause.
pub fn validate_csass_outcome(
    target: &Subdivision,
    outputs: &[Option<VertexId>],
    participated: &[bool],
) -> Result<(), String> {
    let c = target.complex();
    let mut decided = Vec::new();
    for (p, out) in outputs.iter().enumerate() {
        if let Some(w) = out {
            if c.color(*w) != Color(p as u32) {
                return Err(format!("P{p} decided a vertex of color {}", c.color(*w)));
            }
            decided.push(*w);
        }
    }
    let w = Simplex::new(decided);
    if !c.contains_simplex(&w) {
        return Err(format!("decided set {w} is not a simplex of A"));
    }
    let carrier = target.carrier_of_simplex(&w);
    let allowed = Simplex::new(
        target
            .base()
            .vertex_ids()
            .filter(|u| participated[target.base().color(*u).index()]),
    );
    if !carrier.is_face_of(&allowed) {
        return Err(format!(
            "carrier {carrier} exceeds participating corners {allowed}"
        ));
    }
    Ok(())
}

/// Positions on a path, in halves (fixed-point with denominator `2^r`).
type Fixed = i64;
const FIXED_ONE: Fixed = 1 << 20;

/// The direct two-process convergence algorithm on an alternately-colored
/// path of odd length `L` — chromatic simplex agreement over a subdivided
/// edge, with **no precomputed map**: each process starts at its corner,
/// repeatedly posts its position, and moves to the midpoint whenever it
/// sees the other. After `R > log₂(2L)` rounds the positions differ by less
/// than ½, and snapping to the nearest vertex of one's own color (even
/// positions for color 0, odd for color 1) lands on an edge.
///
/// This is the paper's base case: "if two processors show up there is a
/// predefined path … and each pair converges along it".
#[derive(Clone, Debug)]
pub struct EdgeConvergence {
    pid: usize,
    length: usize,
    pos: Fixed,
    rounds: usize,
}

impl EdgeConvergence {
    /// A machine for `pid ∈ {0, 1}` on a path of odd length `length`.
    /// Rounds are chosen automatically as `⌈log₂(2L)⌉ + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `pid > 1` or `length` is even.
    pub fn new(pid: usize, length: usize) -> Self {
        assert!(pid <= 1, "edge convergence is a 2-process protocol");
        assert!(
            length % 2 == 1,
            "a chromatic subdivided edge has odd length"
        );
        let rounds = (usize::BITS - (2 * length).leading_zeros()) as usize + 1;
        EdgeConvergence {
            pid,
            length,
            pos: if pid == 0 {
                0
            } else {
                length as Fixed * FIXED_ONE
            },
            rounds,
        }
    }

    /// The number of IIS rounds the protocol runs.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Snaps the final position to the nearest vertex of own parity/color.
    fn snap(&self) -> usize {
        let l = self.length as i64;
        // nearest integer of parity == pid
        let base = self.pos as f64 / FIXED_ONE as f64;
        let mut best = self.pid as i64;
        let mut best_d = f64::INFINITY;
        let mut k = self.pid as i64;
        while k <= l {
            let d = (base - k as f64).abs();
            if d < best_d {
                best_d = d;
                best = k;
            }
            k += 2;
        }
        best as usize
    }
}

impl IisMachine for EdgeConvergence {
    type Value = Fixed;
    type Output = usize;

    fn initial_value(&mut self) -> Fixed {
        self.pos
    }

    fn on_view(&mut self, round: usize, view: &[(usize, Fixed)]) -> MachineStep<Fixed, usize> {
        if let Some((_, other)) = view.iter().find(|(p, _)| *p != self.pid) {
            self.pos = (self.pos + other) / 2;
        }
        if round + 1 >= self.rounds {
            MachineStep::Decide(self.snap())
        } else {
            MachineStep::Continue(self.pos)
        }
    }
}

/// The paper's "large implicit table" for the two-process case of NCSAC
/// (§5): a precomputed path between *every* pair of vertices of a complex
/// with no holes, such that any two processes starting anywhere can
/// converge along "the predefined path that lives in the face … carrying
/// the two starting vertices".
///
/// Higher-arity entries of the table (fill-ins of the triangles the three
/// pairwise paths bound, etc.) exist by Lemma 2.2 and are realized in this
/// reproduction through [`theorem_5_1_witness`] maps; the table itself
/// covers the base case the recursion bottoms out in.
#[derive(Clone, Debug)]
pub struct ConvergenceTable {
    complex: Complex,
    paths: std::collections::HashMap<(VertexId, VertexId), Arc<Vec<VertexId>>>,
}

impl ConvergenceTable {
    /// Precomputes BFS paths between all vertex pairs of a connected
    /// complex.
    ///
    /// # Panics
    ///
    /// Panics if some pair of vertices is not connected by the 1-skeleton
    /// (the task assumes a complex with no hole of dimension 0).
    pub fn new(complex: Complex) -> Self {
        let ids: Vec<VertexId> = complex.vertex_ids().collect();
        let mut paths = std::collections::HashMap::new();
        for (i, &u) in ids.iter().enumerate() {
            for &v in &ids[i..] {
                let p = shortest_path(&complex, u, v)
                    .expect("convergence table requires a connected complex");
                paths.insert((u, v), Arc::new(p));
            }
        }
        ConvergenceTable { complex, paths }
    }

    /// The underlying complex.
    pub fn complex(&self) -> &Complex {
        &self.complex
    }

    /// The table entry for the (unordered) pair `{u, v}`, oriented from the
    /// smaller vertex id.
    pub fn path(&self, u: VertexId, v: VertexId) -> &Arc<Vec<VertexId>> {
        let key = if u <= v { (u, v) } else { (v, u) };
        &self.paths[&key]
    }

    /// Spawns the two convergence machines for processes starting at `u`
    /// (process 0) and `v` (process 1): both converge to a vertex or an
    /// edge on the table's `{u, v}` path.
    pub fn machines(&self, u: VertexId, v: VertexId) -> (PathConvergence, PathConvergence) {
        let oriented: Vec<VertexId> = if u <= v {
            self.path(u, v).to_vec()
        } else {
            let mut p = self.path(u, v).to_vec();
            p.reverse();
            p
        };
        PathConvergence::pair(oriented)
    }
}

/// Breadth-first shortest path between two vertices in the 1-skeleton of a
/// complex. Returns the vertex sequence `u … v`, or `None` if disconnected.
pub fn shortest_path(c: &Complex, u: VertexId, v: VertexId) -> Option<Vec<VertexId>> {
    if u == v {
        return Some(vec![u]);
    }
    let n = c.num_vertices();
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for e in c.simplices_of_dim(1) {
        let vs: Vec<VertexId> = e.iter().collect();
        adj[vs[0].index()].push(vs[1]);
        adj[vs[1].index()].push(vs[0]);
    }
    let mut prev: Vec<Option<VertexId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[u.index()] = true;
    let mut q = VecDeque::from([u]);
    while let Some(x) = q.pop_front() {
        for &y in &adj[x.index()] {
            if !seen[y.index()] {
                seen[y.index()] = true;
                prev[y.index()] = Some(x);
                if y == v {
                    let mut path = vec![v];
                    let mut cur = v;
                    while let Some(p) = prev[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(y);
            }
        }
    }
    None
}

/// Two-process *non-chromatic* simplex agreement over any connected complex
/// (the NCSAC base case): both processes converge along the precomputed
/// shortest path between their starting vertices — the `(u, v)` entry of
/// the paper's "large implicit table". Outputs are vertices at distance
/// ≤ 1 on the path (a vertex or an edge of the complex); a solo process
/// stays at its start.
#[derive(Clone, Debug)]
pub struct PathConvergence {
    pid: usize,
    path: Arc<Vec<VertexId>>,
    /// index into `path`, fixed-point
    pos: Fixed,
    rounds: usize,
}

impl PathConvergence {
    /// Machines for the two processes starting at the ends of `path`
    /// (process 0 at `path[0]`, process 1 at `path.last()`).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn pair(path: Vec<VertexId>) -> (Self, Self) {
        assert!(!path.is_empty());
        let rounds = (usize::BITS - (2 * path.len()).leading_zeros()) as usize + 1;
        let path = Arc::new(path);
        let last = (path.len() - 1) as Fixed * FIXED_ONE;
        (
            PathConvergence {
                pid: 0,
                path: Arc::clone(&path),
                pos: 0,
                rounds,
            },
            PathConvergence {
                pid: 1,
                path,
                pos: last,
                rounds,
            },
        )
    }

    /// The number of IIS rounds the protocol runs.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl IisMachine for PathConvergence {
    type Value = Fixed;
    type Output = VertexId;

    fn initial_value(&mut self) -> Fixed {
        self.pos
    }

    fn on_view(&mut self, round: usize, view: &[(usize, Fixed)]) -> MachineStep<Fixed, VertexId> {
        if let Some((_, other)) = view.iter().find(|(p, _)| *p != self.pid) {
            self.pos = (self.pos + other) / 2;
        }
        if round + 1 >= self.rounds {
            let idx = ((self.pos + FIXED_ONE / 2) / FIXED_ONE) as usize;
            let idx = idx.min(self.path.len() - 1);
            MachineStep::Decide(self.path[idx])
        } else {
            MachineStep::Continue(self.pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_sched::{all_iis_schedules, IisRunner, IisSchedule};
    use iis_topology::{sds, sds_iterated};

    #[test]
    fn witness_for_sds_is_one_round() {
        let target = sds(&Complex::standard_simplex(1));
        let w = theorem_5_1_witness(&target, 2).unwrap();
        assert_eq!(w.rounds(), 1);
    }

    #[test]
    fn witness_for_sds2_is_two_rounds() {
        let target = sds_iterated(&Complex::standard_simplex(1), 2);
        let w = theorem_5_1_witness(&target, 3).unwrap();
        assert_eq!(w.rounds(), 2);
    }

    #[test]
    fn witness_for_triangle_sds() {
        let target = sds(&Complex::standard_simplex(2));
        let w = theorem_5_1_witness(&target, 1).unwrap();
        assert_eq!(w.rounds(), 1);
        // the witness is color-preserving & simplicial into A
        w.map()
            .verify_simplicial(w.subdivision().complex(), target.complex())
            .unwrap();
    }

    #[test]
    fn witness_for_non_standard_path_targets() {
        // a length-5 chromatic path is NOT an iterated SDS; mapping onto it
        // needs 3^b ≥ 5, i.e. b = 2 (Theorem 5.1 beyond standard targets)
        let target = iis_topology::path_subdivision(5);
        assert!(theorem_5_1_witness(&target, 1).is_none(), "3 < 5");
        let w = theorem_5_1_witness(&target, 2).expect("9 >= 5");
        assert_eq!(w.rounds(), 2);
        // length 7 also fits in b = 2; length 11 needs b = 3
        assert!(theorem_5_1_witness(&iis_topology::path_subdivision(7), 2).is_some());
        assert!(theorem_5_1_witness(&iis_topology::path_subdivision(11), 2).is_none());
    }

    #[test]
    fn agreement_machine_on_non_standard_target() {
        let target = iis_topology::path_subdivision(5);
        let w = Arc::new(theorem_5_1_witness(&target, 2).expect("witness"));
        for schedule in all_iis_schedules(&[0, 1], w.rounds()) {
            let machines = vec![
                SimplexAgreementMachine::new(0, Arc::clone(&w)),
                SimplexAgreementMachine::new(1, Arc::clone(&w)),
            ];
            let mut runner = IisRunner::new(machines);
            runner.run(schedule);
            let outputs: Vec<Option<VertexId>> = runner
                .outputs()
                .iter()
                .map(|o| o.as_ref().copied())
                .collect();
            validate_csass_outcome(&target, &outputs, &[true, true]).unwrap();
        }
    }

    #[test]
    fn agreement_machine_solves_csass_under_all_schedules() {
        let target = sds(&Complex::standard_simplex(1));
        let w = Arc::new(theorem_5_1_witness(&target, 2).unwrap());
        for schedule in all_iis_schedules(&[0, 1], w.rounds()) {
            let machines = vec![
                SimplexAgreementMachine::new(0, Arc::clone(&w)),
                SimplexAgreementMachine::new(1, Arc::clone(&w)),
            ];
            let mut runner = IisRunner::new(machines);
            runner.run(schedule);
            let outputs: Vec<Option<VertexId>> = runner
                .outputs()
                .iter()
                .map(|o| o.as_ref().copied())
                .collect();
            validate_csass_outcome(&target, &outputs, &[true, true]).unwrap();
        }
    }

    #[test]
    fn agreement_machine_three_processes_random_schedules() {
        use iis_obs::Rng;
        let target = sds(&Complex::standard_simplex(2));
        let w = Arc::new(theorem_5_1_witness(&target, 1).unwrap());
        let mut rng = Rng::seed_from_u64(11);
        for _case in 0..50 {
            let machines: Vec<_> = (0..3)
                .map(|p| SimplexAgreementMachine::new(p, Arc::clone(&w)))
                .collect();
            let mut runner = IisRunner::new(machines);
            runner.run(IisSchedule::random(3, w.rounds().max(1), &mut rng));
            let outputs: Vec<Option<VertexId>> = runner
                .outputs()
                .iter()
                .map(|o| o.as_ref().copied())
                .collect();
            validate_csass_outcome(&target, &outputs, &[true, true, true]).unwrap();
        }
    }

    #[test]
    fn agreement_machine_with_crash() {
        let target = sds(&Complex::standard_simplex(2));
        let w = Arc::new(theorem_5_1_witness(&target, 1).unwrap());
        // P2 crashes before round 0: P0, P1 converge in the {0,1} face
        let machines: Vec<_> = (0..3)
            .map(|p| SimplexAgreementMachine::new(p, Arc::clone(&w)))
            .collect();
        let mut runner = IisRunner::new(machines);
        runner.crash(2);
        runner.run(IisSchedule::lockstep(3, 2));
        let outputs: Vec<Option<VertexId>> = runner
            .outputs()
            .iter()
            .map(|o| o.as_ref().copied())
            .collect();
        assert!(outputs[2].is_none());
        validate_csass_outcome(&target, &outputs, &[true, true, false]).unwrap();
    }

    fn path_colors_ok(length: usize, e: usize, o: usize) {
        assert!(e.is_multiple_of(2), "P0 must land on its own color");
        assert!(o % 2 == 1, "P1 must land on its own color");
        assert!(e <= length && o <= length);
        assert!(e.abs_diff(o) == 1, "outputs must span an edge");
    }

    #[test]
    fn edge_convergence_all_schedules_l3() {
        let rounds = EdgeConvergence::new(0, 3).rounds();
        for schedule in all_iis_schedules(&[0, 1], rounds) {
            let machines = vec![EdgeConvergence::new(0, 3), EdgeConvergence::new(1, 3)];
            let mut runner = IisRunner::new(machines);
            runner.run(schedule);
            let e = *runner.output(0).unwrap();
            let o = *runner.output(1).unwrap();
            path_colors_ok(3, e, o);
        }
    }

    #[test]
    fn edge_convergence_random_schedules_l9() {
        use iis_obs::Rng;
        let mut rng = Rng::seed_from_u64(5);
        let rounds = EdgeConvergence::new(0, 9).rounds();
        for _case in 0..200 {
            let machines = vec![EdgeConvergence::new(0, 9), EdgeConvergence::new(1, 9)];
            let mut runner = IisRunner::new(machines);
            runner.run(IisSchedule::random(2, rounds, &mut rng));
            path_colors_ok(9, *runner.output(0).unwrap(), *runner.output(1).unwrap());
        }
    }

    #[test]
    fn edge_convergence_solo_stays_at_corner() {
        let machines = vec![EdgeConvergence::new(0, 9), EdgeConvergence::new(1, 9)];
        let mut runner = IisRunner::new(machines);
        runner.crash(1);
        runner.run(IisSchedule::lockstep(2, 16));
        assert_eq!(runner.output(0), Some(&0));
    }

    #[test]
    fn edge_convergence_crash_mid_run() {
        let rounds = EdgeConvergence::new(0, 3).rounds();
        for crash_at in 0..rounds {
            let machines = vec![EdgeConvergence::new(0, 3), EdgeConvergence::new(1, 3)];
            let mut runner = IisRunner::new(machines);
            for r in 0..rounds {
                if r == crash_at {
                    runner.crash(1);
                }
                if runner.is_quiescent() {
                    break;
                }
                runner.step_round(&iis_sched::OrderedPartition::simultaneous(runner.active()));
            }
            let e = *runner.output(0).unwrap();
            assert!(e % 2 == 0 && e <= 3);
        }
    }

    #[test]
    fn shortest_path_on_sds_boundary() {
        let sub = sds(&Complex::standard_simplex(2));
        let c = sub.complex();
        let corners: Vec<VertexId> = c
            .vertex_ids()
            .filter(|&v| sub.carrier_of_vertex(v).len() == 1)
            .collect();
        assert_eq!(corners.len(), 3);
        let p = shortest_path(c, corners[0], corners[1]).unwrap();
        assert!(p.len() >= 2);
        assert_eq!(p[0], corners[0]);
        assert_eq!(*p.last().unwrap(), corners[1]);
        // consecutive entries are edges
        for w in p.windows(2) {
            assert!(c.contains_simplex(&Simplex::new([w[0], w[1]])));
        }
    }

    #[test]
    fn shortest_path_identity_and_disconnected() {
        let c = Complex::standard_simplex(1);
        let ids: Vec<VertexId> = c.vertex_ids().collect();
        assert_eq!(shortest_path(&c, ids[0], ids[0]), Some(vec![ids[0]]));
        let mut d = Complex::new();
        let a = d.ensure_vertex(Color(0), Label::scalar(0));
        let b = d.ensure_vertex(Color(1), Label::scalar(1));
        d.add_facet([a]);
        d.add_facet([b]);
        assert_eq!(shortest_path(&d, a, b), None);
    }

    #[test]
    fn convergence_table_covers_all_pairs() {
        use iis_obs::Rng;
        let sub = sds(&Complex::standard_simplex(2));
        let table = ConvergenceTable::new(sub.complex().clone());
        let ids: Vec<VertexId> = table.complex().vertex_ids().collect();
        let mut rng = Rng::seed_from_u64(17);
        for _case in 0..60 {
            let u = ids[rng.random_range(0..ids.len())];
            let v = ids[rng.random_range(0..ids.len())];
            let (m0, m1) = table.machines(u, v);
            let rounds = m0.rounds();
            let mut runner = IisRunner::new(vec![m0, m1]);
            runner.run(IisSchedule::random(2, rounds, &mut rng));
            let a = *runner.output(0).unwrap();
            let b = *runner.output(1).unwrap();
            assert!(
                table.complex().contains_simplex(&Simplex::new([a, b])),
                "NCSAC: outputs {a} {b} must form a simplex"
            );
        }
        // path endpoints match starting vertices, oriented either way
        let (u, v) = (ids[0], ids[5]);
        let p = table.path(u, v);
        assert_eq!(p[0].min(*p.last().unwrap()), u.min(v));
    }

    #[test]
    fn convergence_table_solo_stays_put() {
        let sub = sds(&Complex::standard_simplex(1));
        let table = ConvergenceTable::new(sub.complex().clone());
        let ids: Vec<VertexId> = table.complex().vertex_ids().collect();
        let (m0, _m1) = table.machines(ids[1], ids[2]);
        let rounds = m0.rounds();
        let mut runner = IisRunner::new(vec![m0]);
        runner.run(IisSchedule::lockstep(1, rounds));
        assert_eq!(runner.output(0), Some(&ids[1]));
    }

    #[test]
    fn path_convergence_outputs_form_simplex() {
        let sub = sds_iterated(&Complex::standard_simplex(2), 1);
        let c = sub.complex();
        let corners: Vec<VertexId> = c
            .vertex_ids()
            .filter(|&v| sub.carrier_of_vertex(v).len() == 1)
            .collect();
        let path = shortest_path(c, corners[0], corners[1]).unwrap();
        let rounds = PathConvergence::pair(path.clone()).0.rounds();
        for schedule in all_iis_schedules(&[0, 1], rounds) {
            let (m0, m1) = PathConvergence::pair(path.clone());
            let mut runner = IisRunner::new(vec![m0, m1]);
            runner.run(schedule);
            let a = *runner.output(0).unwrap();
            let b = *runner.output(1).unwrap();
            assert!(
                c.contains_simplex(&Simplex::new([a, b])),
                "outputs must form a simplex"
            );
        }
    }
}
