//! Ready-made atomic-snapshot protocols.
//!
//! The paper's intro motivates the characterization with two instance
//! tasks: *set consensus* (impossible — see `iis-topology::sperner`) and
//! *renaming* (solvable for `2n+1` names). This module implements the
//! classic wait-free protocols for renaming and approximate agreement as
//! [`AtomicMachine`]s, so each runs **both** directly on the atomic
//! snapshot model and — through the paper's main theorem — unmodified on
//! iterated immediate snapshots via [`crate::EmulatorMachine`]. The tests
//! exercise both routes and check the outputs coincide in distribution of
//! validity.

use iis_sched::AtomicMachine;

/// The classic wait-free `(2n+1)`-renaming protocol (Attiya et al. style).
///
/// Each process repeatedly writes `(id, proposal)`, snapshots, and decides
/// its proposal if no other participant proposes the same name; otherwise
/// it re-proposes the `r`-th smallest name not proposed by others, where
/// `r` is the rank of its id among the participants it saw. With at most
/// `n` other participants the decided names fall in `1..=2n+1` and are
/// pairwise distinct.
#[derive(Clone, Debug)]
pub struct Renaming {
    id: u64,
    proposal: usize,
    steps: u64,
}

impl Renaming {
    /// A machine for the process with the given (distinct) id. The first
    /// proposal is name 1.
    pub fn new(id: u64) -> Self {
        Renaming {
            id,
            proposal: 1,
            steps: 0,
        }
    }

    /// Write/snapshot iterations performed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl AtomicMachine for Renaming {
    /// `(id, proposed name)`.
    type Value = (u64, usize);
    /// The decided name.
    type Output = usize;

    fn next_write(&mut self) -> (u64, usize) {
        (self.id, self.proposal)
    }

    fn on_snapshot(&mut self, snap: &[Option<(u64, usize)>]) -> Option<usize> {
        self.steps += 1;
        let others: Vec<(u64, usize)> = snap
            .iter()
            .flatten()
            .copied()
            .filter(|(id, _)| *id != self.id)
            .collect();
        let conflict = others.iter().any(|(_, p)| *p == self.proposal);
        if !conflict {
            return Some(self.proposal);
        }
        // rank of my id among all participant ids seen (1-based)
        let mut ids: Vec<u64> = others.iter().map(|(id, _)| *id).collect();
        ids.push(self.id);
        ids.sort_unstable();
        ids.dedup();
        let rank = ids.iter().position(|&x| x == self.id).expect("own id") + 1;
        // r-th smallest positive name not proposed by others
        let taken: std::collections::BTreeSet<usize> = others.iter().map(|(_, p)| *p).collect();
        let mut free = (1..).filter(|name| !taken.contains(name));
        self.proposal = free.nth(rank - 1).expect("infinite name space");
        None
    }
}

/// Wait-free approximate agreement by asynchronous-round midpoints.
///
/// Each process writes `(round, value)`, snapshots, and:
/// - if it sees a strictly larger round, it *jumps*: adopts the midpoint of
///   the values at the largest round seen;
/// - otherwise it advances one round with the midpoint of the current
///   round's values.
///
/// After `rounds` asynchronous rounds all decided values lie within the
/// input range, and the spread contracts by half per round level. Values
/// are integers scaled by [`ApproxAgreement::SCALE`] (fixed-point).
#[derive(Clone, Debug)]
pub struct ApproxAgreement {
    round: usize,
    value: i64,
    rounds: usize,
}

impl ApproxAgreement {
    /// Fixed-point scale: inputs of `new` are multiplied by this.
    pub const SCALE: i64 = 1 << 20;

    /// A machine starting at integer input `input`, running the given
    /// number of asynchronous rounds.
    pub fn new(input: i64, rounds: usize) -> Self {
        ApproxAgreement {
            round: 0,
            value: input * Self::SCALE,
            rounds,
        }
    }

    /// The final value descaled to a float (for assertions/reporting).
    pub fn descale(v: i64) -> f64 {
        v as f64 / Self::SCALE as f64
    }
}

impl AtomicMachine for ApproxAgreement {
    /// `(round, scaled value)`.
    type Value = (usize, i64);
    /// The decided scaled value.
    type Output = i64;

    fn next_write(&mut self) -> (usize, i64) {
        (self.round, self.value)
    }

    fn on_snapshot(&mut self, snap: &[Option<(usize, i64)>]) -> Option<i64> {
        let entries: Vec<(usize, i64)> = snap.iter().flatten().copied().collect();
        let rmax = entries
            .iter()
            .map(|(r, _)| *r)
            .max()
            .expect("own write is visible");
        let at_max: Vec<i64> = entries
            .iter()
            .filter(|(r, _)| *r == rmax)
            .map(|(_, v)| *v)
            .collect();
        let mid = (at_max.iter().min().unwrap() + at_max.iter().max().unwrap()) / 2;
        if rmax > self.round {
            // jump to the frontier
            self.round = rmax;
            self.value = mid;
        } else {
            self.round += 1;
            self.value = mid;
        }
        if self.round >= self.rounds {
            Some(self.value)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmulatorMachine;
    use iis_obs::Rng;
    use iis_sched::{AtomicRunner, AtomicSchedule, IisRunner, OrderedPartition};

    fn assert_valid_renaming(names: &[Option<usize>], n_others: usize) {
        let decided: Vec<usize> = names.iter().flatten().copied().collect();
        let mut uniq = decided.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            decided.len(),
            "names must be distinct: {decided:?}"
        );
        for &name in &decided {
            assert!(
                (1..=2 * n_others + 1).contains(&name),
                "name {name} outside 1..=2n+1"
            );
        }
    }

    #[test]
    fn renaming_direct_round_robin() {
        for n in [2usize, 3, 4] {
            let machines: Vec<Renaming> = (0..n).map(|p| Renaming::new(p as u64 + 10)).collect();
            let mut runner = AtomicRunner::new(machines);
            runner.run(AtomicSchedule::round_robin(n, 40));
            assert!(runner.is_quiescent(), "renaming terminates");
            assert_valid_renaming(runner.outputs(), n - 1);
        }
    }

    #[test]
    fn renaming_direct_random_schedules() {
        let mut rng = Rng::seed_from_u64(8);
        for _case in 0..100 {
            let n = 3;
            let machines: Vec<Renaming> = (0..n).map(|p| Renaming::new(p as u64 + 1)).collect();
            let mut runner = AtomicRunner::new(machines);
            runner.run(AtomicSchedule::random(n, 600, &mut rng));
            assert!(runner.is_quiescent(), "renaming terminates");
            assert_valid_renaming(runner.outputs(), n - 1);
        }
    }

    #[test]
    fn renaming_with_crashes_still_valid() {
        let mut rng = Rng::seed_from_u64(9);
        for case in 0..50 {
            let n = 3;
            let machines: Vec<Renaming> = (0..n).map(|p| Renaming::new(p as u64 + 1)).collect();
            let mut runner = AtomicRunner::new(machines);
            runner.run(AtomicSchedule::random(n, 10, &mut rng));
            runner.crash(case % n);
            runner.run(AtomicSchedule::random(n, 600, &mut rng));
            assert_valid_renaming(runner.outputs(), n - 1);
        }
    }

    #[test]
    fn renaming_emulated_over_iis() {
        // the same protocol, unmodified, through the Figure 2 emulation
        let mut rng = Rng::seed_from_u64(10);
        for _case in 0..30 {
            let n = 3;
            let machines: Vec<EmulatorMachine<Renaming>> = (0..n)
                .map(|p| EmulatorMachine::new(p, n, Renaming::new(p as u64 + 1)))
                .collect();
            let mut runner = IisRunner::new(machines);
            let mut guard = 0;
            while !runner.is_quiescent() && guard < 1000 {
                let part = OrderedPartition::random(&runner.active(), &mut rng);
                runner.step_round(&part);
                guard += 1;
            }
            assert!(runner.is_quiescent(), "emulated renaming terminates");
            assert_valid_renaming(runner.outputs(), n - 1);
        }
    }

    #[test]
    fn renaming_solo_gets_name_one() {
        let machines = vec![Renaming::new(5)];
        let mut runner = AtomicRunner::new(machines);
        runner.run(AtomicSchedule::round_robin(1, 4));
        assert_eq!(runner.output(0), Some(&1));
    }

    fn spread(outs: &[Option<i64>]) -> i64 {
        let vals: Vec<i64> = outs.iter().flatten().copied().collect();
        vals.iter().max().unwrap() - vals.iter().min().unwrap()
    }

    #[test]
    fn approx_agreement_direct_validity_and_convergence() {
        let mut rng = Rng::seed_from_u64(11);
        for _case in 0..100 {
            let rounds = 8;
            let inputs = [0i64, 1, 1];
            let machines: Vec<ApproxAgreement> = inputs
                .iter()
                .map(|&x| ApproxAgreement::new(x, rounds))
                .collect();
            let mut runner = AtomicRunner::new(machines);
            runner.run(AtomicSchedule::random(3, 2000, &mut rng));
            assert!(runner.is_quiescent());
            for o in runner.outputs().iter().flatten() {
                assert!(*o >= 0 && *o <= ApproxAgreement::SCALE, "validity");
            }
            assert!(
                spread(runner.outputs()) <= ApproxAgreement::SCALE / (1 << (rounds - 2)),
                "spread too large: {}",
                spread(runner.outputs())
            );
        }
    }

    #[test]
    fn approx_agreement_emulated_over_iis() {
        let mut rng = Rng::seed_from_u64(12);
        for _case in 0..30 {
            let rounds = 6;
            let inputs = [0i64, 4];
            let machines: Vec<EmulatorMachine<ApproxAgreement>> = inputs
                .iter()
                .enumerate()
                .map(|(p, &x)| EmulatorMachine::new(p, 2, ApproxAgreement::new(x, rounds)))
                .collect();
            let mut runner = IisRunner::new(machines);
            let mut guard = 0;
            while !runner.is_quiescent() && guard < 2000 {
                let part = OrderedPartition::random(&runner.active(), &mut rng);
                runner.step_round(&part);
                guard += 1;
            }
            assert!(runner.is_quiescent());
            for o in runner.outputs().iter().flatten() {
                assert!(*o >= 0 && *o <= 4 * ApproxAgreement::SCALE);
            }
            assert!(spread(runner.outputs()) <= 4 * ApproxAgreement::SCALE / (1 << (rounds - 2)));
        }
    }

    #[test]
    fn approx_agreement_same_inputs_decide_input() {
        let machines: Vec<ApproxAgreement> = (0..3).map(|_| ApproxAgreement::new(2, 4)).collect();
        let mut runner = AtomicRunner::new(machines);
        runner.run(AtomicSchedule::round_robin(3, 20));
        for o in runner.outputs().iter().flatten() {
            assert_eq!(*o, 2 * ApproxAgreement::SCALE);
        }
    }

    #[test]
    fn approx_agreement_solo_keeps_input() {
        let machines = vec![ApproxAgreement::new(7, 5)];
        let mut runner = AtomicRunner::new(machines);
        runner.run(AtomicSchedule::round_robin(1, 20));
        assert_eq!(runner.output(0), Some(&(7 * ApproxAgreement::SCALE)));
        assert!((ApproxAgreement::descale(7 * ApproxAgreement::SCALE) - 7.0).abs() < 1e-9);
    }
}
