//! The core of the Borowsky–Gafni PODC'97 reproduction: everything the
//! paper itself contributes, built on the `iis-topology`, `iis-memory`,
//! `iis-sched` and `iis-tasks` substrates.
//!
//! - [`emulation`] — **the main theorem** (§4, Figure 2): run any atomic
//!   snapshot protocol in the iterated immediate snapshot model, on a
//!   deterministic schedule or on real threads;
//! - [`protocol_complex`] — Lemmas 3.2/3.3 as executable checks: the
//!   protocol complexes *are* the iterated standard chromatic subdivisions;
//! - [`solvability`] — Proposition 3.1 as a complete decision procedure for
//!   fixed round counts: find or refute decision maps `SDS^b(I) → O`;
//! - [`bounded`] — Lemma 3.1: minimal and effective round bounds;
//! - [`convergence`] — §5: Theorem 5.1 witnesses, chromatic simplex
//!   agreement protocols, and the direct path-bisection convergence
//!   algorithms;
//! - [`bg`] — the BG simulation (safe agreement; `k+1` simulators running
//!   `n+1` processes), the extension this line of work seeded;
//! - [`cache`] — content-addressed caching of solvability results: because
//!   Proposition 3.1 makes the answer a pure function of `(task, b)`, a
//!   decided sweep can be persisted and replayed bit-identically (the
//!   substrate of `iis serve` and `iis solve --store`).
//!
//! # Quickstart
//!
//! Decide wait-free solvability (Proposition 3.1 + the emulation theorem):
//!
//! ```
//! use iis_core::solvability::solve_up_to;
//! use iis_tasks::library::{consensus, approximate_agreement};
//!
//! // FLP: consensus has no decision map at any round count we try.
//! let flp = solve_up_to(&consensus(1, &[0, 1]), 3);
//! assert_eq!(flp.first_solvable(), None);
//!
//! // ε-agreement is solvable once the subdivision is fine enough.
//! let eps = solve_up_to(&approximate_agreement(1, 3), 2);
//! assert_eq!(eps.first_solvable(), Some(1));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bg;
pub mod bounded;
pub mod cache;
pub mod concurrent;
pub mod convergence;
pub mod csp;
pub mod emulation;
pub mod parallel;
pub mod protocol_complex;
pub mod protocols;
pub mod solvability;

pub use cache::{cache_key, solve_up_to_cached, CachedSolve, SolveCache};
pub use concurrent::run_atomic_concurrent;
pub use emulation::{run_emulation_concurrent, EmulationStats, EmulatorMachine, Tuple, TupleSet};
pub use solvability::{
    lift_decision_map, solve_at, solve_at_bounded, solve_at_opts, solve_at_with, solve_up_to,
    solve_up_to_opts, BoundedOutcome, DecisionMap, DecisionProtocol, Kernel, SearchStrategy,
    SolvabilityReport, SolveOptions, Solver,
};
