//! Content-addressed caching of solvability results.
//!
//! Proposition 3.1 makes bounded wait-free solvability a **pure function**
//! of the task `T = (Iⁿ, Oⁿ, Δ)` and the round bound `b`: a decision map
//! `δ : SDS^b(I) → O` either exists or it does not, and Lemma 3.3 pins the
//! protocol complex the search runs on to the iterated standard chromatic
//! subdivision — a canonical object with a deterministic construction.
//! Because this repository's searches are additionally *engine-, strategy-,
//! and thread-count-independent* (DESIGN.md §7/§8: the parallel split only
//! cancels subtrees the sequential order would never have preferred), the
//! entire `(report, witness)` answer is content-addressable: two requests
//! for the same `(task, max_rounds)` pair must receive bit-identical
//! answers, no matter who computed them, when, or with how many threads.
//!
//! This module provides the key derivation ([`cache_key`]), the canonical
//! record encoding ([`report_to_json`] / [`report_from_json`]), and the
//! cache-aware sweep entry point ([`solve_up_to_cached`]) used by
//! `iis solve --store` and the `iis serve` solve service. The persistent
//! backing store lives in `iis-store`; any [`SolveCache`] implementor works
//! (a plain `HashMap` gives a process-local memo).
//!
//! # What is cacheable
//!
//! Only **decided** sweeps are stored: a witness was found, or every round
//! `0..=max_rounds` was exactly refuted. A sweep cut short by a node budget
//! or a wall-clock timeout decides nothing (`Exhausted`/`TimedOut` are
//! inconclusive verdicts) and is never persisted — a cache must not launder
//! "we gave up" into "unsolvable".
//!
//! # Integrity
//!
//! Records store only the data that cannot be recomputed cheaply: the
//! per-round verdict vector and the witness's round count and vertex map.
//! The subdivision the witness lives on is **rebuilt from the task** (as a
//! flat arena, memoized process-wide — Lemma 3.3 makes `SDS^b(I)` a pure
//! function of `(I, b)`) and the map is re-validated against Proposition
//! 3.1's three conditions, so a corrupted or adversarial store entry is
//! detected and treated as a miss rather than trusted.

use crate::solvability::{
    solve_up_to_opts, validate_decision_map_arena, DecisionMap, SolvabilityReport, SolveOptions,
};
use iis_obs::{Json, ToJson};
use iis_tasks::Task;
use iis_topology::arena::{arena_sds_tower, ArenaSds};
use iis_topology::{SimplicialMap, Subdivision};
use std::sync::{Arc, Mutex, OnceLock};

/// Version tag mixed into every [`cache_key`]. Bump it whenever the record
/// encoding or the canonical task serialization changes shape — old store
/// segments then age out as misses instead of deserializing garbage.
pub const CACHE_SCHEMA: &str = "iis-solve-v1";

/// 64-bit FNV-1a over `bytes` — the workspace's content-address hash.
///
/// # Examples
///
/// ```
/// use iis_core::cache::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content address of a `(task, max_rounds)` solvability question.
///
/// The preimage is `CACHE_SCHEMA \0 <canonical task JSON> \0 <max_rounds>`.
/// The task's JSON form is canonical (BTreeMap-ordered `Δ`, construction-
/// ordered vertices), so structurally equal tasks collide on purpose — a
/// task loaded from a file and the same task rebuilt from a library spec
/// address the same record. Search options (budget, jobs, kernel, strategy)
/// are deliberately **not** part of the key: they never change a decided
/// verdict or witness, only the time to find it.
pub fn cache_key(task: &Task, max_rounds: usize) -> u64 {
    let mut preimage = Vec::new();
    preimage.extend_from_slice(CACHE_SCHEMA.as_bytes());
    preimage.push(0);
    preimage.extend_from_slice(task.canonical_json().as_bytes());
    preimage.push(0);
    preimage.extend_from_slice(max_rounds.to_string().as_bytes());
    fnv1a64(&preimage)
}

/// A rebuilt `SDS^b(I)` kept for revalidation: the flat arena form the
/// validator walks, plus its (bit-identical) reference `Subdivision`
/// conversion shared by every witness loaded against it.
struct RebuiltTower {
    arena: ArenaSds,
    subdivision: Arc<Subdivision>,
}

/// Entries the tower memo holds before the least-recently-used one is
/// evicted. Towers for the handful of tasks a serve process answers
/// repeatedly fit easily; a workload cycling through more distinct
/// `(task, b)` towers sheds the coldest entry per insert instead of
/// cliff-dropping the whole memo.
const TOWER_CACHE_CAP: usize = 64;

/// The tower memo: entries carry the logical clock tick of their last use.
/// Eviction is an O(n) min-tick scan at `n ≤ TOWER_CACHE_CAP` — cheap
/// enough to keep the lock section trivial, no linked-list bookkeeping.
struct TowerMemo {
    entries: std::collections::HashMap<(u64, usize), (Arc<RebuiltTower>, u64)>,
    tick: u64,
}

fn tower_memo() -> &'static Mutex<TowerMemo> {
    static TOWERS: OnceLock<Mutex<TowerMemo>> = OnceLock::new();
    TOWERS.get_or_init(|| {
        Mutex::new(TowerMemo {
            entries: std::collections::HashMap::new(),
            tick: 0,
        })
    })
}

/// `SDS^b(I)` for `task`, memoized process-wide with LRU eviction.
///
/// Lemma 3.3 makes the tower a pure function of `(I, b)`, and the arena
/// construction is deterministic, so sharing one instance across requests
/// changes no observable bytes — it only deletes the rebuild from every
/// warm reply after the first. Keyed by the task's content address (tasks
/// sharing an input complex but differing in `Δ` rebuild redundantly;
/// the cap bounds that waste). Evictions are counted in
/// `cache.tower_evictions`.
fn rebuilt_tower(task: &Task, b: usize) -> Arc<RebuiltTower> {
    let towers = tower_memo();
    let key = (fnv1a64(task.canonical_json().as_bytes()), b);
    {
        let mut memo = towers.lock().expect("tower cache poisoned");
        memo.tick += 1;
        let tick = memo.tick;
        if let Some((t, used)) = memo.entries.get_mut(&key) {
            *used = tick;
            iis_obs::metrics::add("cache.tower_hits", 1);
            return Arc::clone(t);
        }
    }
    let arena = arena_sds_tower(task.input(), b);
    let subdivision = Arc::new(arena.to_subdivision());
    let entry = Arc::new(RebuiltTower { arena, subdivision });
    iis_obs::metrics::add("cache.tower_builds", 1);
    let mut memo = towers.lock().expect("tower cache poisoned");
    if !memo.entries.contains_key(&key) && memo.entries.len() >= TOWER_CACHE_CAP {
        if let Some(coldest) = memo
            .entries
            .iter()
            .min_by_key(|(_, (_, used))| *used)
            .map(|(k, _)| *k)
        {
            memo.entries.remove(&coldest);
            iis_obs::metrics::add("cache.tower_evictions", 1);
        }
    }
    memo.tick += 1;
    let tick = memo.tick;
    memo.entries
        .entry(key)
        .or_insert_with(|| (Arc::clone(&entry), tick));
    entry
}

/// A key-value cache of serialized solvability records.
///
/// Implementors must be **first-write-wins**: once a key holds a value,
/// later `put`s for the same key are ignored. Combined with the canonical
/// record encoding this guarantees every hit for a key returns the same
/// bytes forever — the bit-identity the solve service advertises.
pub trait SolveCache {
    /// The record stored under `key`, if any.
    fn get(&mut self, key: u64) -> Option<String>;
    /// Stores `value` under `key` unless the key is already present.
    fn put(&mut self, key: u64, value: &str);
    /// Syncs any buffered writes to durable storage. Drain paths call this
    /// before shutdown; the default is a no-op for in-memory caches.
    fn flush(&mut self) {}
}

/// A process-local memo — the cache used when no `--store DIR` is given.
impl SolveCache for std::collections::HashMap<u64, String> {
    fn get(&mut self, key: u64) -> Option<String> {
        std::collections::HashMap::get(self, &key).cloned()
    }

    fn put(&mut self, key: u64, value: &str) {
        self.entry(key).or_insert_with(|| value.to_string());
    }
}

/// The outcome of a cache-aware sweep: the report plus where it came from.
pub struct CachedSolve {
    /// The sweep result (identical whether computed or replayed).
    pub report: SolvabilityReport,
    /// `true` iff the report was served from the cache.
    pub hit: bool,
    /// The content address the question was filed under.
    pub key: u64,
}

/// Canonical record encoding of a report:
/// `{"results": [[b, ok], …], "task": name, "witness": null | {"b": b,
/// "map": [[v, w], …]}}` with `Json::obj` insertion order fixed here and
/// the map in sorted source order — serializing the same report always
/// yields the same bytes.
pub fn report_to_json(report: &SolvabilityReport) -> Json {
    let witness = match report.witness() {
        Some(w) => Json::obj([("b", w.rounds().to_json()), ("map", w.map().to_json())]),
        None => Json::Null,
    };
    Json::obj([
        ("results", report.results().to_vec().to_json()),
        ("task", report.task_name().to_json()),
        ("witness", witness),
    ])
}

/// Decodes and **re-validates** a record produced by [`report_to_json`].
///
/// The witness's subdivision is rebuilt from `task` (Lemma 3.3: `SDS^b(I)`
/// is canonical) in flat arena form — `iis_topology::arena` — and the
/// stored vertex map must pass
/// [`validate_decision_map_arena`] on it: the same Proposition 3.1
/// conditions as the reference validator (simpliciality, color
/// preservation, `δ(s) ∈ Δ(carrier(s))` for every simplex), checked
/// against CSR facet slices instead of a materialized `BTreeSet` face
/// poset. The returned witness's [`crate::solvability::DecisionMap`] holds
/// the reference `Subdivision`, converted from the arena bit-identically.
/// The whole rebuild+revalidate is timed into the `cache.revalidate_ns`
/// histogram — the dominant cost of a warm `iis serve` reply.
///
/// # Errors
///
/// Returns a description of the first structural or semantic defect; the
/// caller should treat any error as a cache miss.
pub fn report_from_json(task: &Task, v: &Json) -> Result<SolvabilityReport, String> {
    let results = Vec::<(usize, bool)>::from_json(v.field("results").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let name = String::from_json(v.field("task").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let witness = match v.field("witness").map_err(|e| e.to_string())? {
        Json::Null => None,
        w => {
            let b = usize::from_json(w.field("b").map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let map = SimplicialMap::from_json(w.field("map").map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let _timer = iis_obs::span::span("cache.revalidate_ns");
            let tower = rebuilt_tower(task, b);
            validate_decision_map_arena(task, &tower.arena, &map)
                .map_err(|e| format!("stored witness invalid: {e}"))?;
            if results.last() != Some(&(b, true)) {
                return Err("witness round disagrees with verdict vector".to_string());
            }
            Some(DecisionMap::from_parts(
                b,
                Arc::clone(&tower.subdivision),
                map,
            ))
        }
    };
    if witness.is_none() && results.iter().any(|(_, ok)| *ok) {
        return Err("solvable verdict without a witness".to_string());
    }
    Ok(SolvabilityReport::from_parts(name, results, witness))
}

use iis_obs::json::FromJson;

/// `true` iff the sweep reached a verdict that may be persisted: a witness,
/// or an exact refutation of every round `0..=max_rounds`.
fn decided(report: &SolvabilityReport, max_rounds: usize) -> bool {
    report.witness().is_some() || report.results().len() == max_rounds + 1
}

/// [`crate::solvability::solve_up_to`] through a cache: answer from `cache`
/// when the `(task, max_rounds)` record exists and validates, otherwise run
/// the sweep with `opts` and persist the result if it decided.
///
/// The counters `solve.cache_store_hits` / `solve.cache_store_misses`
/// account every call.
///
/// # Examples
///
/// ```
/// use iis_core::cache::solve_up_to_cached;
/// use iis_core::solvability::SolveOptions;
/// use iis_tasks::library::approximate_agreement;
/// use std::collections::HashMap;
///
/// let task = approximate_agreement(1, 3);
/// let mut cache = HashMap::new();
/// let cold = solve_up_to_cached(&task, 2, &SolveOptions::new(), &mut cache);
/// let warm = solve_up_to_cached(&task, 2, &SolveOptions::new(), &mut cache);
/// assert!(!cold.hit && warm.hit);
/// assert_eq!(
///     cold.report.first_solvable(),
///     warm.report.first_solvable()
/// );
/// ```
pub fn solve_up_to_cached(
    task: &Task,
    max_rounds: usize,
    opts: &SolveOptions,
    cache: &mut dyn SolveCache,
) -> CachedSolve {
    let key = cache_key(task, max_rounds);
    if let Some(text) = cache.get(key) {
        match Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|v| report_from_json(task, &v))
        {
            Ok(report) => {
                iis_obs::metrics::add("solve.cache_store_hits", 1);
                return CachedSolve {
                    report,
                    hit: true,
                    key,
                };
            }
            Err(e) => {
                // a bad record is a miss, not a crash — recompute and let
                // first-write-wins keep the (bad) bytes from being replaced
                // silently; the trace records what happened
                iis_obs::trace::event(
                    "cache.invalid_record",
                    task.name(),
                    &[("error", Json::Str(e))],
                );
            }
        }
    }
    iis_obs::metrics::add("solve.cache_store_misses", 1);
    let report = solve_up_to_opts(task, max_rounds, opts);
    if decided(&report, max_rounds) {
        cache.put(key, &report_to_json(&report).to_string());
    }
    CachedSolve {
        report,
        hit: false,
        key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_tasks::library::{approximate_agreement, consensus, trivial};
    use std::collections::HashMap;

    #[test]
    fn key_is_stable_and_option_independent() {
        let t = approximate_agreement(1, 3);
        assert_eq!(cache_key(&t, 2), cache_key(&t, 2));
        assert_ne!(cache_key(&t, 1), cache_key(&t, 2));
        assert_ne!(cache_key(&t, 2), cache_key(&consensus(1, &[0, 1]), 2));
        // a task round-tripped through JSON addresses the same record
        let back: iis_tasks::Task = Json::parse_as(&t.to_json().to_string()).unwrap();
        assert_eq!(cache_key(&t, 2), cache_key(&back, 2));
    }

    #[test]
    fn warm_record_is_bit_identical_across_thread_counts() {
        // the satellite acceptance: a cache hit replays the exact bytes a
        // fresh solve at any job count would have produced
        let t = approximate_agreement(1, 3);
        let mut cold_cache = HashMap::new();
        let cold = solve_up_to_cached(&t, 2, &SolveOptions::new(), &mut cold_cache);
        let cold_bytes = report_to_json(&cold.report).to_string();
        for jobs in [1usize, 4] {
            let mut cache = HashMap::new();
            let fresh = solve_up_to_cached(&t, 2, &SolveOptions::new().jobs(jobs), &mut cache);
            assert!(!fresh.hit);
            assert_eq!(
                report_to_json(&fresh.report).to_string(),
                cold_bytes,
                "jobs={jobs} must produce the canonical record"
            );
            let warm = solve_up_to_cached(&t, 2, &SolveOptions::new().jobs(jobs), &mut cache);
            assert!(warm.hit);
            assert_eq!(report_to_json(&warm.report).to_string(), cold_bytes);
        }
    }

    #[test]
    fn refutations_are_cached_too() {
        let t = consensus(1, &[0, 1]);
        let mut cache = HashMap::new();
        let cold = solve_up_to_cached(&t, 2, &SolveOptions::new(), &mut cache);
        assert!(!cold.hit && cold.report.first_solvable().is_none());
        let warm = solve_up_to_cached(&t, 2, &SolveOptions::new(), &mut cache);
        assert!(warm.hit);
        assert_eq!(warm.report.results(), cold.report.results());
    }

    #[test]
    fn inconclusive_sweeps_are_not_cached() {
        // a zero node budget exhausts immediately (the one-shot IS task
        // needs actual search nodes, unlike propagation-refuted consensus)
        // — nothing may be stored
        let t = iis_tasks::library::one_shot_immediate_snapshot_task(1);
        let mut cache = HashMap::new();
        let out = solve_up_to_cached(&t, 2, &SolveOptions::new().budget(0), &mut cache);
        assert!(!out.hit);
        assert!(cache.is_empty(), "exhausted sweeps must not be persisted");
    }

    #[test]
    fn corrupt_records_fall_back_to_a_fresh_solve() {
        let t = trivial(1);
        let key = cache_key(&t, 1);
        let mut cache = HashMap::new();
        // structural garbage
        SolveCache::put(&mut cache, key, "{\"nope\": 1}");
        let out = solve_up_to_cached(&t, 1, &SolveOptions::new(), &mut cache);
        assert!(!out.hit, "garbage record must be a miss");
        assert_eq!(out.report.first_solvable(), Some(0));
        // semantic garbage: a witness whose map is not color preserving
        let mut cache = HashMap::new();
        SolveCache::put(
            &mut cache,
            key,
            "{\"results\": [[0, true]], \"task\": \"trivial\", \
             \"witness\": {\"b\": 0, \"map\": [[0, 1], [1, 0]]}}",
        );
        let out = solve_up_to_cached(&t, 1, &SolveOptions::new(), &mut cache);
        assert!(!out.hit, "invalid witness must be a miss");
    }

    #[test]
    fn tower_memo_evicts_lru_instead_of_clearing() {
        // cycle more distinct (task, b) keys than the cap: the memo must
        // stay bounded and keep the recently-used entries, evicting only
        // the coldest. b=0 towers are cheap, so the pressure is realistic.
        let tasks: Vec<_> = (2..2 + TOWER_CACHE_CAP as u64 + 8)
            .map(|k| approximate_agreement(1, k))
            .collect();
        let hot = trivial(1);
        for t in &tasks {
            rebuilt_tower(&hot, 0); // keep one entry hot throughout
            rebuilt_tower(t, 0);
        }
        let memo = tower_memo().lock().unwrap();
        assert!(
            memo.entries.len() <= TOWER_CACHE_CAP,
            "memo exceeded its cap: {}",
            memo.entries.len()
        );
        let hot_key = (fnv1a64(hot.canonical_json().as_bytes()), 0usize);
        assert!(
            memo.entries.contains_key(&hot_key),
            "the constantly-reused entry must survive eviction pressure"
        );
    }

    #[test]
    fn record_roundtrip_preserves_the_witness() {
        let t = approximate_agreement(1, 3);
        let report = solve_up_to_opts(&t, 2, &SolveOptions::new());
        let json = report_to_json(&report);
        let back = report_from_json(&t, &json).unwrap();
        assert_eq!(back.first_solvable(), report.first_solvable());
        let (w, wb) = (report.witness().unwrap(), back.witness().unwrap());
        assert_eq!(w.rounds(), wb.rounds());
        assert_eq!(w.map().pairs(), wb.map().pairs());
    }
}
