//! A std-only work-stealing pool for the decision-map search.
//!
//! The workspace builds `--offline` with no external crates, so this module
//! supplies the three ingredients the parallel solver needs without rayon or
//! crossbeam:
//!
//! - [`SharedBudget`] — one atomic node budget charged by every worker, so
//!   an `Exhausted` verdict accounts for exactly the nodes explored;
//! - [`FirstWins`] — a deterministic first-solution cell: of all subtrees
//!   that find a witness, the *lowest-indexed* one wins, and only
//!   higher-indexed subtrees are cancelled — which is what makes the
//!   reported witness independent of thread count (DESIGN.md §7);
//! - [`run_pool`] — scoped worker threads over per-worker deques with
//!   stealing, counted in `solve.steals`.
//!
//! Everything here is generic plumbing; the search-specific subtree
//! splitting lives in [`crate::solvability`].

use iis_memory::sync::Mutex;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A node budget shared by all workers of one search.
///
/// Each successful [`try_charge`](SharedBudget::try_charge) permits exactly
/// one search node, so summing the successes across workers gives the exact
/// number of nodes explored — there is no over- or under-counting when a
/// worker is cancelled mid-subtree.
///
/// # Examples
///
/// ```
/// use iis_core::parallel::SharedBudget;
/// let budget = SharedBudget::new(2);
/// assert!(budget.try_charge());
/// assert!(budget.try_charge());
/// assert!(!budget.try_charge(), "third node exceeds the budget");
/// assert_eq!(budget.remaining(), 0);
/// ```
pub struct SharedBudget {
    remaining: AtomicU64,
}

impl SharedBudget {
    /// A budget permitting `max_nodes` charges.
    pub fn new(max_nodes: u64) -> Self {
        SharedBudget {
            remaining: AtomicU64::new(max_nodes),
        }
    }

    /// Attempts to charge one node. Returns `false` iff the budget is spent
    /// (and leaves it at zero — a failed charge consumes nothing).
    pub fn try_charge(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
    }

    /// Charges still available.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }
}

/// A deterministic first-solution cell over indexed subtrees.
///
/// Subtrees are numbered in the sequential search's depth-first order. A
/// worker that finds a solution [`offer`](FirstWins::offer)s it under its
/// subtree index; the cell keeps the lowest index seen. A subtree should
/// abandon its work only when a *lower*-indexed subtree has already won
/// ([`should_cancel`](FirstWins::should_cancel)), so every subtree that the
/// sequential search would have reached before the winner still runs to
/// completion — making the winning witness identical at any thread count.
///
/// # Examples
///
/// ```
/// use iis_core::parallel::FirstWins;
/// let cell = FirstWins::new();
/// cell.offer(3, "late");
/// assert!(cell.should_cancel(5), "5 can never beat 3");
/// assert!(!cell.should_cancel(1), "1 might still find an earlier witness");
/// cell.offer(1, "early");
/// assert_eq!(cell.take(), Some((1, "early")));
/// ```
pub struct FirstWins<T> {
    best: AtomicUsize,
    slot: Mutex<Option<(usize, T)>>,
}

impl<T> Default for FirstWins<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FirstWins<T> {
    /// An empty cell.
    pub fn new() -> Self {
        FirstWins {
            best: AtomicUsize::new(usize::MAX),
            slot: Mutex::new(None),
        }
    }

    /// Records `value` as subtree `index`'s solution if no lower-indexed
    /// solution is already held.
    pub fn offer(&self, index: usize, value: T) {
        let mut slot = self.slot.lock();
        if slot.as_ref().is_none_or(|(held, _)| index < *held) {
            *slot = Some((index, value));
            self.best.fetch_min(index, Ordering::Release);
        }
    }

    /// `true` iff a subtree with an index *lower* than `index` has won, so
    /// this subtree's outcome can no longer matter.
    pub fn should_cancel(&self, index: usize) -> bool {
        self.best.load(Ordering::Acquire) < index
    }

    /// `true` iff any solution has been recorded.
    pub fn has_winner(&self) -> bool {
        self.best.load(Ordering::Acquire) != usize::MAX
    }

    /// Consumes the cell, returning the winning `(index, value)`.
    pub fn take(self) -> Option<(usize, T)> {
        self.slot.into_inner()
    }
}

/// Runs `jobs` over `threads` scoped worker threads with work stealing and
/// returns each job's result in job order.
///
/// Jobs are dealt round-robin onto per-worker deques; an idle worker pops
/// from the front of its own deque and steals from the *back* of others'
/// (each steal counted in `solve.steals`). With `threads <= 1`, or a single
/// job, everything runs on the calling thread in order — the zero-overhead
/// path the sequential solver uses.
///
/// # Panics
///
/// A panic inside `run` is contained in its worker: the panicking worker
/// records the payload, its peers stop taking new jobs, and once the scope
/// has joined cleanly the panic is re-raised on the **caller** with the
/// offending job index prefixed to the message (`worker panicked on job
/// {idx}: ...`). The scope never hangs and no subtree result is silently
/// dropped — the pool either returns every result or re-raises.
///
/// # Examples
///
/// ```
/// use iis_core::parallel::run_pool;
/// let squares = run_pool(vec![1u64, 2, 3, 4], 2, |_idx, n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_pool<J, R, F>(jobs: Vec<J>, threads: usize, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let n_jobs = jobs.len();
    if threads <= 1 || n_jobs <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, j)| run(i, j))
            .collect();
    }
    let workers = threads.min(n_jobs);
    iis_obs::progress::set_workers(workers as u64);
    let queues: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % workers].lock().push_back((i, job));
    }
    let results: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let steals = iis_obs::metrics::Counter::handle("solve.steals");
    // first panic wins: (job index, payload); peers stop at the next job
    // boundary once `cancel` is raised
    let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let cancel = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let run = &run;
            let steals = &steals;
            let panicked = &panicked;
            let cancel = &cancel;
            scope.spawn(move || {
                // stable worker id for span-profiling sample attribution
                iis_obs::profile::set_worker(me);
                loop {
                    if cancel.load(Ordering::Acquire) {
                        return;
                    }
                    // own work first, front-to-back (preserves index order)
                    let mine = queues[me].lock().pop_front();
                    let (idx, job) = match mine {
                        Some(next) => next,
                        None => {
                            // steal from the back of the busiest other queue
                            let mut stolen = None;
                            for d in 1..workers {
                                let victim = (me + d) % workers;
                                if let Some(next) = queues[victim].lock().pop_back() {
                                    stolen = Some(next);
                                    break;
                                }
                            }
                            match stolen {
                                Some(next) => {
                                    steals.incr();
                                    next
                                }
                                None => return,
                            }
                        }
                    };
                    match panic::catch_unwind(AssertUnwindSafe(|| run(idx, job))) {
                        Ok(r) => *results[idx].lock() = Some(r),
                        Err(payload) => {
                            cancel.store(true, Ordering::Release);
                            let mut first = panicked.lock();
                            if first.is_none() {
                                *first = Some((idx, payload));
                            }
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some((idx, payload)) = panicked.into_inner() {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        panic!("worker panicked on job {idx}: {msg}");
    }
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job ran exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_exact_under_contention() {
        let budget = SharedBudget::new(1000);
        let hits: Vec<u64> = run_pool(vec![(); 8], 4, |_, ()| {
            let mut n = 0u64;
            while budget.try_charge() {
                n += 1;
            }
            n
        });
        assert_eq!(hits.iter().sum::<u64>(), 1000);
        assert_eq!(budget.remaining(), 0);
        assert!(!budget.try_charge());
    }

    #[test]
    fn first_wins_keeps_lowest_index() {
        let cell = FirstWins::new();
        for idx in [7usize, 2, 9, 4] {
            cell.offer(idx, idx * 10);
        }
        assert!(cell.has_winner());
        assert!(cell.should_cancel(3));
        assert!(!cell.should_cancel(2));
        assert_eq!(cell.take(), Some((2, 20)));
    }

    #[test]
    fn empty_cell_cancels_nothing() {
        let cell: FirstWins<()> = FirstWins::new();
        assert!(!cell.has_winner());
        assert!(!cell.should_cancel(0));
        assert!(!cell.should_cancel(usize::MAX - 1));
        assert_eq!(cell.take(), None);
    }

    #[test]
    fn pool_runs_every_job_once_in_order() {
        for threads in [1usize, 2, 3, 8] {
            let jobs: Vec<usize> = (0..37).collect();
            let out = run_pool(jobs, threads, |idx, j| {
                assert_eq!(idx, j);
                j * j
            });
            assert_eq!(out, (0..37).map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_with_more_threads_than_jobs() {
        let out = run_pool(vec![5u32], 16, |_, j| j + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn worker_panic_propagates_with_job_index() {
        // a panicking predicate must not hang the scope or silently drop
        // subtrees: the pool joins cleanly and re-raises on the caller,
        // naming the offending job
        let caught = panic::catch_unwind(|| {
            run_pool((0..16usize).collect::<Vec<_>>(), 4, |_idx, j| {
                if j == 5 {
                    panic!("predicate exploded on {j}");
                }
                j * 2
            })
        });
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .expect("re-raised payload is a String");
        assert!(msg.contains("worker panicked on job 5"), "got: {msg}");
        assert!(msg.contains("predicate exploded on 5"), "got: {msg}");
    }

    #[test]
    fn worker_panic_cancels_peer_workers() {
        // peers observe the cancel flag at the next job boundary: with one
        // poisoned job and many cheap ones, the run terminates (no hang) and
        // panics exactly once on the caller
        use std::sync::atomic::AtomicUsize;
        let ran = AtomicUsize::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run_pool((0..64usize).collect::<Vec<_>>(), 4, |_idx, j| {
                ran.fetch_add(1, Ordering::Relaxed);
                if j == 0 {
                    panic!("first job dies");
                }
                j
            })
        }));
        assert!(caught.is_err());
        assert!(
            ran.load(Ordering::Relaxed) <= 64,
            "every job runs at most once"
        );
    }
}
