//! Bounded wait-free solvability (Lemma 3.1).
//!
//! Lemma 3.1: a wait-free solvable task with finitely many inputs is
//! *bounded* wait-free solvable — there is a bound `b` such that every
//! process decides within `b` of its own steps. The proof is König's lemma
//! on the tree of executions in which decided processes take no further
//! steps: the tree is finitely branching, and an infinite path would be a
//! non-deciding execution.
//!
//! In the IIS model the bound is explicit: a decision map on `SDS^b(I)`
//! decides everyone in exactly `b` rounds. This module computes the
//! *minimal* such `b` and exhibits the König bound concretely by measuring,
//! over every execution, the deepest point at which some process decides.

use crate::solvability::{solve_at, DecisionMap};
use iis_tasks::Task;

/// The minimal number of IIS rounds at which a decision map exists, searched
/// up to `max_rounds`. This is the Lemma 3.1 bound for the IIS model,
/// computed exactly.
pub fn minimal_rounds(task: &Task, max_rounds: usize) -> Option<(usize, DecisionMap)> {
    (0..=max_rounds).find_map(|b| solve_at(task, b).map(|m| (b, m)))
}

/// Measures the earliest round at which each process's decision is already
/// *committed* under the given decision map: the smallest depth `d` such
/// that every full `b`-round local state extending the process's `d`-round
/// state maps to the same output. Returns the maximum over all states — the
/// effective König bound of Lemma 3.1, which can be smaller than `b`.
///
/// The `d`-round prefix of a `b`-round view label is recovered by peeling
/// the process's own entry out of the nested view `b − d` times (the
/// full-information state is self-describing).
pub fn effective_bound(task: &Task, decision: &DecisionMap) -> usize {
    let _ = task;
    let b = decision.rounds();
    if b == 0 {
        return 0;
    }
    let sub = decision.subdivision();
    let map = decision.map();
    let c = sub.complex();
    // peel the own-color entry `times` times
    let peel = |color: iis_topology::Color,
                label: &iis_topology::Label,
                times: usize|
     -> iis_topology::Label {
        let mut cur = label.clone();
        for _ in 0..times {
            let entries = cur.as_view().expect("full-information labels are views");
            cur = entries
                .into_iter()
                .find(|(cc, _)| *cc == color)
                .expect("self-inclusion")
                .1;
        }
        cur
    };
    let mut worst = 0usize;
    for d in (0..b).rev() {
        // group b-round vertices by their d-round prefix; a group commits at
        // depth d iff all members decide the same output vertex
        use std::collections::HashMap;
        let mut groups: HashMap<(iis_topology::Color, iis_topology::Label), Vec<_>> =
            HashMap::new();
        for v in c.vertex_ids() {
            let color = c.color(v);
            let prefix = peel(color, c.label(v), b - d);
            groups.entry((color, prefix)).or_default().push(v);
        }
        let all_committed = groups.values().all(|vs| {
            let mut decisions = vs.iter().map(|&v| map.image(v));
            let first = decisions.next().unwrap();
            decisions.all(|w| w == first)
        });
        if all_committed {
            worst = d;
        } else {
            return worst.max(d + 1);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use iis_tasks::library::{approximate_agreement, one_shot_immediate_snapshot_task, trivial};

    #[test]
    fn minimal_rounds_trivial_is_zero() {
        let t = trivial(1);
        let (b, m) = minimal_rounds(&t, 2).unwrap();
        assert_eq!(b, 0);
        assert_eq!(m.rounds(), 0);
        assert_eq!(effective_bound(&t, &m), 0);
    }

    #[test]
    fn minimal_rounds_one_shot_is_one() {
        let t = one_shot_immediate_snapshot_task(1);
        let (b, m) = minimal_rounds(&t, 2).unwrap();
        assert_eq!(b, 1);
        assert_eq!(effective_bound(&t, &m), 1);
    }

    #[test]
    fn minimal_rounds_grid9_is_two() {
        let t = approximate_agreement(1, 9);
        let (b, _) = minimal_rounds(&t, 3).unwrap();
        assert_eq!(b, 2);
    }

    #[test]
    fn minimal_rounds_none_for_unsolvable() {
        let t = iis_tasks::library::consensus(1, &[0, 1]);
        assert!(minimal_rounds(&t, 2).is_none());
    }
}
