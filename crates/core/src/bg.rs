//! The Borowsky–Gafni simulation (the "BG simulation") — the algorithmic
//! lineage this paper seeded, included as the repository's extension
//! feature.
//!
//! `m = k + 1` *simulators* jointly execute an `(n + 1)`-process k-shot
//! full-information protocol so that at most `k` simulator crashes stall at
//! most `k` simulated processes. The key primitive is **safe agreement**:
//! agreement with a window (the *unsafe zone*) such that a crash inside the
//! window may block the object forever, but a simulator is inside at most
//! one window at a time — so `f` crashes block at most `f` simulated
//! processes.
//!
//! The deterministic runner schedules simulator micro-steps explicitly
//! (propose-write, propose-snapshot, propose-decide are separate steps, so
//! adversarial crashes can land inside the unsafe zone). Simulated *writes*
//! are propagated deterministically once their preceding snapshot resolves
//! (the divergence between simulators — and hence everything safe
//! agreement must referee — is in the *snapshots*).

use iis_sched::AtomicMachine;
use iis_sched::FullInfoAtomic;
use iis_topology::Label;
use std::collections::BTreeMap;
use std::fmt;

/// The phases of one safe-agreement `propose` (the unsafe zone spans from
/// after `WroteValue` until `Decided`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProposePhase {
    /// Wrote `(value, level = 1)`; next: snapshot the levels.
    WroteValue,
    /// Snapshot taken; `saw2` records whether some level-2 was observed.
    Snapshotted {
        /// Whether a level-2 entry was visible.
        saw2: bool,
    },
}

/// A multi-writer safe-agreement object over `m` simulators.
///
/// Levels: `⊥` (never proposed), `1` (in the unsafe zone), `2` (committed),
/// `0` (backed off). The object is *resolved* once no simulator is at level
/// 1 and some simulator is at level 2; the agreed value is the level-2
/// value of the smallest simulator id.
#[derive(Clone, Debug)]
pub struct SafeAgreement<V> {
    values: Vec<Option<V>>,
    levels: Vec<u8>, // 0 = backed off, 1 = unsafe, 2 = committed, 255 = ⊥
}

impl<V: Clone> SafeAgreement<V> {
    /// A fresh object for `m` simulators.
    pub fn new(m: usize) -> Self {
        SafeAgreement {
            values: vec![None; m],
            levels: vec![255; m],
        }
    }

    /// `true` iff simulator `s` has started proposing.
    pub fn has_proposed(&self, s: usize) -> bool {
        self.levels[s] != 255
    }

    /// Step A of `propose`: publish the value and enter the unsafe zone.
    ///
    /// # Panics
    ///
    /// Panics if `s` already proposed.
    pub fn propose_write(&mut self, s: usize, v: V) {
        assert!(
            !self.has_proposed(s),
            "safe agreement is one-shot per simulator"
        );
        self.values[s] = Some(v);
        self.levels[s] = 1;
    }

    /// Step B of `propose`: snapshot the levels; returns whether a level-2
    /// was visible (to be passed to [`SafeAgreement::propose_finish`]).
    pub fn propose_snapshot(&self, _s: usize) -> bool {
        self.levels.contains(&2)
    }

    /// Step C of `propose`: leave the unsafe zone — commit to level 2, or
    /// back off to level 0 if a level-2 was seen in step B.
    pub fn propose_finish(&mut self, s: usize, saw2: bool) {
        debug_assert_eq!(self.levels[s], 1);
        self.levels[s] = if saw2 { 0 } else { 2 };
    }

    /// The resolution state: `Some(value)` once no simulator is in the
    /// unsafe zone and some simulator committed; `None` while unresolved.
    pub fn resolved(&self) -> Option<&V> {
        if self.levels.contains(&1) {
            return None;
        }
        self.levels
            .iter()
            .position(|&l| l == 2)
            .map(|s| self.values[s].as_ref().expect("level 2 implies value"))
    }

    /// `true` iff some simulator is currently inside the unsafe zone.
    pub fn unsafe_zone_occupied(&self) -> bool {
        self.levels.contains(&1)
    }
}

/// What a simulator is in the middle of doing.
#[derive(Clone, Debug)]
enum SimulatorState {
    Idle,
    Proposing {
        proc: usize,
        step: usize,
        phase: ProposePhase,
    },
}

/// Aggregate statistics of a BG run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BgStats {
    /// Simulator micro-steps executed.
    pub steps: u64,
    /// Safe-agreement proposals started.
    pub proposals: u64,
    /// Proposals that backed off (lost to a committed value).
    pub backoffs: u64,
}

/// A deterministic BG simulation of the `(n+1)`-process k-shot
/// full-information protocol (Figure 1) by `m` simulators.
///
/// Drive it by calling [`BgSimulation::step`] with simulator ids (any
/// schedule); crash simulators with [`BgSimulation::crash`]. Simulated
/// processes decide their final full-information views.
///
/// # Examples
///
/// ```
/// use iis_core::bg::BgSimulation;
///
/// // 2 simulators run 3 simulated processes for 1 round each.
/// let mut bg = BgSimulation::new(3, 1, 2);
/// for step in 0..1000 {
///     if bg.all_done() { break; }
///     bg.step(step % 2);
/// }
/// assert_eq!(bg.decisions().iter().filter(|d| d.is_some()).count(), 3);
/// ```
pub struct BgSimulation {
    n_sim: usize,
    k: usize,
    m: usize,
    machines: Vec<FullInfoAtomic>,
    /// #snapshots agreed-and-applied per simulated process.
    progress: Vec<usize>,
    /// Current (already determined) cell contents of the simulated memory.
    cells: Vec<Option<Label>>,
    decisions: Vec<Option<Label>>,
    agreements: BTreeMap<(usize, usize), SafeAgreement<Vec<Option<Label>>>>,
    sim_state: Vec<SimulatorState>,
    cursor: Vec<usize>,
    crashed: Vec<bool>,
    stats: BgStats,
    /// Micro-step at which each agreement first received a proposal, for
    /// the `bg.agreement_steps` latency histogram.
    proposal_started: BTreeMap<(usize, usize), u64>,
}

impl BgSimulation {
    /// Creates a simulation of `n_sim` processes (inputs = their ids)
    /// running `k` write/snapshot rounds, driven by `m` simulators.
    pub fn new(n_sim: usize, k: usize, m: usize) -> Self {
        let mut machines: Vec<FullInfoAtomic> = (0..n_sim)
            .map(|p| FullInfoAtomic::new(p, Label::scalar(p as u64), k))
            .collect();
        // the first write of every simulated process is determined by its
        // input alone; make it visible (simulators replicate determined
        // writes without agreement)
        let cells: Vec<Option<Label>> = machines
            .iter_mut()
            .map(|mc| Some(mc.next_write()))
            .collect();
        BgSimulation {
            n_sim,
            k,
            m,
            machines,
            progress: vec![0; n_sim],
            cells,
            decisions: vec![None; n_sim],
            agreements: BTreeMap::new(),
            sim_state: vec![SimulatorState::Idle; m],
            cursor: (0..m).collect(),
            crashed: vec![false; m],
            stats: BgStats::default(),
            proposal_started: BTreeMap::new(),
        }
    }

    /// Number of simulators.
    pub fn simulators(&self) -> usize {
        self.m
    }

    /// The simulated processes' decisions (final views) so far.
    pub fn decisions(&self) -> &[Option<Label>] {
        &self.decisions
    }

    /// Run statistics.
    pub fn stats(&self) -> &BgStats {
        &self.stats
    }

    /// `true` iff every simulated process has decided.
    pub fn all_done(&self) -> bool {
        self.decisions.iter().all(Option::is_some)
    }

    /// Number of simulated processes currently stalled by an occupied
    /// unsafe zone (blocked until the occupying simulator finishes).
    pub fn blocked_processes(&self) -> usize {
        (0..self.n_sim)
            .filter(|&p| {
                self.decisions[p].is_none()
                    && self
                        .agreements
                        .get(&(p, self.progress[p] + 1))
                        .is_some_and(|a| a.unsafe_zone_occupied() && a.resolved().is_none())
            })
            .count()
    }

    /// Crashes simulator `s` (wherever it is — possibly inside an unsafe
    /// zone, which then blocks one simulated process forever).
    pub fn crash(&mut self, s: usize) {
        self.crashed[s] = true;
        iis_obs::metrics::add("bg.crashes", 1);
    }

    /// `true` iff simulator `s` crashed.
    pub fn is_crashed(&self, s: usize) -> bool {
        self.crashed[s]
    }

    /// Executes one micro-step of simulator `s`. Returns `true` if the step
    /// made progress (proposed, advanced, or applied a resolution).
    pub fn step(&mut self, s: usize) -> bool {
        if self.crashed[s] || self.all_done() {
            return false;
        }
        self.stats.steps += 1;
        iis_obs::metrics::add("bg.steps", 1);
        match self.sim_state[s].clone() {
            SimulatorState::Proposing { proc, step, phase } => {
                let agr = self
                    .agreements
                    .get_mut(&(proc, step))
                    .expect("agreement exists while proposing");
                match phase {
                    ProposePhase::WroteValue => {
                        let saw2 = agr.propose_snapshot(s);
                        self.sim_state[s] = SimulatorState::Proposing {
                            proc,
                            step,
                            phase: ProposePhase::Snapshotted { saw2 },
                        };
                        true
                    }
                    ProposePhase::Snapshotted { saw2 } => {
                        if saw2 {
                            self.stats.backoffs += 1;
                            iis_obs::metrics::add("bg.backoffs", 1);
                        }
                        agr.propose_finish(s, saw2);
                        self.sim_state[s] = SimulatorState::Idle;
                        self.try_apply(proc, step);
                        true
                    }
                }
            }
            SimulatorState::Idle => {
                // round-robin over simulated processes from this simulator's
                // cursor: apply a resolution, or start a proposal
                for off in 0..self.n_sim {
                    let p = (self.cursor[s] + off) % self.n_sim;
                    if self.decisions[p].is_some() {
                        continue;
                    }
                    let t = self.progress[p] + 1;
                    if t > self.k {
                        continue;
                    }
                    if self.try_apply(p, t) {
                        self.cursor[s] = (p + 1) % self.n_sim;
                        return true;
                    }
                    let agr = self
                        .agreements
                        .entry((p, t))
                        .or_insert_with(|| SafeAgreement::new(self.m));
                    if !agr.has_proposed(s) {
                        // propose the current simulated memory as p's t-th
                        // snapshot (step A: enter the unsafe zone)
                        let proposal = self.cells.clone();
                        let agr = self.agreements.get_mut(&(p, t)).expect("just inserted");
                        agr.propose_write(s, proposal);
                        self.stats.proposals += 1;
                        iis_obs::metrics::add("bg.proposals", 1);
                        self.proposal_started
                            .entry((p, t))
                            .or_insert(self.stats.steps);
                        self.sim_state[s] = SimulatorState::Proposing {
                            proc: p,
                            step: t,
                            phase: ProposePhase::WroteValue,
                        };
                        self.cursor[s] = (p + 1) % self.n_sim;
                        return true;
                    }
                    // already proposed and unresolved: move to next process
                }
                false
            }
        }
    }

    /// If agreement `(p, t)` is resolved and not yet applied, apply it:
    /// feed the agreed snapshot to the simulated machine, advance progress,
    /// propagate the determined next write (or record the decision).
    fn try_apply(&mut self, p: usize, t: usize) -> bool {
        if self.progress[p] + 1 != t || self.decisions[p].is_some() {
            return false;
        }
        let Some(agr) = self.agreements.get(&(p, t)) else {
            return false;
        };
        let Some(snapshot) = agr.resolved().cloned() else {
            return false;
        };
        self.progress[p] = t;
        if let Some(started) = self.proposal_started.remove(&(p, t)) {
            iis_obs::metrics::record(
                "bg.agreement_steps",
                self.stats.steps.saturating_sub(started),
            );
        }
        match self.machines[p].on_snapshot(&snapshot) {
            Some(decision) => {
                self.decisions[p] = Some(decision);
                iis_obs::metrics::add("bg.decisions", 1);
            }
            None => {
                self.cells[p] = Some(self.machines[p].next_write());
            }
        }
        true
    }

    /// Runs a schedule of simulator ids until exhausted or all simulated
    /// processes decided. Returns the number of steps executed.
    pub fn run<I: IntoIterator<Item = usize>>(&mut self, schedule: I) -> u64 {
        let before = self.stats.steps;
        for s in schedule {
            if self.all_done() {
                break;
            }
            self.step(s);
        }
        self.stats.steps - before
    }
}

impl fmt::Debug for BgSimulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BgSimulation")
            .field("simulated", &self.n_sim)
            .field("simulators", &self.m)
            .field("progress", &self.progress)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_round_robin(bg: &mut BgSimulation, limit: u64) {
        let m = bg.simulators();
        let mut i = 0u64;
        while !bg.all_done() && i < limit {
            bg.step((i % m as u64) as usize);
            i += 1;
        }
    }

    #[test]
    fn safe_agreement_solo_commits() {
        let mut a: SafeAgreement<u32> = SafeAgreement::new(3);
        a.propose_write(0, 42);
        assert!(a.unsafe_zone_occupied());
        assert_eq!(a.resolved(), None);
        let saw2 = a.propose_snapshot(0);
        assert!(!saw2);
        a.propose_finish(0, saw2);
        assert_eq!(a.resolved(), Some(&42));
    }

    #[test]
    fn safe_agreement_second_proposer_backs_off() {
        let mut a: SafeAgreement<u32> = SafeAgreement::new(2);
        a.propose_write(0, 1);
        let s0 = a.propose_snapshot(0);
        a.propose_finish(0, s0);
        a.propose_write(1, 2);
        let s1 = a.propose_snapshot(1);
        assert!(s1, "must see the committed level 2");
        a.propose_finish(1, s1);
        assert_eq!(a.resolved(), Some(&1), "agreement on the committed value");
    }

    #[test]
    fn safe_agreement_concurrent_proposers_agree() {
        // interleave: both write level 1, both snapshot (see no 2), both
        // commit → resolution picks min id
        let mut a: SafeAgreement<u32> = SafeAgreement::new(2);
        a.propose_write(0, 10);
        a.propose_write(1, 20);
        let s0 = a.propose_snapshot(0);
        let s1 = a.propose_snapshot(1);
        a.propose_finish(0, s0);
        assert_eq!(a.resolved(), None, "1 still in the unsafe zone");
        a.propose_finish(1, s1);
        assert_eq!(a.resolved(), Some(&10));
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn safe_agreement_double_propose_panics() {
        let mut a: SafeAgreement<u32> = SafeAgreement::new(2);
        a.propose_write(0, 1);
        a.propose_write(0, 2);
    }

    #[test]
    fn bg_completes_without_crashes() {
        for (n_sim, k, m) in [(3, 1, 2), (3, 2, 2), (4, 2, 3), (2, 3, 1)] {
            let mut bg = BgSimulation::new(n_sim, k, m);
            run_round_robin(&mut bg, 100_000);
            assert!(bg.all_done(), "n={n_sim} k={k} m={m}");
            for d in bg.decisions() {
                assert!(d.as_ref().unwrap().as_view().is_some());
            }
        }
    }

    #[test]
    fn bg_single_simulator_sees_sequential_execution() {
        // one simulator: every snapshot it agrees is the deterministic
        // current memory — the simulated run is a legal execution
        let mut bg = BgSimulation::new(2, 2, 1);
        run_round_robin(&mut bg, 10_000);
        assert!(bg.all_done());
    }

    #[test]
    fn bg_crash_outside_unsafe_zone_blocks_nothing() {
        let mut bg = BgSimulation::new(3, 2, 3);
        // let simulator 0 run a bit, crash it while Idle
        bg.step(0);
        bg.step(0); // finishes its propose (3 micro-steps: A,B,C → step does A then B then C across calls)
        bg.step(0);
        assert!(matches!(bg.sim_state[0], SimulatorState::Idle));
        bg.crash(0);
        let mut i = 0u64;
        while !bg.all_done() && i < 100_000 {
            bg.step(1 + (i % 2) as usize);
            i += 1;
        }
        assert!(bg.all_done(), "crash outside the zone must not block");
    }

    #[test]
    fn bg_crash_in_unsafe_zone_blocks_at_most_one() {
        let mut bg = BgSimulation::new(3, 2, 2);
        // simulator 0 does step A of its first proposal, then crashes
        bg.step(0);
        assert!(matches!(
            bg.sim_state[0],
            SimulatorState::Proposing {
                phase: ProposePhase::WroteValue,
                ..
            }
        ));
        bg.crash(0);
        let mut i = 0u64;
        while i < 100_000 {
            bg.step(1);
            i += 1;
            if bg.decisions().iter().filter(|d| d.is_some()).count() >= 2 {
                break;
            }
        }
        let done = bg.decisions().iter().filter(|d| d.is_some()).count();
        assert!(done >= 2, "one crash blocks at most one simulated process");
        assert!(bg.blocked_processes() <= 1);
        assert!(!bg.all_done(), "the blocked process never finishes");
    }

    #[test]
    fn bg_stats_accumulate() {
        let mut bg = BgSimulation::new(2, 1, 2);
        run_round_robin(&mut bg, 10_000);
        let st = bg.stats();
        assert!(st.steps > 0);
        assert!(st.proposals >= 2);
        assert!(!bg.is_crashed(0));
        assert!(!format!("{bg:?}").is_empty());
    }

    #[test]
    fn bg_simulated_views_are_consistent() {
        // final views of a 1-shot run: everyone's view is the full set or a
        // prefix-comparable subset (snapshots of a monotone memory)
        let mut bg = BgSimulation::new(3, 1, 3);
        run_round_robin(&mut bg, 100_000);
        assert!(bg.all_done());
        let views: Vec<Vec<(iis_topology::Color, Label)>> = bg
            .decisions()
            .iter()
            .map(|d| d.as_ref().unwrap().as_view().unwrap())
            .collect();
        // pairwise containment-comparable participant sets
        for a in &views {
            for b in &views {
                let pa: std::collections::BTreeSet<_> = a.iter().map(|(c, _)| *c).collect();
                let pb: std::collections::BTreeSet<_> = b.iter().map(|(c, _)| *c).collect();
                assert!(pa.is_subset(&pb) || pb.is_subset(&pa));
            }
        }
    }
}
