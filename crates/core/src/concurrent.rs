//! Running atomic-model protocols on **real concurrent** snapshot memory.
//!
//! Together with the other runners this completes the execution matrix for
//! a single protocol artifact (an [`AtomicMachine`]):
//!
//! | substrate | deterministic | concurrent (threads) |
//! |---|---|---|
//! | atomic snapshot | `iis_sched::AtomicRunner` | [`run_atomic_concurrent`] |
//! | iterated immediate snapshot | `EmulatorMachine` + `IisRunner` | [`crate::run_emulation_concurrent`] |
//!
//! The same protocol value runs unchanged in all four cells — the right
//! column exercises the real wait-free memory objects of `iis-memory`, the
//! bottom row exercises the paper's emulation theorem.

use iis_memory::SnapshotMemory;
use iis_sched::AtomicMachine;
use std::sync::Arc;

/// Runs one thread per machine against a shared snapshot memory until every
/// machine decides. Each thread alternates `update` (its `next_write`) and
/// `scan`, exactly as Figure 1 prescribes.
///
/// The memory must have one cell per machine, initialized to `None`.
///
/// # Panics
///
/// Panics if `memory.len() != machines.len()`, or if a worker thread
/// panics.
pub fn run_atomic_concurrent<M, S>(machines: Vec<M>, memory: Arc<S>) -> Vec<M::Output>
where
    M: AtomicMachine + Send + 'static,
    M::Value: Send + Sync + 'static,
    M::Output: Send + 'static,
    S: SnapshotMemory<Option<M::Value>> + 'static,
{
    assert_eq!(memory.len(), machines.len(), "one memory cell per machine");
    let handles: Vec<_> = machines
        .into_iter()
        .enumerate()
        .map(|(pid, mut machine)| {
            let memory = Arc::clone(&memory);
            std::thread::spawn(move || loop {
                let value = machine.next_write();
                memory.update(pid, Some(value));
                let snapshot = memory.scan(pid);
                if let Some(out) = machine.on_snapshot(&snapshot) {
                    return out;
                }
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("protocol thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{ApproxAgreement, Renaming};
    use iis_memory::{DoubleCollectSnapshot, EmbeddedScanSnapshot};

    #[test]
    fn renaming_on_double_collect_memory() {
        for _case in 0..30 {
            let n = 4;
            let machines: Vec<Renaming> = (0..n).map(|p| Renaming::new(p as u64 + 1)).collect();
            let mem = Arc::new(DoubleCollectSnapshot::new(n, None));
            let names = run_atomic_concurrent(machines, mem);
            let mut uniq = names.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), n, "distinct names: {names:?}");
            assert!(names.iter().all(|&nm| (1..=2 * (n - 1) + 1).contains(&nm)));
        }
    }

    #[test]
    fn renaming_on_wait_free_memory() {
        for _case in 0..30 {
            let n = 3;
            let machines: Vec<Renaming> = (0..n).map(|p| Renaming::new(p as u64 * 7 + 3)).collect();
            let mem = Arc::new(EmbeddedScanSnapshot::new(n, None));
            let names = run_atomic_concurrent(machines, mem);
            let mut uniq = names.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), n);
        }
    }

    #[test]
    fn approx_agreement_on_both_memories() {
        for _case in 0..20 {
            let rounds = 10;
            let inputs = [0i64, 8, 8];
            let machines: Vec<ApproxAgreement> = inputs
                .iter()
                .map(|&x| ApproxAgreement::new(x, rounds))
                .collect();
            let mem = Arc::new(DoubleCollectSnapshot::new(3, None));
            let outs = run_atomic_concurrent(machines, mem);
            let lo = *outs.iter().min().unwrap();
            let hi = *outs.iter().max().unwrap();
            assert!(lo >= 0 && hi <= 8 * ApproxAgreement::SCALE, "validity");
            assert!(
                hi - lo <= 8 * ApproxAgreement::SCALE / (1 << (rounds - 2)),
                "convergence: spread {}",
                hi - lo
            );

            let machines: Vec<ApproxAgreement> = inputs
                .iter()
                .map(|&x| ApproxAgreement::new(x, rounds))
                .collect();
            let mem = Arc::new(EmbeddedScanSnapshot::new(3, None));
            let outs = run_atomic_concurrent(machines, mem);
            let lo = *outs.iter().min().unwrap();
            let hi = *outs.iter().max().unwrap();
            assert!(lo >= 0 && hi <= 8 * ApproxAgreement::SCALE);
            assert!(hi - lo <= 8 * ApproxAgreement::SCALE / (1 << (rounds - 2)));
        }
    }

    #[test]
    #[should_panic(expected = "one memory cell per machine")]
    fn size_mismatch_panics() {
        let machines: Vec<Renaming> = vec![Renaming::new(1)];
        let mem = Arc::new(DoubleCollectSnapshot::new(2, None));
        let _ = run_atomic_concurrent(machines, mem);
    }
}
