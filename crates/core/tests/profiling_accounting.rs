//! Span profiling must be a pure observer (ISSUE 6 tentpole): enabling it
//! changes neither the witness nor the exact `solve.nodes` count at any
//! thread count, and the samples it collects fold into a span tree at
//! least two levels deep (round → compile/search/split, and under a
//! parallel round, round → subtree → search).
//!
//! Lives in its own integration-test binary (and as a single test) so the
//! exact node-count deltas read from the process-global metric registry
//! see no concurrent unrelated searches.

use iis_core::{solve_at_opts, BoundedOutcome, DecisionMap, Kernel, SolveOptions};
use iis_tasks::library::{approximate_agreement, k_set_consensus};

fn nodes_of(run: impl FnOnce()) -> u64 {
    let before = iis_obs::snapshot();
    run();
    iis_obs::snapshot()
        .delta_since(&before)
        .counters
        .get("solve.nodes")
        .copied()
        .unwrap_or(0)
}

fn witnesses_identical(a: &DecisionMap, b: &DecisionMap) -> bool {
    let c = a.subdivision().complex();
    a.rounds() == b.rounds() && c.vertex_ids().all(|v| a.map().image(v) == b.map().image(v))
}

#[test]
fn profiling_is_invisible_to_the_search() {
    iis_obs::set_enabled(true);
    for kernel in [Kernel::Compiled, Kernel::Reference] {
        for jobs in [1usize, 2, 4, 8] {
            // a solvable instance whose witness lives at b = 2: profiling
            // off vs on must agree on the witness and the node count
            let task = approximate_agreement(1, 9);
            let opts = SolveOptions::new().jobs(jobs).kernel(kernel);
            iis_obs::profile::set_enabled(false);
            let mut witness_off = None;
            let nodes_off = nodes_of(|| {
                witness_off = match solve_at_opts(&task, 2, &opts) {
                    BoundedOutcome::Solvable(w) => Some(w),
                    other => panic!("jobs={jobs} {kernel:?}: expected Solvable, got {other:?}"),
                };
            });
            iis_obs::profile::reset();
            iis_obs::profile::set_enabled(true);
            let mut witness_on = None;
            let nodes_on = nodes_of(|| {
                witness_on = match solve_at_opts(&task, 2, &opts) {
                    BoundedOutcome::Solvable(w) => Some(w),
                    other => panic!("jobs={jobs} {kernel:?}: expected Solvable, got {other:?}"),
                };
            });
            iis_obs::profile::set_enabled(false);
            assert_eq!(
                nodes_off, nodes_on,
                "jobs={jobs} {kernel:?}: profiling must not change node accounting"
            );
            assert!(
                witnesses_identical(&witness_off.unwrap(), &witness_on.unwrap()),
                "jobs={jobs} {kernel:?}: profiling must not change the witness"
            );

            // the samples collected above fold into a span tree at least
            // two levels deep, rooted at a round frame
            let collapsed = iis_obs::profile::to_collapsed();
            let folded = iis_obs::profile::parse_collapsed(&collapsed).unwrap();
            assert!(
                folded.iter().any(|(stack, _)| stack.len() >= 2),
                "jobs={jobs} {kernel:?}: expected nested spans in:\n{collapsed}"
            );
            assert!(
                folded
                    .iter()
                    .any(|(stack, _)| stack[0].starts_with("round:")),
                "jobs={jobs} {kernel:?}: expected round roots in:\n{collapsed}"
            );
            if jobs > 1 {
                assert!(
                    folded
                        .iter()
                        .any(|(stack, _)| stack.iter().any(|f| f.starts_with("subtree:"))),
                    "jobs={jobs} {kernel:?}: expected subtree frames in:\n{collapsed}"
                );
            }

            // an unsolvable instance: the refutation node count is equally
            // undisturbed
            let task = k_set_consensus(2, 2);
            iis_obs::profile::set_enabled(false);
            let refute_off = nodes_of(|| {
                assert!(matches!(
                    solve_at_opts(&task, 1, &opts),
                    BoundedOutcome::Unsolvable
                ));
            });
            iis_obs::profile::set_enabled(true);
            let refute_on = nodes_of(|| {
                assert!(matches!(
                    solve_at_opts(&task, 1, &opts),
                    BoundedOutcome::Unsolvable
                ));
            });
            iis_obs::profile::set_enabled(false);
            assert_eq!(
                refute_off, refute_on,
                "jobs={jobs} {kernel:?}: profiling must not change refutation accounting"
            );
        }
    }
}
