//! Budget accounting for `BoundedOutcome::Exhausted` (ISSUE satellite):
//! when the search runs out of budget, the number of nodes charged to the
//! `solve.nodes` counter must equal the budget consumed — exactly. Both CSP
//! engines (the compiled bitset kernel and the reference engine) obey the
//! invariant, and sequentially they charge the *same* node count on the
//! same instance.
//!
//! Lives in its own integration-test binary (and as a single test) so the
//! process-global metric registry sees no concurrent unrelated searches.

use iis_core::{
    solve_at_opts, solve_at_with, BoundedOutcome, Kernel, SearchStrategy, SolveOptions,
};
use iis_tasks::library::{
    approximate_agreement, consensus, k_set_consensus, one_shot_immediate_snapshot_task,
};

fn nodes_of(run: impl FnOnce()) -> u64 {
    let before = iis_obs::snapshot();
    run();
    iis_obs::snapshot()
        .delta_since(&before)
        .counters
        .get("solve.nodes")
        .copied()
        .unwrap_or(0)
}

#[test]
fn exhausted_search_charges_exactly_the_budget() {
    iis_obs::set_enabled(true);
    let task = one_shot_immediate_snapshot_task(1);

    // sanity: with an unbounded budget this (task, b) is solvable, so the
    // bounded runs below stop because of the budget, not the search space
    assert!(matches!(
        solve_at_with(&task, 1, u64::MAX, SearchStrategy::PlainBacktracking),
        BoundedOutcome::Solvable(_)
    ));

    for kernel in [Kernel::Compiled, Kernel::Reference] {
        // plain backtracking charges one node per visited assignment
        // prefix; even the shortest accepting path visits more prefixes
        // than this budget allows, so the pair (task, budget) provably
        // exhausts
        const BUDGET: u64 = 3;
        let charged = nodes_of(|| {
            let outcome = solve_at_opts(
                &task,
                1,
                &SolveOptions::new()
                    .budget(BUDGET)
                    .strategy(SearchStrategy::PlainBacktracking)
                    .kernel(kernel),
            );
            assert!(matches!(outcome, BoundedOutcome::Exhausted));
        });
        assert_eq!(
            charged, BUDGET,
            "{kernel:?}: nodes charged must equal budget consumed"
        );
        assert_eq!(
            iis_obs::snapshot()
                .gauges
                .get("solve.budget_remaining")
                .copied(),
            Some(0),
            "{kernel:?}: an exhausted search leaves no budget"
        );

        // the MAC strategy obeys the same invariant: every budget decrement
        // is one `solve.nodes` increment
        const MAC_BUDGET: u64 = 1;
        let mut outcome = BoundedOutcome::Unsolvable;
        let charged = nodes_of(|| {
            outcome = solve_at_opts(
                &task,
                1,
                &SolveOptions::new()
                    .budget(MAC_BUDGET)
                    .strategy(SearchStrategy::Mac)
                    .kernel(kernel),
            );
        });
        if matches!(outcome, BoundedOutcome::Exhausted) {
            assert_eq!(charged, MAC_BUDGET, "{kernel:?}");
        } else {
            // MAC may finish within one node; it still never overcharges
            assert!(charged <= MAC_BUDGET, "{kernel:?}");
        }

        // a *parallel* exhausted search keeps the invariant too: the budget
        // is one shared atomic pool, a node is charged iff a decrement
        // succeeds, and cancelled workers stop charging — so the sum over
        // all workers is still exactly the budget, with no over- or
        // under-count
        for (strategy, jobs) in [
            (SearchStrategy::PlainBacktracking, 2),
            (SearchStrategy::PlainBacktracking, 4),
            (SearchStrategy::Mac, 4),
            (SearchStrategy::Mac, 8),
        ] {
            const PAR_BUDGET: u64 = 17;
            // (3,2)-set consensus at b = 1: the Sperner obstruction is
            // global, so both strategies need well over 17 nodes to refute
            let charged = nodes_of(|| {
                let outcome = solve_at_opts(
                    &k_set_consensus(2, 2),
                    1,
                    &SolveOptions::new()
                        .budget(PAR_BUDGET)
                        .strategy(strategy)
                        .jobs(jobs)
                        .kernel(kernel),
                );
                assert!(
                    matches!(outcome, BoundedOutcome::Exhausted),
                    "17 nodes cannot refute (3,2)-set consensus at b = 1 \
                     ({kernel:?}, {strategy:?}, jobs {jobs})"
                );
            });
            assert_eq!(
                charged, PAR_BUDGET,
                "parallel nodes charged must equal budget consumed \
                 ({kernel:?}, {strategy:?}, jobs {jobs})"
            );
            assert_eq!(
                iis_obs::snapshot()
                    .gauges
                    .get("solve.budget_remaining")
                    .copied(),
                Some(0)
            );
        }
    }

    // differential accounting (ISSUE 3): with unbounded budget, the
    // compiled kernel and the reference engine explore the same tree in
    // the same order, so their sequential `solve.nodes` counts — and the
    // parallel `solve.subtrees` counts — are equal, not merely both valid
    for (task, b) in [
        (k_set_consensus(2, 2), 1usize),
        (consensus(1, &[0, 1]), 2),
        (approximate_agreement(1, 9), 1),
        (one_shot_immediate_snapshot_task(2), 1),
    ] {
        for strategy in [SearchStrategy::Mac, SearchStrategy::PlainBacktracking] {
            let counts: Vec<u64> = [Kernel::Compiled, Kernel::Reference]
                .map(|kernel| {
                    nodes_of(|| {
                        solve_at_opts(
                            &task,
                            b,
                            &SolveOptions::new().strategy(strategy).kernel(kernel),
                        );
                    })
                })
                .into();
            // (MAC may refute at the root with zero charged nodes —
            // equality is still the claim under test)
            assert_eq!(
                counts[0],
                counts[1],
                "{} b={b} {strategy:?}: kernels disagree on node accounting",
                task.name()
            );
            for jobs in [2usize, 4, 8] {
                let subtrees: Vec<u64> = [Kernel::Compiled, Kernel::Reference]
                    .map(|kernel| {
                        let before = iis_obs::snapshot();
                        solve_at_opts(
                            &task,
                            b,
                            &SolveOptions::new()
                                .strategy(strategy)
                                .jobs(jobs)
                                .kernel(kernel),
                        );
                        iis_obs::snapshot()
                            .delta_since(&before)
                            .counters
                            .get("solve.subtrees")
                            .copied()
                            .unwrap_or(0)
                    })
                    .into();
                assert_eq!(
                    subtrees[0],
                    subtrees[1],
                    "{} b={b} {strategy:?} jobs={jobs}: kernels disagree on subtree accounting",
                    task.name()
                );
            }
        }
    }
}
