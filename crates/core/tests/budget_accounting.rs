//! Budget accounting for `BoundedOutcome::Exhausted` (ISSUE satellite):
//! when the search runs out of budget, the number of nodes charged to the
//! `solve.nodes` counter must equal the budget consumed — exactly.
//!
//! Lives in its own integration-test binary (and as a single test) so the
//! process-global metric registry sees no concurrent unrelated searches.

use iis_core::{solve_at_opts, solve_at_with, BoundedOutcome, SearchStrategy, SolveOptions};
use iis_tasks::library::{k_set_consensus, one_shot_immediate_snapshot_task};

#[test]
fn exhausted_search_charges_exactly_the_budget() {
    iis_obs::set_enabled(true);
    let task = one_shot_immediate_snapshot_task(1);

    // sanity: with an unbounded budget this (task, b) is solvable, so the
    // bounded runs below stop because of the budget, not the search space
    assert!(matches!(
        solve_at_with(&task, 1, u64::MAX, SearchStrategy::PlainBacktracking),
        BoundedOutcome::Solvable(_)
    ));

    // plain backtracking charges one node per visited assignment prefix;
    // even the shortest accepting path visits more prefixes than this
    // budget allows, so the pair (task, budget) provably exhausts
    let before = iis_obs::snapshot();
    const BUDGET: u64 = 3;
    let outcome = solve_at_with(&task, 1, BUDGET, SearchStrategy::PlainBacktracking);
    assert!(matches!(outcome, BoundedOutcome::Exhausted));

    let delta = iis_obs::snapshot().delta_since(&before);
    assert_eq!(
        delta.counters.get("solve.nodes").copied(),
        Some(BUDGET),
        "nodes charged must equal budget consumed"
    );
    assert_eq!(
        iis_obs::snapshot()
            .gauges
            .get("solve.budget_remaining")
            .copied(),
        Some(0),
        "an exhausted search leaves no budget"
    );

    // the MAC strategy obeys the same invariant: every budget decrement is
    // one `solve.nodes` increment
    let before = iis_obs::snapshot();
    const MAC_BUDGET: u64 = 1;
    let outcome = solve_at_with(&task, 1, MAC_BUDGET, SearchStrategy::Mac);
    let delta = iis_obs::snapshot().delta_since(&before);
    let charged = delta.counters.get("solve.nodes").copied().unwrap_or(0);
    if matches!(outcome, BoundedOutcome::Exhausted) {
        assert_eq!(charged, MAC_BUDGET);
    } else {
        // MAC may finish within one node; it still never overcharges
        assert!(charged <= MAC_BUDGET);
    }

    // a *parallel* exhausted search keeps the invariant too: the budget is
    // one shared atomic pool, a node is charged iff a decrement succeeds,
    // and cancelled workers stop charging — so the sum over all workers is
    // still exactly the budget, with no over- or under-count
    for (strategy, jobs) in [
        (SearchStrategy::PlainBacktracking, 2),
        (SearchStrategy::PlainBacktracking, 4),
        (SearchStrategy::Mac, 4),
    ] {
        let before = iis_obs::snapshot();
        const PAR_BUDGET: u64 = 17;
        // (3,2)-set consensus at b = 1: the Sperner obstruction is global,
        // so both strategies need well over 17 nodes to refute it
        let outcome = solve_at_opts(
            &k_set_consensus(2, 2),
            1,
            &SolveOptions::new()
                .budget(PAR_BUDGET)
                .strategy(strategy)
                .jobs(jobs),
        );
        assert!(
            matches!(outcome, BoundedOutcome::Exhausted),
            "17 nodes cannot refute (3,2)-set consensus at b = 1 ({strategy:?}, jobs {jobs})"
        );
        let delta = iis_obs::snapshot().delta_since(&before);
        assert_eq!(
            delta.counters.get("solve.nodes").copied(),
            Some(PAR_BUDGET),
            "parallel nodes charged must equal budget consumed ({strategy:?}, jobs {jobs})"
        );
        assert_eq!(
            iis_obs::snapshot()
                .gauges
                .get("solve.budget_remaining")
                .copied(),
            Some(0)
        );
    }
}
