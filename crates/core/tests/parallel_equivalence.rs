//! Sequential vs parallel search equivalence (ISSUE satellite): for every
//! task in the library, every round count we can afford, both strategies,
//! and a sweep of thread counts, the parallel search must return the same
//! `BoundedOutcome` variant as the sequential one — and when a witness
//! exists, the *identical* witness (DESIGN.md §7: subtrees are ordered in
//! the sequential depth-first order and only subtrees after the winner are
//! cancelled, so the lowest-indexed solution is the sequential solution).

use iis_core::{
    solvability::validate_decision_map, solve_at_opts, BoundedOutcome, DecisionMap, Kernel,
    SearchStrategy, SolveOptions,
};
use iis_tasks::library::{
    approximate_agreement, chromatic_simplex_agreement, consensus, k_set_consensus,
    one_shot_immediate_snapshot_task, renaming, trivial,
};
use iis_tasks::Task;

/// The library sweep: `(task, max b we can afford exhaustively)`.
fn library() -> Vec<(Task, usize)> {
    vec![
        (trivial(2), 1),
        (consensus(1, &[0, 1]), 2),
        (consensus(2, &[0, 1]), 1),
        (k_set_consensus(2, 2), 1),
        (k_set_consensus(2, 3), 1),
        (k_set_consensus(1, 1), 2),
        (renaming(1, 3), 1),
        (approximate_agreement(1, 3), 2),
        (approximate_agreement(1, 9), 2),
        (one_shot_immediate_snapshot_task(1), 1),
        (one_shot_immediate_snapshot_task(2), 1),
        (
            chromatic_simplex_agreement(&iis_topology::sds_iterated(
                &iis_topology::Complex::standard_simplex(1),
                2,
            )),
            2,
        ),
    ]
}

fn witnesses_identical(a: &DecisionMap, b: &DecisionMap) -> bool {
    let c = a.subdivision().complex();
    a.rounds() == b.rounds() && c.vertex_ids().all(|v| a.map().image(v) == b.map().image(v))
}

#[test]
fn parallel_agrees_with_sequential_across_library() {
    for (task, max_b) in library() {
        for b in 0..=max_b {
            for strategy in [SearchStrategy::Mac, SearchStrategy::PlainBacktracking] {
                let seq = solve_at_opts(&task, b, &SolveOptions::new().strategy(strategy));
                for jobs in [2usize, 3, 4, 8] {
                    let par =
                        solve_at_opts(&task, b, &SolveOptions::new().strategy(strategy).jobs(jobs));
                    match (&seq, &par) {
                        (BoundedOutcome::Solvable(s), BoundedOutcome::Solvable(p)) => {
                            assert!(
                                witnesses_identical(s, p),
                                "{} b={b} {strategy:?} jobs={jobs}: witness differs",
                                task.name()
                            );
                            validate_decision_map(&task, p.subdivision(), p.map()).unwrap();
                        }
                        (BoundedOutcome::Unsolvable, BoundedOutcome::Unsolvable) => {}
                        (s, p) => panic!(
                            "{} b={b} {strategy:?} jobs={jobs}: sequential {s:?} vs parallel {p:?}",
                            task.name()
                        ),
                    }
                }
            }
        }
    }
}

/// The compiled bitset kernel vs the reference engine (ISSUE 3 tentpole):
/// over the full task library, both strategies, and jobs 1/2/4/8, the two
/// engines must return identical verdicts and *bit-identical* witnesses.
/// The oracle is the reference engine run sequentially — by the test above
/// its parallel runs agree with it, so transitively the kernel matches the
/// reference engine at every thread count.
#[test]
fn compiled_kernel_matches_reference_engine_across_library() {
    for (task, max_b) in library() {
        for b in 0..=max_b {
            for strategy in [SearchStrategy::Mac, SearchStrategy::PlainBacktracking] {
                let reference = solve_at_opts(
                    &task,
                    b,
                    &SolveOptions::new()
                        .strategy(strategy)
                        .kernel(Kernel::Reference),
                );
                for jobs in [1usize, 2, 4, 8] {
                    let compiled = solve_at_opts(
                        &task,
                        b,
                        &SolveOptions::new()
                            .strategy(strategy)
                            .jobs(jobs)
                            .kernel(Kernel::Compiled),
                    );
                    match (&reference, &compiled) {
                        (BoundedOutcome::Solvable(r), BoundedOutcome::Solvable(c)) => {
                            assert!(
                                witnesses_identical(r, c),
                                "{} b={b} {strategy:?} jobs={jobs}: kernel witness differs",
                                task.name()
                            );
                            validate_decision_map(&task, c.subdivision(), c.map()).unwrap();
                        }
                        (BoundedOutcome::Unsolvable, BoundedOutcome::Unsolvable) => {}
                        (r, c) => panic!(
                            "{} b={b} {strategy:?} jobs={jobs}: reference {r:?} vs compiled {c:?}",
                            task.name()
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_exhaustion_is_sound() {
    // under a budget too small to decide, every thread count must report
    // Exhausted (never a fabricated verdict)
    let task = k_set_consensus(2, 2);
    for kernel in [Kernel::Compiled, Kernel::Reference] {
        for jobs in [1usize, 2, 4] {
            let out = solve_at_opts(
                &task,
                1,
                &SolveOptions::new().budget(5).jobs(jobs).kernel(kernel),
            );
            assert!(
                matches!(out, BoundedOutcome::Exhausted),
                "{kernel:?} jobs={jobs} must exhaust"
            );
        }
    }
}

/// Span profiling is a pure observer (ISSUE 6): with profiling enabled the
/// search returns bit-identical witnesses at jobs 1/2/4/8. (The matching
/// exact node-count claim lives in `profiling_accounting.rs`, which owns
/// its process so counter deltas cannot race concurrent tests.)
#[test]
fn profiling_does_not_perturb_witnesses() {
    let task = approximate_agreement(1, 9);
    for jobs in [1usize, 2, 4, 8] {
        iis_obs::profile::set_enabled(false);
        let off = solve_at_opts(&task, 2, &SolveOptions::new().jobs(jobs));
        iis_obs::profile::set_enabled(true);
        let on = solve_at_opts(&task, 2, &SolveOptions::new().jobs(jobs));
        iis_obs::profile::set_enabled(false);
        match (&off, &on) {
            (BoundedOutcome::Solvable(a), BoundedOutcome::Solvable(b)) => {
                assert!(
                    witnesses_identical(a, b),
                    "jobs={jobs}: profiling changed the witness"
                );
                validate_decision_map(&task, b.subdivision(), b.map()).unwrap();
            }
            (a, b) => panic!("jobs={jobs}: profiling off {a:?} vs on {b:?}"),
        }
    }
}

/// The arena revalidation path is invisible in the record bytes (ISSUE 8):
/// replaying a cached sweep — which rebuilds `SDS^b(I)` as a flat arena and
/// revalidates the stored map against CSR carrier slices — must serialize to
/// exactly the bytes the cold solve produced, for both kernels and every
/// thread count. This extends the kernel/jobs bit-identity claims above to
/// the warm `iis serve` path.
#[test]
fn warm_cache_replay_is_bit_identical_across_kernels_and_jobs() {
    use iis_core::cache::{report_to_json, solve_up_to_cached};
    use std::collections::HashMap;

    for (task, bs) in [
        (approximate_agreement(1, 9), 2usize),
        (consensus(1, &[0, 1]), 2),
        (k_set_consensus(2, 2), 1),
    ] {
        let cold_bytes = {
            let mut cache = HashMap::new();
            let cold = solve_up_to_cached(&task, bs, &SolveOptions::new(), &mut cache);
            assert!(!cold.hit);
            report_to_json(&cold.report).to_string()
        };
        for kernel in [Kernel::Compiled, Kernel::Reference] {
            for jobs in [1usize, 2, 4, 8] {
                let opts = SolveOptions::new().kernel(kernel).jobs(jobs);
                let mut cache = HashMap::new();
                let fresh = solve_up_to_cached(&task, bs, &opts, &mut cache);
                assert!(!fresh.hit);
                assert_eq!(
                    report_to_json(&fresh.report).to_string(),
                    cold_bytes,
                    "{} {kernel:?} jobs={jobs}: cold record differs",
                    task.name()
                );
                let warm = solve_up_to_cached(&task, bs, &opts, &mut cache);
                assert!(
                    warm.hit,
                    "{} {kernel:?} jobs={jobs}: expected a hit",
                    task.name()
                );
                assert_eq!(
                    report_to_json(&warm.report).to_string(),
                    cold_bytes,
                    "{} {kernel:?} jobs={jobs}: warm replay differs",
                    task.name()
                );
                if let Some(w) = warm.report.witness() {
                    validate_decision_map(&task, w.subdivision(), w.map()).unwrap();
                }
            }
        }
    }
}

#[test]
fn parallel_witness_survives_validation_on_deeper_rounds() {
    // a solvable instance whose witness lives at b = 2, found in parallel
    let task = approximate_agreement(1, 9);
    let out = solve_at_opts(&task, 2, &SolveOptions::new().jobs(4));
    let BoundedOutcome::Solvable(w) = out else {
        panic!("grid-9 ε-agreement is solvable at b = 2");
    };
    validate_decision_map(&task, w.subdivision(), w.map()).unwrap();
}
