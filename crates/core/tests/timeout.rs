//! `SolveOptions::timeout` (ISSUE 4 satellite): wall-clock graceful
//! degradation. A zero deadline halts both kernels promptly with the
//! inconclusive `TimedOut` outcome; a generous deadline changes nothing.

use iis_core::solvability::{solve_at_opts, solve_up_to_opts, BoundedOutcome, SolveOptions};
use iis_core::{Kernel, SearchStrategy};
use iis_tasks::library::{
    approximate_agreement, consensus, k_set_consensus, one_shot_immediate_snapshot_task,
};
use std::time::Duration;

#[test]
fn zero_timeout_times_out_both_kernels_at_any_jobs() {
    // plain backtracking charges a node per assignment prefix, so this
    // (solvable) instance is guaranteed to hit the clock poll on its very
    // first charge — MAC could refute in propagation with zero nodes
    let task = one_shot_immediate_snapshot_task(1);
    for kernel in [Kernel::Compiled, Kernel::Reference] {
        for jobs in [1usize, 4] {
            let opts = SolveOptions::new()
                .kernel(kernel)
                .jobs(jobs)
                .strategy(SearchStrategy::PlainBacktracking)
                .timeout(Duration::ZERO);
            let out = solve_at_opts(&task, 1, &opts);
            assert!(
                matches!(out, BoundedOutcome::TimedOut),
                "{kernel:?} jobs={jobs}: expected TimedOut, got {out:?}"
            );
        }
    }
}

#[test]
fn generous_timeout_preserves_the_verdict() {
    // an hour of budget never fires mid-test, so verdicts must be exactly
    // the untimed ones — TimedOut is only ever a truthful "clock elapsed"
    let hour = Duration::from_secs(3600);
    let solvable = approximate_agreement(1, 3);
    let out = solve_at_opts(&solvable, 1, &SolveOptions::new().timeout(hour));
    assert!(matches!(out, BoundedOutcome::Solvable(_)));
    let unsolvable = consensus(2, &[0, 1]);
    let out = solve_at_opts(&unsolvable, 1, &SolveOptions::new().timeout(hour));
    assert!(matches!(out, BoundedOutcome::Unsolvable));
}

#[test]
fn timed_out_sweep_stops_without_recording_a_verdict() {
    // the sweep must not misreport a timed-out round as unsolvable: with a
    // zero timeout even b = 0 is inconclusive, so the report stays empty
    let task = k_set_consensus(2, 2);
    let opts = SolveOptions::new()
        .strategy(SearchStrategy::PlainBacktracking)
        .timeout(Duration::ZERO);
    let report = solve_up_to_opts(&task, 3, &opts);
    assert!(report.results().is_empty(), "got {:?}", report.results());
    assert!(report.witness().is_none());
}
