//! Template-instantiated subdivision vs the reference builder, over the
//! whole task library (ISSUE satellite): for every input complex in the
//! library and every round count `b ≤ 3` we can afford, the template path
//! (`sds_iterated`, which instantiates the per-dimension `SdsTemplate`) and
//! the flat arena tower must be `same_labeled`-equal — in fact bit-identical
//! including carriers — to a tower built purely with `sds_reference`, the
//! pre-template ordered-partition builder kept as a differential oracle.

use iis_tasks::library::{
    approximate_agreement, chromatic_simplex_agreement, consensus, k_set_consensus,
    one_shot_immediate_snapshot_task, renaming, trivial,
};
use iis_tasks::Task;
use iis_topology::arena::arena_sds_tower;
use iis_topology::{sds_iterated, sds_reference, Subdivision};

/// Every library input complex, via its task constructor.
fn library() -> Vec<Task> {
    vec![
        trivial(2),
        consensus(1, &[0, 1]),
        consensus(2, &[0, 1]),
        k_set_consensus(2, 2),
        k_set_consensus(2, 3),
        k_set_consensus(1, 1),
        renaming(1, 3),
        approximate_agreement(1, 3),
        approximate_agreement(1, 9),
        one_shot_immediate_snapshot_task(1),
        one_shot_immediate_snapshot_task(2),
        chromatic_simplex_agreement(&sds_iterated(
            &iis_topology::Complex::standard_simplex(1),
            2,
        )),
    ]
}

/// The reference builder is quadratic in the facet count (its `add_facet`
/// antichain scan), so deep towers over wide inputs are capped here. Every
/// task still gets at least `b = 1` and the small inputs reach `b = 3`.
const MAX_REFERENCE_FACETS: usize = 2500;

fn assert_towers_identical(task: &Task, b: usize, fast: &Subdivision, slow: &Subdivision) {
    let (fc, sc) = (fast.complex(), slow.complex());
    assert!(
        fc.same_labeled(sc),
        "{} b={b}: template tower not same_labeled to reference",
        task.name()
    );
    // ...and beyond the satellite claim, bit-identical: ids, carriers, facets
    assert_eq!(fc.num_vertices(), sc.num_vertices());
    for v in fc.vertex_ids() {
        assert_eq!(fc.color(v), sc.color(v), "{} b={b}: color {v}", task.name());
        assert_eq!(fc.label(v), sc.label(v), "{} b={b}: label {v}", task.name());
        assert_eq!(
            fast.carrier_of_vertex(v),
            slow.carrier_of_vertex(v),
            "{} b={b}: carrier {v}",
            task.name()
        );
    }
    assert!(fc.facets().eq(sc.facets()), "{} b={b}: facets", task.name());
}

#[test]
fn template_tower_matches_reference_across_library() {
    for task in library() {
        let input = task.input();
        let mut slow = Subdivision::identity(input.clone());
        for b in 1..=3usize {
            if slow.complex().num_facets() > MAX_REFERENCE_FACETS {
                break;
            }
            slow = slow.compose(&sds_reference(slow.complex()));
            let fast = sds_iterated(input, b);
            assert_towers_identical(&task, b, &fast, &slow);
            let arena = arena_sds_tower(input, b);
            assert_towers_identical(&task, b, &arena.to_subdivision(), &slow);
        }
    }
}
