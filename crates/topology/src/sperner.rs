//! Sperner labelings and rainbow-simplex counting — the impossibility
//! engine.
//!
//! The classical Sperner lemma, in the chromatic-subdivision setting: if
//! every vertex `v` of a subdivision of the colored simplex `sⁿ` is labeled
//! with the *color of some vertex of its carrier*, then the number of facets
//! whose labels exhaust all `n+1` colors is **odd** — in particular nonzero.
//!
//! This is exactly the elementary counting argument behind the k-set
//! consensus impossibility (\[7\] in the paper): any wait-free protocol for
//! `(n+1, k)`-set consensus yields a decision map on `SDS^b(sⁿ)` whose
//! decisions respect carriers (validity), i.e. a Sperner labeling; a rainbow
//! facet then exhibits an execution with `n+1 > k` distinct decisions.

use crate::{Color, Simplex, Subdivision, VertexId};
use std::collections::BTreeSet;
use std::fmt;

/// Ways a labeling can fail to be a Sperner labeling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpernerError {
    /// The base of the subdivision must be a single `n`-simplex.
    BaseNotASimplex,
    /// Wrong number of labels (must be one per subdivided vertex).
    WrongLength {
        /// Labels supplied.
        got: usize,
        /// Vertices in the subdivided complex.
        expected: usize,
    },
    /// `labels[v]` is not the color of any vertex of `v`'s carrier.
    LabelOutsideCarrier(VertexId),
}

impl fmt::Display for SpernerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BaseNotASimplex => write!(f, "base of the subdivision is not a single simplex"),
            Self::WrongLength { got, expected } => {
                write!(f, "expected {expected} labels, got {got}")
            }
            Self::LabelOutsideCarrier(v) => {
                write!(f, "label of vertex {v} is not a color of its carrier")
            }
        }
    }
}

impl std::error::Error for SpernerError {}

/// Checks that `labels` (one color per subdivided vertex, indexed by vertex
/// id) is a *Sperner labeling* of the subdivision: each vertex is labeled
/// with the color of some vertex of its carrier.
///
/// # Errors
///
/// Returns the first violation; requires the base to be a single simplex.
pub fn validate_sperner(sub: &Subdivision, labels: &[Color]) -> Result<(), SpernerError> {
    if sub.base().num_facets() != 1 {
        return Err(SpernerError::BaseNotASimplex);
    }
    let n_vertices = sub.complex().num_vertices();
    if labels.len() != n_vertices {
        return Err(SpernerError::WrongLength {
            got: labels.len(),
            expected: n_vertices,
        });
    }
    for v in sub.complex().vertex_ids() {
        let carrier = sub.carrier_of_vertex(v);
        let allowed: BTreeSet<Color> = carrier.iter().map(|u| sub.base().color(u)).collect();
        if !allowed.contains(&labels[v.index()]) {
            return Err(SpernerError::LabelOutsideCarrier(v));
        }
    }
    Ok(())
}

/// Counts the facets of the subdivision whose label image under `labels`
/// exhausts **all** base colors (rainbow / panchromatic facets).
///
/// For a valid Sperner labeling of a subdivided `n`-simplex this count is
/// odd (Sperner's lemma); see [`rainbow_count_is_odd`].
pub fn count_rainbow(sub: &Subdivision, labels: &[Color]) -> usize {
    let full: BTreeSet<Color> = sub.base().colors();
    sub.complex()
        .facets()
        .filter(|f| {
            let image: BTreeSet<Color> = f.iter().map(|v| labels[v.index()]).collect();
            image == full
        })
        .count()
}

/// `true` iff [`count_rainbow`] is odd — the Sperner certificate.
pub fn rainbow_count_is_odd(sub: &Subdivision, labels: &[Color]) -> bool {
    count_rainbow(sub, labels) % 2 == 1
}

/// The *identity* Sperner labeling of a chromatic subdivision: each vertex
/// labeled by its own color (always valid because a chromatic subdivision
/// keeps colors within carriers).
pub fn identity_labeling(sub: &Subdivision) -> Vec<Color> {
    sub.complex()
        .vertex_ids()
        .map(|v| sub.complex().color(v))
        .collect()
}

/// The labeling induced by a decision function `decide : vertex → color`,
/// e.g. the decisions of a purported `(n+1, k)`-set consensus protocol.
pub fn labeling_from<F: FnMut(VertexId) -> Color>(sub: &Subdivision, decide: F) -> Vec<Color> {
    sub.complex().vertex_ids().map(decide).collect()
}

/// The impossibility certificate for `(n+1, k)`-set consensus on a given
/// chromatic subdivision of `sⁿ` (typically `SDS^b(sⁿ)`): for the supplied
/// decision labeling, either it is not a valid Sperner labeling (the
/// protocol violates validity) or some facet carries more than `k` distinct
/// decisions (the protocol violates `k`-agreement).
///
/// Returns the offending facet when agreement fails.
///
/// # Errors
///
/// Propagates [`SpernerError`] if the labeling is invalid.
pub fn set_consensus_counterexample(
    sub: &Subdivision,
    labels: &[Color],
    k: usize,
) -> Result<Option<Simplex>, SpernerError> {
    validate_sperner(sub, labels)?;
    for f in sub.complex().facets() {
        let image: BTreeSet<Color> = f.iter().map(|v| labels[v.index()]).collect();
        if image.len() > k {
            return Ok(Some(f.clone()));
        }
    }
    Ok(None)
}

/// Finds a rainbow facet **constructively** by the door-to-door walk — the
/// path-following proof of Sperner's lemma, as opposed to the counting
/// argument of [`count_rainbow`].
///
/// A *door* is a codimension-1 face whose labels are exactly the base
/// colors minus the largest one. Every non-rainbow facet has 0 or 2 doors;
/// a rainbow facet has exactly 1. Walking door-to-door from a boundary door
/// (doors on the face spanned by the first `n` colors exist in odd number,
/// recursively by the same lemma) must end in a rainbow facet or exit
/// through another boundary door; since boundary doors are odd in number,
/// some walk ends inside.
///
/// Returns `None` only if `labels` is not a valid Sperner labeling (walks
/// can then dead-end); for valid labelings a rainbow facet is always found.
///
/// # Panics
///
/// Panics if the base is not a single simplex or `labels` has the wrong
/// length.
pub fn walk_to_rainbow(sub: &Subdivision, labels: &[Color]) -> Option<Simplex> {
    assert_eq!(sub.base().num_facets(), 1, "base must be a simplex");
    let c = sub.complex();
    assert_eq!(labels.len(), c.num_vertices());
    let full: Vec<Color> = sub.base().colors().into_iter().collect();
    let n = full.len();
    if n == 1 {
        return c.facets().next().cloned();
    }
    let door_colors: BTreeSet<Color> = full[..n - 1].iter().copied().collect();
    let is_door = |face: &Simplex| -> bool {
        let image: BTreeSet<Color> = face.iter().map(|v| labels[v.index()]).collect();
        image == door_colors
    };
    let is_rainbow = |facet: &Simplex| -> bool {
        let image: BTreeSet<Color> = facet.iter().map(|v| labels[v.index()]).collect();
        image.len() == n
    };
    // facets adjacent to each ridge
    let facets: Vec<&Simplex> = c.facets().collect();
    let mut ridge_facets: std::collections::BTreeMap<Simplex, Vec<usize>> = Default::default();
    for (i, f) in facets.iter().enumerate() {
        for ridge in f.facets() {
            ridge_facets.entry(ridge).or_default().push(i);
        }
    }
    // boundary doors: doors lying in exactly one facet
    let mut boundary_doors: Vec<Simplex> = ridge_facets
        .iter()
        .filter(|(r, fs)| fs.len() == 1 && is_door(r))
        .map(|(r, _)| r.clone())
        .collect();
    let mut used: BTreeSet<Simplex> = BTreeSet::new();
    while let Some(start) = boundary_doors.pop() {
        if used.contains(&start) {
            continue;
        }
        used.insert(start.clone());
        let mut room = ridge_facets[&start][0];
        let mut entered = start;
        // each step: the current room either is rainbow, or has exactly one
        // other door; bounded by the number of facets
        for _guard in 0..=facets.len() {
            if is_rainbow(facets[room]) {
                return Some(facets[room].clone());
            }
            let other: Vec<Simplex> = facets[room]
                .facets()
                .into_iter()
                .filter(|r| *r != entered && is_door(r))
                .collect();
            let Some(exit) = other.first() else {
                break; // invalid labeling: dead end
            };
            used.insert(exit.clone());
            let adj = &ridge_facets[exit];
            match adj.iter().find(|&&f| f != room) {
                Some(&next) => {
                    entered = exit.clone();
                    room = next;
                }
                None => break, // exited through another boundary door
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sds, sds_iterated, Complex};

    fn base(n: usize) -> Complex {
        Complex::standard_simplex(n)
    }

    #[test]
    fn identity_labeling_is_valid_and_all_facets_rainbow() {
        let sub = sds(&base(2));
        let labels = identity_labeling(&sub);
        validate_sperner(&sub, &labels).unwrap();
        // chromatic subdivision: every facet is rainbow under identity
        assert_eq!(count_rainbow(&sub, &labels), sub.complex().num_facets());
        assert!(rainbow_count_is_odd(&sub, &labels)); // 13 is odd
    }

    #[test]
    fn corner_collapse_labeling_has_odd_rainbow() {
        // Label every vertex by the *smallest* color in its carrier: a valid
        // Sperner labeling that is far from the identity.
        let sub = sds(&base(2));
        let labels = labeling_from(&sub, |v| {
            let carrier = sub.carrier_of_vertex(v);
            carrier.iter().map(|u| sub.base().color(u)).min().unwrap()
        });
        validate_sperner(&sub, &labels).unwrap();
        assert!(rainbow_count_is_odd(&sub, &labels));
    }

    #[test]
    fn largest_color_labeling_has_odd_rainbow_iterated() {
        let sub = sds_iterated(&base(2), 2);
        let labels = labeling_from(&sub, |v| {
            let carrier = sub.carrier_of_vertex(v);
            carrier.iter().map(|u| sub.base().color(u)).max().unwrap()
        });
        validate_sperner(&sub, &labels).unwrap();
        assert!(rainbow_count_is_odd(&sub, &labels));
    }

    #[test]
    fn invalid_labeling_rejected() {
        let sub = sds(&base(1));
        // corner of color 0 labeled with color 1 — outside its carrier
        let corner = sub
            .complex()
            .vertex_ids()
            .find(|&v| sub.carrier_of_vertex(v).len() == 1 && sub.complex().color(v) == Color(0))
            .unwrap();
        let mut labels = identity_labeling(&sub);
        labels[corner.index()] = Color(1);
        assert!(matches!(
            validate_sperner(&sub, &labels),
            Err(SpernerError::LabelOutsideCarrier(_))
        ));
    }

    #[test]
    fn wrong_length_rejected() {
        let sub = sds(&base(1));
        assert!(matches!(
            validate_sperner(&sub, &[]),
            Err(SpernerError::WrongLength { .. })
        ));
    }

    #[test]
    fn one_dimensional_sperner() {
        // On a subdivided edge with endpoints labeled 0 and 1, the number of
        // bichromatic edges is odd — the classic discrete IVT.
        let sub = sds_iterated(&base(1), 3); // 27 edges
        let labels = labeling_from(&sub, |v| {
            let carrier = sub.carrier_of_vertex(v);
            if carrier.len() == 1 {
                sub.base().color(carrier.iter().next().unwrap())
            } else {
                // interior vertices: pick by parity of vertex id (arbitrary)
                Color(v.0 % 2)
            }
        });
        validate_sperner(&sub, &labels).unwrap();
        assert!(rainbow_count_is_odd(&sub, &labels));
    }

    #[test]
    fn set_consensus_counterexample_found() {
        // Any Sperner labeling of SDS(s²) must have a facet with 3 distinct
        // decisions → (3,2)-set consensus impossible in one IIS round.
        let sub = sds(&base(2));
        let labels = labeling_from(&sub, |v| {
            let carrier = sub.carrier_of_vertex(v);
            carrier.iter().map(|u| sub.base().color(u)).min().unwrap()
        });
        let cex = set_consensus_counterexample(&sub, &labels, 2).unwrap();
        assert!(cex.is_some());
        // but 3-set consensus (trivial) has no counterexample
        let ok = set_consensus_counterexample(&sub, &labels, 3).unwrap();
        assert!(ok.is_none());
    }

    #[test]
    fn walk_finds_rainbow_on_paths() {
        // dimension 1: the walk finds a bichromatic edge
        let sub = sds_iterated(&base(1), 3);
        let labels = labeling_from(&sub, |v| {
            let carrier = sub.carrier_of_vertex(v);
            if carrier.len() == 1 {
                sub.base().color(carrier.iter().next().unwrap())
            } else {
                Color(v.0 % 2)
            }
        });
        validate_sperner(&sub, &labels).unwrap();
        let found = walk_to_rainbow(&sub, &labels).expect("walk finds a door-room");
        let image: std::collections::BTreeSet<Color> =
            found.iter().map(|v| labels[v.index()]).collect();
        assert_eq!(image.len(), 2);
    }

    #[test]
    fn walk_finds_rainbow_on_triangles() {
        for b in 1..=2usize {
            let sub = sds_iterated(&base(2), b);
            let labels = labeling_from(&sub, |v| {
                sub.carrier_of_vertex(v)
                    .iter()
                    .map(|u| sub.base().color(u))
                    .min()
                    .unwrap()
            });
            let found = walk_to_rainbow(&sub, &labels).expect("rainbow exists");
            let image: std::collections::BTreeSet<Color> =
                found.iter().map(|v| labels[v.index()]).collect();
            assert_eq!(image.len(), 3, "b={b}");
            // cross-check against counting
            assert!(count_rainbow(&sub, &labels) >= 1);
        }
    }

    #[test]
    fn walk_agrees_with_count_on_many_labelings() {
        let sub = sds_iterated(&base(2), 2);
        for seed in 0..20u64 {
            let labels = labeling_from(&sub, |v| {
                let allowed: Vec<Color> = sub
                    .carrier_of_vertex(v)
                    .iter()
                    .map(|u| sub.base().color(u))
                    .collect();
                let pick = (v.0 as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33;
                allowed[(pick % allowed.len() as u64) as usize]
            });
            validate_sperner(&sub, &labels).unwrap();
            let found = walk_to_rainbow(&sub, &labels);
            assert!(found.is_some(), "seed {seed}: walk must find a rainbow");
            let f = found.unwrap();
            let image: std::collections::BTreeSet<Color> =
                f.iter().map(|v| labels[v.index()]).collect();
            assert_eq!(image.len(), 3);
        }
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            SpernerError::BaseNotASimplex,
            SpernerError::WrongLength {
                got: 0,
                expected: 3,
            },
            SpernerError::LabelOutsideCarrier(VertexId(1)),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
