//! Numeric geometric realizations of subdivisions (low dimension).
//!
//! §2 requires complexes to be embedded; Lemma 3.2's proof sketch gives an
//! explicit embedding of the standard chromatic subdivision: plant the
//! vertex `mᵢ` of color `i` at the midpoint of the segment from the
//! barycenter `a` of the carrier to the barycenter `bᵢ` of the carrier's
//! face opposite `i`. This module realizes those coordinates (in barycentric
//! coordinates over the base simplex) and numerically checks the two
//! geometric subdivision conditions of §2: containment of convex hulls in
//! carrier hulls, and volume-exact coverage.

use crate::{Complex, Subdivision, VertexId};

/// A geometric realization: one coordinate vector per vertex of a complex.
///
/// For subdivisions of the standard `n`-simplex we use barycentric
/// coordinates in `R^{n+1}`: the base corners are the unit basis vectors,
/// every point has non-negative coordinates summing to 1, and the carrier of
/// a point is visible as its support.
#[derive(Clone, Debug, Default)]
pub struct Embedding {
    coords: Vec<Vec<f64>>,
}

impl Embedding {
    /// Creates an embedding from explicit per-vertex coordinates.
    pub fn from_coords(coords: Vec<Vec<f64>>) -> Self {
        Embedding { coords }
    }

    /// The coordinates of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn coord(&self, v: VertexId) -> &[f64] {
        &self.coords[v.index()]
    }

    /// Number of embedded vertices.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// `true` iff no vertex has coordinates.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

/// Embeds a subdivision of the standard `n`-simplex using the paper's
/// recursive midpoint construction, reading each vertex's position off its
/// carrier and color.
///
/// The embedding assigns barycentric coordinates over the base: a vertex of
/// color `i` with carrier `S` sits at the midpoint of `(a, bᵢ)` where `a` is
/// the barycenter of `S` and `bᵢ` the barycenter of `S ∖ {i}`; corners
/// (`|S| = 1`) sit at the base corners. For *iterated* subdivisions, embed
/// level by level and pass the previous level's embedding via `within`.
///
/// Concretely: vertex coordinates are `(1/2)(a + bᵢ)` which equals
/// `Σ_{c ∈ S, c≠i} w·x_c + w'·x_i` with `w = (2|S|−1)/(2|S|(|S|−1))`-ish
/// weights — we simply compute the two barycenters numerically.
///
/// # Panics
///
/// Panics if the subdivision's base does not match `within`'s vertex count,
/// or if a carrier is empty.
pub fn embed_sds_level(sub: &Subdivision, within: &Embedding) -> Embedding {
    assert_eq!(
        within.len(),
        sub.base().num_vertices(),
        "need one coordinate per base vertex"
    );
    let base = sub.base();
    let coords = sub
        .complex()
        .vertex_ids()
        .map(|v| {
            let carrier = sub.carrier_of_vertex(v);
            assert!(!carrier.is_empty(), "empty carrier");
            let color = sub.complex().color(v);
            let own: Vec<VertexId> = carrier.iter().filter(|&u| base.color(u) == color).collect();
            assert_eq!(own.len(), 1, "chromatic carrier must contain own color");
            if carrier.len() == 1 {
                return within.coord(own[0]).to_vec();
            }
            let dim = within.coord(own[0]).len();
            let mut a = vec![0.0; dim]; // barycenter of carrier
            for u in carrier.iter() {
                for (k, x) in within.coord(u).iter().enumerate() {
                    a[k] += x;
                }
            }
            for x in &mut a {
                *x /= carrier.len() as f64;
            }
            let mut b = vec![0.0; dim]; // barycenter of carrier minus own color
            let others = carrier.len() - 1;
            for u in carrier.iter() {
                if u != own[0] {
                    for (k, x) in within.coord(u).iter().enumerate() {
                        b[k] += x;
                    }
                }
            }
            for x in &mut b {
                *x /= others as f64;
            }
            a.iter().zip(&b).map(|(p, q)| 0.5 * (p + q)).collect()
        })
        .collect();
    Embedding { coords }
}

/// The standard embedding of the base `n`-simplex: corner `i` at the `i`-th
/// unit basis vector of `R^{n+1}` (ordered by vertex id).
pub fn standard_corners(base: &Complex) -> Embedding {
    let n = base.num_vertices();
    let coords = (0..n)
        .map(|i| {
            let mut x = vec![0.0; n];
            x[i] = 1.0;
            x
        })
        .collect();
    Embedding { coords }
}

/// Embeds an *iterated* standard chromatic subdivision by chaining
/// [`embed_sds_level`] through intermediate levels.
///
/// `levels` are the per-level subdivisions (`sds` of the previous level's
/// complex), innermost first.
pub fn embed_sds_tower(base: &Complex, levels: &[Subdivision]) -> Embedding {
    let mut emb = standard_corners(base);
    for level in levels {
        emb = embed_sds_level(level, &emb);
    }
    emb
}

/// Numeric checks that an embedding realizes a subdivision of the standard
/// simplex (§2's two conditions), up to tolerance `eps`:
///
/// 1. every vertex's coordinates are a point of the base simplex (entries
///    ≥ −eps, sum ≈ 1) whose support equals its carrier — hulls of simplices
///    therefore lie in their carriers' hulls;
/// 2. every facet is non-degenerate (positive volume) and, per base facet,
///    the facet volumes sum to the base facet's volume — coverage;
/// 3. all embedded vertices are pairwise distinct.
///
/// Returns a human-readable description of the first failure.
///
/// # Errors
///
/// Returns `Err(description)` when any check fails.
pub fn check_subdivision_embedding(
    sub: &Subdivision,
    emb: &Embedding,
    eps: f64,
) -> Result<(), String> {
    let base = sub.base();
    let c = sub.complex();
    // 1. barycentric validity + support = carrier
    for v in c.vertex_ids() {
        let x = emb.coord(v);
        let sum: f64 = x.iter().sum();
        if (sum - 1.0).abs() > eps {
            return Err(format!("vertex {v}: coordinates sum to {sum}, not 1"));
        }
        if x.iter().any(|&t| t < -eps) {
            return Err(format!("vertex {v}: negative barycentric coordinate"));
        }
        let carrier = sub.carrier_of_vertex(v);
        for (k, &t) in x.iter().enumerate() {
            let in_support = t > eps;
            let in_carrier = carrier.contains(VertexId(k as u32));
            if in_support != in_carrier {
                return Err(format!(
                    "vertex {v}: support/carrier mismatch at coordinate {k}"
                ));
            }
        }
    }
    // 3. distinct vertices
    for v in c.vertex_ids() {
        for w in c.vertex_ids() {
            if v < w {
                let d: f64 = emb
                    .coord(v)
                    .iter()
                    .zip(emb.coord(w))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d.sqrt() < eps {
                    return Err(format!("vertices {v} and {w} coincide"));
                }
            }
        }
    }
    // 2. per-base-facet volume coverage
    for bf in base.facets() {
        let base_pts: Vec<&[f64]> = bf.iter().map(|u| emb_base_corner(base, u)).collect();
        let base_vol = simplex_volume(&base_pts);
        let mut covered = 0.0;
        for f in c.facets() {
            if &sub.carrier_of_simplex(f) == bf && f.dim() == bf.dim() {
                let pts: Vec<&[f64]> = f.iter().map(|v| emb.coord(v)).collect();
                let vol = simplex_volume(&pts);
                if vol <= eps * base_vol {
                    return Err(format!("facet {f} is degenerate (volume {vol})"));
                }
                covered += vol;
            }
        }
        if (covered - base_vol).abs() > eps * (1.0 + base_vol) {
            return Err(format!(
                "base facet {bf}: covered volume {covered} ≠ base volume {base_vol}"
            ));
        }
    }
    Ok(())
}

// The base corners in the standard embedding are the unit vectors indexed by
// vertex id; reconstruct them without carrying the base embedding around.
fn emb_base_corner(base: &Complex, u: VertexId) -> &'static [f64] {
    // We cannot return a reference into a temporary; instead leak tiny corner
    // vectors once per (n, i). Bounded by the handful of base sizes used in
    // tests and benches.
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type CornerMap = HashMap<(usize, usize), &'static [f64]>;
    static CORNERS: OnceLock<Mutex<CornerMap>> = OnceLock::new();
    let m = CORNERS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = m.lock().unwrap();
    let key = (base.num_vertices(), u.index());
    g.entry(key).or_insert_with(|| {
        let mut x = vec![0.0; key.0];
        x[key.1] = 1.0;
        Box::leak(x.into_boxed_slice())
    })
}

/// The *mesh* of an embedded complex: the length of its longest edge.
///
/// The simplicial approximation theorem's "for all k large enough" (Lemma
/// 2.1) is quantified by the mesh: iterated subdivision drives it to zero.
/// For the standard chromatic subdivision the mesh contracts geometrically
/// with each round — measurable via [`embed_sds_tower`].
pub fn mesh(c: &crate::Complex, emb: &Embedding) -> f64 {
    let mut worst: f64 = 0.0;
    for e in c.simplices_of_dim(1) {
        let vs: Vec<VertexId> = e.iter().collect();
        let d: f64 = emb
            .coord(vs[0])
            .iter()
            .zip(emb.coord(vs[1]))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        worst = worst.max(d.sqrt());
    }
    worst
}

/// Renders a 2-dimensional embedded subdivision (barycentric coordinates
/// over `s²`) as an SVG drawing: edges in grey, vertices as circles colored
/// by process (color 0/1/2 → red/green/blue), corners enlarged.
///
/// # Panics
///
/// Panics if coordinates are not 3-dimensional (barycentric over a
/// triangle).
pub fn to_svg(sub: &Subdivision, emb: &Embedding, size: f64) -> String {
    use std::fmt::Write as _;
    let c = sub.complex();
    let project = |x: &[f64]| -> (f64, f64) {
        assert_eq!(x.len(), 3, "2-dimensional embeddings only");
        // corners of an equilateral triangle
        let corners = [(0.5, 0.06), (0.94, 0.82), (0.06, 0.82)];
        let px = x[0] * corners[0].0 + x[1] * corners[1].0 + x[2] * corners[2].0;
        let py = x[0] * corners[0].1 + x[1] * corners[1].1 + x[2] * corners[2].1;
        (px * size, py * size)
    };
    let palette = ["#d62728", "#2ca02c", "#1f77b4", "#9467bd"];
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" viewBox="0 0 {size} {size}">"#
    );
    for e in c.simplices_of_dim(1) {
        let vs: Vec<VertexId> = e.iter().collect();
        let (x1, y1) = project(emb.coord(vs[0]));
        let (x2, y2) = project(emb.coord(vs[1]));
        let _ = writeln!(
            svg,
            r##"  <line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="#999" stroke-width="1"/>"##
        );
    }
    for v in c.vertex_ids() {
        let (x, y) = project(emb.coord(v));
        let color = palette[c.color(v).index() % palette.len()];
        let r = if sub.carrier_of_vertex(v).len() == 1 {
            size / 60.0
        } else {
            size / 120.0
        };
        let _ = writeln!(
            svg,
            r#"  <circle cx="{x:.2}" cy="{y:.2}" r="{r:.2}" fill="{color}"/>"#
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// The `d`-volume of a `d`-simplex given `d+1` points (any ambient
/// dimension), via the Gram determinant: `vol = sqrt(det G) / d!` where `G`
/// is the Gram matrix of edge vectors from the first point.
pub fn simplex_volume(points: &[&[f64]]) -> f64 {
    let d = points.len().saturating_sub(1);
    if d == 0 {
        return 1.0; // 0-volume of a point, by convention (counting measure)
    }
    let edges: Vec<Vec<f64>> = points[1..]
        .iter()
        .map(|p| p.iter().zip(points[0]).map(|(a, b)| a - b).collect())
        .collect();
    let mut g = vec![vec![0.0; d]; d];
    for i in 0..d {
        for j in 0..d {
            g[i][j] = edges[i].iter().zip(&edges[j]).map(|(a, b)| a * b).sum();
        }
    }
    let det = determinant(&mut g);
    let fact: f64 = (1..=d).map(|k| k as f64).product();
    det.max(0.0).sqrt() / fact
}

fn determinant(m: &mut [Vec<f64>]) -> f64 {
    let n = m.len();
    let mut det = 1.0;
    for col in 0..n {
        let piv = (col..n)
            .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
            .unwrap();
        if m[piv][col].abs() < 1e-14 {
            return 0.0;
        }
        if piv != col {
            m.swap(piv, col);
            det = -det;
        }
        det *= m[col][col];
        for r in col + 1..n {
            let f = m[r][col] / m[col][col];
            let pivot = m[col].clone();
            m[r][col..n]
                .iter_mut()
                .zip(&pivot[col..n])
                .for_each(|(x, p)| *x -= f * p);
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sds, Complex};

    #[test]
    fn standard_corners_are_basis_vectors() {
        let base = Complex::standard_simplex(2);
        let e = standard_corners(&base);
        assert_eq!(e.len(), 3);
        assert_eq!(e.coord(VertexId(0)), &[1.0, 0.0, 0.0]);
        assert!(!e.is_empty());
    }

    #[test]
    fn volume_of_unit_triangle() {
        // corners of the standard 2-simplex in R³: volume = sqrt(3)/2
        let p0 = [1.0, 0.0, 0.0];
        let p1 = [0.0, 1.0, 0.0];
        let p2 = [0.0, 0.0, 1.0];
        let v = simplex_volume(&[&p0, &p1, &p2]);
        assert!((v - 3f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_simplex_has_zero_volume() {
        let p0 = [0.0, 0.0];
        let p1 = [1.0, 1.0];
        let p2 = [2.0, 2.0];
        assert!(simplex_volume(&[&p0, &p1, &p2]) < 1e-12);
    }

    #[test]
    fn sds_edge_embedding_valid() {
        let base = Complex::standard_simplex(1);
        let sub = sds(&base);
        let emb = embed_sds_level(&sub, &standard_corners(&base));
        check_subdivision_embedding(&sub, &emb, 1e-9).unwrap();
    }

    #[test]
    fn sds_triangle_embedding_valid() {
        let base = Complex::standard_simplex(2);
        let sub = sds(&base);
        let emb = embed_sds_level(&sub, &standard_corners(&base));
        check_subdivision_embedding(&sub, &emb, 1e-9).unwrap();
    }

    #[test]
    fn sds_tetrahedron_embedding_valid() {
        let base = Complex::standard_simplex(3);
        let sub = sds(&base);
        let emb = embed_sds_level(&sub, &standard_corners(&base));
        check_subdivision_embedding(&sub, &emb, 1e-9).unwrap();
    }

    #[test]
    fn bad_embedding_rejected() {
        let base = Complex::standard_simplex(1);
        let sub = sds(&base);
        // collapse everything to one corner
        let n = sub.complex().num_vertices();
        let emb = Embedding::from_coords(vec![vec![1.0, 0.0]; n]);
        assert!(check_subdivision_embedding(&sub, &emb, 1e-9).is_err());
    }

    #[test]
    fn mesh_contracts_with_iteration() {
        let base = Complex::standard_simplex(2);
        let mut levels = Vec::new();
        let mut acc = crate::Subdivision::identity(base.clone());
        let mut meshes = Vec::new();
        for _ in 0..3 {
            let next = sds(acc.complex());
            levels.push(next.clone());
            acc = acc.compose(&next);
            let emb = embed_sds_tower(&base, &levels);
            meshes.push(mesh(acc.complex(), &emb));
        }
        assert!(meshes[1] < meshes[0] && meshes[2] < meshes[1]);
        // geometric contraction: each round at least halves... empirically
        // the SDS contraction factor on a triangle is ≥ 1/3 per round
        assert!(meshes[1] <= meshes[0] * 0.85);
        assert!(meshes[2] <= meshes[1] * 0.85);
    }

    #[test]
    fn svg_export_contains_all_elements() {
        let base = Complex::standard_simplex(2);
        let sub = sds(&base);
        let emb = embed_sds_level(&sub, &standard_corners(&base));
        let svg = to_svg(&sub, &emb, 400.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), sub.complex().num_vertices());
        assert_eq!(
            svg.matches("<line").count(),
            sub.complex().simplices_of_dim(1).len()
        );
        // 3 corners drawn large
        assert_eq!(
            svg.matches(&format!("r=\"{:.2}\"", 400.0 / 60.0)).count(),
            3
        );
    }

    #[test]
    fn midpoints_of_sds_edge() {
        // SDS(s¹): interior vertices sit at 1/4 and 3/4? No — at the midpoint
        // of (barycenter, opposite corner): a = (1/2,1/2), b₀ = corner 1 →
        // m₀ = (1/4, 3/4).
        let base = Complex::standard_simplex(1);
        let sub = sds(&base);
        let emb = embed_sds_level(&sub, &standard_corners(&base));
        let interior: Vec<Vec<f64>> = sub
            .complex()
            .vertex_ids()
            .filter(|&v| sub.carrier_of_vertex(v).len() == 2)
            .map(|v| emb.coord(v).to_vec())
            .collect();
        assert_eq!(interior.len(), 2);
        for x in interior {
            let lo = x[0].min(x[1]);
            let hi = x[0].max(x[1]);
            assert!((lo - 0.25).abs() < 1e-12 && (hi - 0.75).abs() < 1e-12);
        }
    }
}
