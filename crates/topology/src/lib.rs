//! Chromatic simplicial-complex engine for wait-free computability.
//!
//! This crate is the topological substrate for the reproduction of
//! Borowsky & Gafni, *“A Simple Algorithmically Reasoned Characterization of
//! Wait-free Computations”* (PODC 1997). It provides:
//!
//! - [`Complex`] — finite chromatic simplicial complexes with canonical
//!   vertex [`Label`]s,
//! - [`Simplex`], [`Subdivision`] — carriers and subdivision validation (§2),
//! - [`sds`], [`sds_iterated`] — the standard chromatic subdivision and its
//!   iterates (Lemmas 3.2/3.3), instantiated from a per-dimension
//!   [`template`] and differentially checked against [`sds_reference`],
//! - [`arena`] — the same towers as flat CSR arrays with interned labels,
//!   for validation-speed consumers,
//! - [`bsd`] — barycentric subdivision (used by Lemma 5.3),
//! - [`SimplicialMap`] — simpliciality / color / carrier preservation checks,
//! - [`homology`] — Z₂ homology, the effective "no holes" test (Lemma 2.2),
//! - [`sperner`] — rainbow-simplex counting, the impossibility engine,
//! - [`embedding`] — numeric geometric realizations for low dimensions.
//!
//! # Quickstart
//!
//! ```
//! use iis_topology::{Complex, sds_iterated};
//!
//! // The twice-iterated standard chromatic subdivision of a triangle —
//! // exactly the 2-round iterated-immediate-snapshot protocol complex.
//! let sub = sds_iterated(&Complex::standard_simplex(2), 2);
//! assert_eq!(sub.complex().num_facets(), 13 * 13);
//! sub.validate().unwrap();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod complex;
mod maps;
mod sds;
mod simplex;
mod subdivision;
mod vertex;

pub mod arena;
pub mod bsd;
pub mod embedding;
pub mod homology;
pub mod homology_z;
pub mod iso;
mod json_impls;
pub mod manifold;
pub mod sperner;
pub mod template;

pub use complex::Complex;
pub use maps::{MapError, SimplicialMap};
pub use sds::{
    for_each_ordered_partition, ordered_bell, ordered_partitions, path_subdivision, sds,
    sds_forget_map, sds_iterated, sds_next, sds_reference,
};
pub use simplex::Simplex;
pub use subdivision::{Subdivision, SubdivisionError};
pub use vertex::{Color, Label, VertexId};
