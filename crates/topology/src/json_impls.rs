//! JSON support for the topology types, via `iis_obs::json`.
//!
//! The shapes match what the former serde implementation produced, so task
//! files written before the workspace went registry-less still load:
//!
//! - `Color`, `VertexId` — plain numbers;
//! - `Label` — array of bytes of its canonical encoding;
//! - `Simplex` — array of vertex ids;
//! - `Complex` — `{"vertices": [[color, label], …], "facets": [[id, …], …]}`;
//! - `Subdivision` — `{"base", "subdivided", "vertex_carriers"}`.
//!
//! Deserialization re-validates: the `(color, label) → id` index is rebuilt,
//! facets re-pass through [`Complex::add_facet`] so the facet antichain
//! invariant survives hand-edited input, and a subdivision must carry
//! exactly one carrier per subdivided vertex.

use crate::{Color, Complex, Label, Simplex, SimplicialMap, Subdivision, VertexId};
use iis_obs::json::{FromJson, Json, JsonError, ToJson};

impl ToJson for Color {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Color {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Color(u32::from_json(v)?))
    }
}

impl ToJson for VertexId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for VertexId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(VertexId(u32::from_json(v)?))
    }
}

impl ToJson for Label {
    fn to_json(&self) -> Json {
        Json::Arr(self.bytes().iter().map(|&b| Json::Num(b as f64)).collect())
    }
}

impl FromJson for Label {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Label::from_bytes(Vec::<u8>::from_json(v)?))
    }
}

impl ToJson for Simplex {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|id| id.to_json()).collect())
    }
}

impl FromJson for Simplex {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Simplex::new(Vec::<VertexId>::from_json(v)?))
    }
}

impl ToJson for Complex {
    fn to_json(&self) -> Json {
        let vertices: Vec<(Color, Label)> = self
            .vertex_ids()
            .map(|v| (self.color(v), self.label(v).clone()))
            .collect();
        let facets: Vec<Simplex> = self.facets().cloned().collect();
        Json::obj([
            ("vertices", vertices.to_json()),
            ("facets", facets.to_json()),
        ])
    }
}

impl FromJson for Complex {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let vertices = Vec::<(Color, Label)>::from_json(v.field("vertices")?)?;
        let facets = Vec::<Simplex>::from_json(v.field("facets")?)?;
        let mut c = Complex::new();
        for (color, label) in vertices {
            c.ensure_vertex(color, label);
        }
        let n = c.num_vertices() as u32;
        for f in facets {
            if f.iter().any(|v| v.0 >= n) {
                return Err(JsonError::new("facet references unknown vertex"));
            }
            c.add_facet(f.iter());
        }
        Ok(c)
    }
}

/// JSON form: array of `[source, image]` vertex-id pairs in sorted source
/// order, so serializing the same map always yields the same bytes (the
/// persistent witness store relies on this canonical form).
impl ToJson for SimplicialMap {
    fn to_json(&self) -> Json {
        self.pairs().to_json()
    }
}

impl FromJson for SimplicialMap {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SimplicialMap::from_pairs(
            Vec::<(VertexId, VertexId)>::from_json(v)?,
        ))
    }
}

impl ToJson for Subdivision {
    fn to_json(&self) -> Json {
        let carriers: Vec<Simplex> = self
            .complex()
            .vertex_ids()
            .map(|v| self.carrier_of_vertex(v).clone())
            .collect();
        Json::obj([
            ("base", self.base().to_json()),
            ("subdivided", self.complex().to_json()),
            ("vertex_carriers", carriers.to_json()),
        ])
    }
}

impl FromJson for Subdivision {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let base = Complex::from_json(v.field("base")?)?;
        let subdivided = Complex::from_json(v.field("subdivided")?)?;
        let carriers = Vec::<Simplex>::from_json(v.field("vertex_carriers")?)?;
        if carriers.len() != subdivided.num_vertices() {
            return Err(JsonError::new("one carrier per subdivided vertex"));
        }
        Ok(Subdivision::from_parts(base, subdivided, carriers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sds, sds_iterated};

    #[test]
    fn complex_roundtrip() {
        let c = sds(&Complex::standard_simplex(2)).complex().clone();
        let json = c.to_json().to_string();
        let back: Complex = Json::parse_as(&json).unwrap();
        assert!(c.same_labeled(&back));
        assert_eq!(c.num_facets(), back.num_facets());
    }

    #[test]
    fn subdivision_roundtrip_preserves_carriers() {
        let sub = sds_iterated(&Complex::standard_simplex(1), 2);
        let json = sub.to_json().to_string_pretty();
        let back: Subdivision = Json::parse_as(&json).unwrap();
        back.validate().unwrap();
        for v in sub.complex().vertex_ids() {
            let w = back
                .complex()
                .vertex_id(sub.complex().color(v), sub.complex().label(v))
                .unwrap();
            assert_eq!(sub.carrier_of_vertex(v), back.carrier_of_vertex(w));
        }
    }

    #[test]
    fn label_and_simplex_roundtrip() {
        let l = Label::view([(Color(0), &Label::scalar(7))]);
        let back: Label = Json::parse_as(&l.to_json().to_string()).unwrap();
        assert_eq!(l, back);
        let s = Simplex::new([VertexId(3), VertexId(1)]);
        let back: Simplex = Json::parse_as(&s.to_json().to_string()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn simplicial_map_roundtrip_is_canonical() {
        use crate::SimplicialMap;
        let c = sds(&Complex::standard_simplex(1)).complex().clone();
        let m = SimplicialMap::identity(&c);
        let json = m.to_json().to_string();
        // serialization is order-canonical: re-serializing a rebuilt map
        // (whose backing HashMap may iterate differently) is bit-identical
        let back: SimplicialMap = Json::parse_as(&json).unwrap();
        assert_eq!(back.to_json().to_string(), json);
        for v in c.vertex_ids() {
            assert_eq!(back.image(v), m.image(v));
        }
    }

    #[test]
    fn bad_facet_rejected() {
        let json = r#"{"vertices": [], "facets": [[0]]}"#;
        assert!(Json::parse_as::<Complex>(json).is_err());
    }

    #[test]
    fn carrier_count_mismatch_rejected() {
        let base = Complex::standard_simplex(1).to_json();
        let doc = Json::obj([
            ("base", base.clone()),
            ("subdivided", base),
            ("vertex_carriers", Json::Arr(vec![])),
        ]);
        assert!(Subdivision::from_json(&doc).is_err());
    }

    #[test]
    fn missing_field_names_the_field() {
        let err = Json::parse_as::<Complex>(r#"{"vertices": []}"#).unwrap_err();
        assert!(err.to_string().contains("facets"));
    }
}
