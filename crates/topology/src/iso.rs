//! Color-preserving isomorphism of chromatic complexes.
//!
//! Complexes built by independent constructions usually match by canonical
//! labels ([`Complex::same_labeled`]); this module provides the stronger,
//! label-agnostic notion — a color-preserving bijection of vertices mapping
//! facets to facets — used to confirm that the *shape* of a protocol complex
//! matches a combinatorial construction regardless of how views were
//! encoded.

use crate::{Complex, Simplex, VertexId};
use std::collections::{BTreeMap, BTreeSet};

/// Attempts to find a color-preserving simplicial isomorphism from `a` to
/// `b`: a bijection on vertices preserving colors and mapping the facet set
/// of `a` exactly onto that of `b`.
///
/// Returns the vertex mapping if one exists. Backtracking with
/// color/degree-signature pruning; intended for the small complexes used in
/// verification (hundreds of vertices).
pub fn chromatic_isomorphism(a: &Complex, b: &Complex) -> Option<Vec<VertexId>> {
    if a.num_vertices() != b.num_vertices() || a.num_facets() != b.num_facets() {
        return None;
    }
    let n = a.num_vertices();
    // Signature: (color, sorted multiset of dims of facets containing v).
    type Sig = (u32, Vec<isize>);
    let sig = |c: &Complex, v: VertexId| -> Sig {
        let mut dims: Vec<isize> = c
            .facets()
            .filter(|f| f.contains(v))
            .map(|f| f.dim())
            .collect();
        dims.sort_unstable();
        (c.color(v).0, dims)
    };
    let sig_a: Vec<Sig> = a.vertex_ids().map(|v| sig(a, v)).collect();
    let mut candidates: BTreeMap<Sig, Vec<VertexId>> = BTreeMap::new();
    for w in b.vertex_ids() {
        candidates.entry(sig(b, w)).or_default().push(w);
    }
    // quick reject: signature multisets must agree
    {
        let mut count_a: BTreeMap<&Sig, usize> = BTreeMap::new();
        for s in &sig_a {
            *count_a.entry(s).or_default() += 1;
        }
        for (s, c) in &count_a {
            if candidates.get(*s).map(|v| v.len()) != Some(*c) {
                return None;
            }
        }
    }
    // adjacency (share a simplex) for pruning
    let adj = |c: &Complex| -> Vec<BTreeSet<VertexId>> {
        let mut m = vec![BTreeSet::new(); n];
        for f in c.facets() {
            let vs: Vec<VertexId> = f.iter().collect();
            for i in 0..vs.len() {
                for j in 0..vs.len() {
                    if i != j {
                        m[vs[i].index()].insert(vs[j]);
                    }
                }
            }
        }
        m
    };
    let adj_a = adj(a);
    let adj_b = adj(b);

    // order vertices by scarcity of candidates
    let mut order: Vec<VertexId> = a.vertex_ids().collect();
    order.sort_by_key(|v| candidates.get(&sig_a[v.index()]).map(|c| c.len()));

    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used: BTreeSet<VertexId> = BTreeSet::new();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        k: usize,
        order: &[VertexId],
        sig_a: &[(u32, Vec<isize>)],
        candidates: &BTreeMap<(u32, Vec<isize>), Vec<VertexId>>,
        adj_a: &[BTreeSet<VertexId>],
        adj_b: &[BTreeSet<VertexId>],
        mapping: &mut Vec<Option<VertexId>>,
        used: &mut BTreeSet<VertexId>,
        a: &Complex,
        b: &Complex,
    ) -> bool {
        if k == order.len() {
            // final check: every facet of a maps to a facet of b
            let bf: BTreeSet<Simplex> = b.facets().cloned().collect();
            return a.facets().all(|f| {
                let img = Simplex::new(f.iter().map(|v| mapping[v.index()].unwrap()));
                bf.contains(&img)
            });
        }
        let v = order[k];
        let Some(cands) = candidates.get(&sig_a[v.index()]) else {
            return false;
        };
        'cand: for &w in cands {
            if used.contains(&w) {
                continue;
            }
            // adjacency consistency with already-mapped vertices
            for u in a.vertex_ids() {
                if let Some(x) = mapping[u.index()] {
                    if adj_a[v.index()].contains(&u) != adj_b[w.index()].contains(&x) {
                        continue 'cand;
                    }
                }
            }
            mapping[v.index()] = Some(w);
            used.insert(w);
            if rec(
                k + 1,
                order,
                sig_a,
                candidates,
                adj_a,
                adj_b,
                mapping,
                used,
                a,
                b,
            ) {
                return true;
            }
            mapping[v.index()] = None;
            used.remove(&w);
        }
        false
    }

    if rec(
        0,
        &order,
        &sig_a,
        &candidates,
        &adj_a,
        &adj_b,
        &mut mapping,
        &mut used,
        a,
        b,
    ) {
        Some(mapping.into_iter().map(Option::unwrap).collect())
    } else {
        None
    }
}

/// `true` iff a color-preserving simplicial isomorphism exists.
pub fn are_chromatic_isomorphic(a: &Complex, b: &Complex) -> bool {
    chromatic_isomorphism(a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sds, Color, Label};

    #[test]
    fn identical_complexes_isomorphic() {
        let s = Complex::standard_simplex(2);
        let m = chromatic_isomorphism(&s, &s).unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn relabeled_sds_isomorphic() {
        // SDS over two different input labelings: same shape, same colors.
        let base1 = Complex::standard_simplex(2);
        let mut base2 = Complex::new();
        let v0 = base2.ensure_vertex(Color(0), Label::scalar(100));
        let v1 = base2.ensure_vertex(Color(1), Label::scalar(200));
        let v2 = base2.ensure_vertex(Color(2), Label::scalar(300));
        base2.add_facet([v0, v1, v2]);
        let s1 = sds(&base1);
        let s2 = sds(&base2);
        assert!(!s1.complex().same_labeled(s2.complex()));
        assert!(are_chromatic_isomorphic(s1.complex(), s2.complex()));
    }

    #[test]
    fn different_shapes_not_isomorphic() {
        let s1 = sds(&Complex::standard_simplex(2));
        let s2 = Complex::standard_simplex(2);
        assert!(!are_chromatic_isomorphic(s1.complex(), &s2));
    }

    #[test]
    fn colors_matter() {
        let mut a = Complex::new();
        let x = a.ensure_vertex(Color(0), Label::scalar(0));
        let y = a.ensure_vertex(Color(1), Label::scalar(1));
        a.add_facet([x, y]);
        let mut b = Complex::new();
        let x2 = b.ensure_vertex(Color(0), Label::scalar(0));
        let y2 = b.ensure_vertex(Color(2), Label::scalar(1));
        b.add_facet([x2, y2]);
        assert!(!are_chromatic_isomorphic(&a, &b));
    }

    #[test]
    fn isomorphism_maps_facets() {
        let base = Complex::standard_simplex(2);
        let sub = sds(&base);
        let m = chromatic_isomorphism(sub.complex(), sub.complex()).unwrap();
        for f in sub.complex().facets() {
            let img = Simplex::new(f.iter().map(|v| m[v.index()]));
            assert!(sub.complex().contains_simplex(&img));
        }
    }

    #[test]
    fn size_mismatch_fast_reject() {
        let a = Complex::standard_simplex(2);
        let b = Complex::standard_simplex(3);
        assert!(chromatic_isomorphism(&a, &b).is_none());
    }
}
